"""A tour of ``repro.chaos``: seeded faults, repair, and convergence.

Act one puts a two-physician consultation on a wire that drops and
corrupts a quarter of the server's presentation updates — with the
reliable transport OFF. The viewers' displays silently diverge: the
paper's shared-view invariant is broken and nobody gets an error.

Act two replays the *same seeded fault plan* with the reliable
transport ON. Checksums quarantine the corrupted frames, the ACK loop
retransmits the dropped ones, per-sender sequence numbers put the
survivors back in order — and the displays come out byte-identical.

Act three cuts one viewer off the network entirely for a second, in the
middle of the conference. The transport parks the frames, backs off,
and repairs the conversation when the partition heals; the flight
recorder shows the window opening and closing.

Act four runs the acceptance gate that CI enforces: a full clustered
conference (loss + duplication + reordering + corruption + a partition
+ a primary crash) under several seeds, each required to end
byte-identical to its fault-free control.

Run:  python examples/chaos_tour.py
"""

import tempfile

from repro import obs
from repro.chaos import ChaosNetwork, FaultPlan
from repro.chaos.convergence import run_convergence
from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import Link
from repro.net.link import MBPS
from repro.server import InteractionServer
from repro.server.protocol import MessageKind

#: The consultation script both acts replay.
SCRIPT = [
    ("imaging.ct_head", "segmented"),
    ("labs", "hidden"),
    ("consult.voice_note", "transcript"),
    ("imaging.ct_head", "icon"),
    ("labs", "shown"),
    ("consult.referral_letter", "full"),
]


def lossy_plan(seed=7):
    """Drop or corrupt a good fraction of server->client updates."""
    return FaultPlan(
        seed=seed,
        drop_rate=0.2,
        corrupt_rate=0.1,
        dup_rate=0.1,
        reorder_rate=0.15,
        kinds=(MessageKind.PRESENTATION_UPDATE, MessageKind.PEER_EVENT),
    )


def run_consultation(workdir, name, plan, reliability):
    """One scripted two-viewer consultation over a chaos network."""
    db = Database(f"{workdir}/{name}")
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    network = ChaosNetwork(reliability=reliability, plan=plan)
    InteractionServer(store, network=network)
    lee = ClientModule("lee", network=network)
    cho = ClientModule("cho", network=network)
    for client in (lee, cho):
        network.attach_client(
            client,
            downlink=Link(bandwidth_bps=50 * MBPS),
            uplink=Link(bandwidth_bps=50 * MBPS),
        )
        client.join("record-17")
    network.run()
    for component, value in SCRIPT:
        lee.choose(component, value)
        network.run()
    out = {
        "lee": lee.displayed(),
        "cho": cho.displayed(),
        "errors": lee.errors + cho.errors,
        "failures": list(network.delivery_failures),
        "injected": network.injected_counts(),
    }
    db.close()
    return out


def act(title):
    print(f"\n== {title} ==")


def main() -> None:
    registry = obs.MetricsRegistry()
    log = obs.EventLog()
    with obs.use_registry(registry), obs.use_event_log(log):
        with tempfile.TemporaryDirectory() as workdir:
            act("act one: a lossy wire, no protection")
            bare = run_consultation(
                workdir, "bare", lossy_plan(), reliability=False
            )
            diverged = {
                path: (value, bare["cho"].get(path))
                for path, value in bare["lee"].items()
                if bare["cho"].get(path) != value
            }
            print(f"faults injected: {bare['injected']}")
            print(f"client-visible errors: {len(bare['errors'])}")
            print(f"components where the two viewers disagree: {len(diverged)}")
            for path, (lee_sees, cho_sees) in sorted(diverged.items()):
                print(f"  {path}: lee sees {lee_sees!r}, cho sees {cho_sees!r}")
            if diverged:
                print("the shared view silently broke — and nothing complained.")

            act("act two: the same faults, reliable transport on")
            repaired = run_consultation(
                workdir, "repaired", lossy_plan(), reliability=True
            )
            counters = registry.snapshot()["counters"]
            retries = sum(
                value for key, value in counters.items()
                if key.startswith("net.retries")
            )
            print(f"faults injected: {repaired['injected']}")
            print(f"retransmissions: {retries}, "
                  f"corrupt frames quarantined: "
                  f"{counters.get('net.corrupt_dropped', 0)}")
            same = repaired["lee"] == repaired["cho"]
            print(f"viewer displays: {'byte-identical' if same else 'DIVERGED'}")
            assert same and not repaired["errors"] and not repaired["failures"]

            act("act three: riding out a one-second partition")
            plan = FaultPlan(seed=11)
            plan.partition({"client-cho"}, {"server"}, start=0.5, end=1.5)
            cut = run_consultation(workdir, "cut", plan, reliability=True)
            for event in log.events:
                if event.name.startswith("chaos.partition"):
                    fields = event.fields
                    print(f"  t={event.at:.3f}  {event.name}  "
                          f"{sorted(fields['a'])} x {sorted(fields['b'])}")
            same = cut["lee"] == cut["cho"]
            print(f"after the heal, displays: "
                  f"{'byte-identical' if same else 'DIVERGED'}")
            assert same and not cut["errors"] and not cut["failures"]

    act("act four: the convergence gate CI runs")
    with tempfile.TemporaryDirectory() as workdir:
        report = run_convergence(workdir, seeds=(1, 2), quick=True)
    for seed, entry in report["seeds"].items():
        print(f"  seed {seed}: {'ok' if entry['ok'] else 'DIVERGED'}  "
              f"injected={sum(entry['injected'].values())} "
              f"retries={entry['retries']} failovers={entry['failovers']}")
    assert report["ok"]
    print("every seeded chaos run converged to the fault-free control.")


if __name__ == "__main__":
    main()
