"""A tour of ``repro.cluster``: scale-out, failover, and the dashboard.

Three consultations run concurrently through a 3-shard cluster behind a
gateway. Mid-conference the shard owning ``case-0`` fail-stops: its
heartbeats go silent, the gateway's failure detector notices, the
replica shard replays the shipped op log and is promoted, and the
clients keep working — their post-crash choices land on the promoted
replica without rejoining.

The tour then proves the paper-level property the cluster adds: a
control run of the *same* conference with no crash produces
byte-identical final presentation states for every client, i.e. failover
lost nothing that had been acknowledged.

A :class:`TelemetryMonitor` rides the gateway the whole time, so the
failover timeline (heartbeats stopping, the shard declared dead, the
PROMOTE order, the completion ack) is shown from the cluster's own
flight recorder — not from the script's prints.

Run:  python examples/cluster_tour.py
"""

import tempfile

from repro import obs
from repro.cluster import ClusterHarness
from repro.db import Database, MultimediaObjectStore
from repro.workloads import consultation_events, generate_record

DOCS = ("case-0", "case-1", "case-2")
EVENTS_PER_ROOM = 6
HORIZON = 30.0


def build_store(workdir):
    db = Database(f"{workdir}/db")
    store = MultimediaObjectStore(db)
    records = {}
    for index, doc_id in enumerate(DOCS):
        record = generate_record(
            doc_id, sections=2, components_per_section=3, seed=index
        )
        records[doc_id] = record
        store.store_document(record)
    return db, store, records


def run_conference(workdir, crash: bool, monitor_viewer: str | None = None):
    """One 3-room conference; optionally crash the owner of case-0."""
    db, store, records = build_store(workdir)
    harness = ClusterHarness(store, num_shards=3, failure_timeout=1.5)
    monitor = harness.add_monitor(monitor_viewer) if monitor_viewer else None
    victim = harness.owner_of("case-0")

    clients = {}
    for index, doc_id in enumerate(DOCS):
        pair = [harness.add_client(f"dr-{index}-{j}") for j in range(2)]
        for client in pair:
            client.join(doc_id)
        clients[doc_id] = pair
    harness.run()

    streams = {
        doc_id: consultation_events(
            records[doc_id], num_events=EVENTS_PER_ROOM, seed=11 + index
        )
        for index, doc_id in enumerate(DOCS)
    }
    # First half of every room's choice stream, then (maybe) the crash,
    # then the second half — the replicas must carry the acked half over.
    for doc_id, events in streams.items():
        for path, value in events[: EVENTS_PER_ROOM // 2]:
            clients[doc_id][0].choose(path, value)
    harness.run()
    harness.start(until=HORIZON)
    if crash:
        harness.run_until(3.0)
        harness.crash(victim)
        harness.run_until(8.0)
    harness.run()
    for doc_id, events in streams.items():
        for path, value in events[EVENTS_PER_ROOM // 2 :]:
            clients[doc_id][1].choose(path, value)
    harness.run()

    final = {
        client.viewer_id: client.displayed()
        for pair in clients.values()
        for client in pair
    }
    errors = [e for pair in clients.values() for c in pair for e in c.errors]
    out = {
        "victim": victim,
        "final": final,
        "errors": errors,
        "failovers": list(harness.gateway.failovers),
        "stats": harness.stats(),
        "monitor": monitor,
    }
    db.close()
    return out


def main() -> None:
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog(tracer=obs.trace)
        with obs.use_event_log(log):
            with tempfile.TemporaryDirectory() as workdir:
                result = run_conference(workdir, crash=True, monitor_viewer="ops")

    print("== act one: conference with a mid-run shard crash ==")
    print(f"shard owning case-0 (the victim): {result['victim']}")
    for failover in result["failovers"]:
        print(
            f"failover: {failover['primary']} -> {failover['promoted']} "
            f"in {failover['completed'] - failover['started']:.3f} sim-s "
            f"({failover['sessions']} sessions re-homed)"
        )
    print(f"client-visible errors during failover: {result['errors']}")

    print("\n-- failover timeline, from the cluster's own flight recorder --")
    monitor = result["monitor"]
    shown = 0
    for event in monitor.events:
        if event["name"].startswith("cluster."):
            print(f"  t={event['at']:7.3f}  "
                  f"{event['severity']:5s} {event['name']}  {event['fields']}")
            shown += 1
    print(f"  ({shown} cluster events, "
          f"{len(monitor.snapshots)} telemetry snapshots over the wire)")

    print("\n-- cluster state at close --")
    stats = result["stats"]
    print(f"  gateway: {stats['gateway']}")
    for shard_id, shard_stats in stats["shards"].items():
        print(f"  {shard_id}: {shard_stats}")

    print("\n== act two: the no-crash control run ==")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog(tracer=obs.trace)
        with obs.use_event_log(log):
            with tempfile.TemporaryDirectory() as workdir:
                control = run_conference(workdir, crash=False)
    assert control["errors"] == []

    same = result["final"] == control["final"]
    print(f"final displayed state, all {len(control['final'])} clients, "
          f"crash run vs control: {'byte-identical' if same else 'DIVERGED'}")
    if not same:
        raise SystemExit("failover lost acknowledged state")
    print("acked ops survived the primary's death — replication held.")


if __name__ == "__main__":
    main()
