"""Audio browsing for tele-consulting (the paper's voice module).

Builds a synthetic consultation recording with three physicians, music on
hold and background noise; then answers the paper's browsing questions:

  "How many speakers participate in a given conversation? Who are the
   speakers? ... What is the subject of the talk?"

via automatic segmentation, text-independent speaker spotting and
keyword spotting — and stores the results as sector annotations in the
audio object table (Fig. 7's FLD_SECTORS).

Run:  python examples/audio_browsing.py   (trains small models; ~1 min)
"""

import tempfile

from repro.db import Database, MultimediaObjectStore
from repro.media.audio import (
    ConversationBuilder,
    LanguageIdentifier,
    SpeakerSpotter,
    WordSpotter,
    segment_audio,
)
from repro.media.audio.synth import DEFAULT_SPEAKERS as ALL_SPEAKERS
from repro.media.audio.segmentation import segment_accuracy
from repro.media.audio.synth import DEFAULT_SPEAKERS, KEYWORDS


def build_recording():
    adams, baker, costa, _ = DEFAULT_SPEAKERS
    builder = (
        ConversationBuilder(seed=17)
        .pause(0.4)
        .say(adams, "lesion")        # "...there is a lesion here"
        .pause(0.3)
        .say(baker, "filler_a")      # small talk
        .pause(0.25)
        .say(baker, "urgent")        # "this is urgent"
        .pause(0.3)
        .music(1.0)                  # transferred to the ward — hold music
        .pause(0.3)
        .say(costa, "biopsy")        # "schedule a biopsy"
        .pause(0.25)
        .say(adams, "normal")        # "the ECG was normal"
        .pause(0.4)
        .noise(0.5)                  # ventilation hum at the end
    )
    return builder.build()


def main() -> None:
    adams, baker, costa, _ = DEFAULT_SPEAKERS
    signal, truth = build_recording()
    print(f"Recording: {signal.duration_s:.2f}s, "
          f"{sum(1 for t in truth if t.label == 'speech')} utterances")

    # --- automatic segmentation ---------------------------------------------
    segments = segment_audio(signal)
    accuracy = segment_accuracy(segments, list(truth), signal.duration_s)
    print(f"\nAutomatic segmentation ({accuracy:.0%} frame agreement with truth):")
    for segment in segments:
        print(f"  {segment.start_s:5.2f}-{segment.end_s:5.2f}s  {segment.label}")

    # --- who is speaking? ------------------------------------------------------
    print("\nEnrolling speaker models (GMM, text-independent)...")
    speakers = SpeakerSpotter.enroll_default((adams, baker, costa), seed=1)
    identified = speakers.identify_segments(signal, segments)
    print("Speaker spotting (the Fig. 10 colored regions):")
    for segment, decision in identified:
        name = decision.speaker or "unknown"
        print(f"  {segment.start_s:5.2f}-{segment.end_s:5.2f}s  {name:10s} "
              f"(margin {decision.score_margin:+.2f})")
    print(f"Distinct speakers counted: "
          f"{speakers.count_speakers(signal, segments)}")

    # --- what are they saying? ---------------------------------------------------
    print("\nTraining keyword models (CD-HMM) + garbage model...")
    words = WordSpotter.train_default(KEYWORDS, (adams, baker, costa), seed=2)
    flagged = words.spot_segments(signal, segments)
    print(f"Keyword spotting over {KEYWORDS}:")
    for segment, result in flagged:
        label = result.keyword or "(garbage)"
        print(f"  {segment.start_s:5.2f}-{segment.end_s:5.2f}s  {label:10s} "
              f"(margin {result.score_margin:+.2f})")

    # --- what is the subject of the talk? -----------------------------------------
    from repro.media.audio import rank_subjects

    spotted = [result for _, result in flagged]
    print("\nSubject of the talk (keyword-vote ranking):")
    for topic in rank_subjects(spotted):
        print(f"  {topic.topic:24s} score {topic.score:5.1f} "
              f"(from: {', '.join(topic.supporting_keywords)})")

    # --- in what language? -------------------------------------------------------
    print("\nTraining language models...")
    languages = LanguageIdentifier.train_default(ALL_SPEAKERS, seed=3)
    print("Language identification per speech segment:")
    for segment, decision in languages.identify_segments(signal, segments):
        print(f"  {segment.start_s:5.2f}-{segment.end_s:5.2f}s  {decision.language} "
              f"(margin {decision.score_margin:+.2f})")

    # --- store browsable annotations with the audio object ------------------------
    sectors = [
        {
            "t0": round(segment.start_s, 3),
            "t1": round(segment.end_s, 3),
            "label": segment.label,
            "speaker": next(
                (d.speaker for s, d in identified if s is segment), None
            ),
            "keyword": next(
                (r.keyword for s, r in flagged if s is segment), None
            ),
        }
        for segment in segments
    ]
    with tempfile.TemporaryDirectory() as workdir:
        db = Database(f"{workdir}/db")
        store = MultimediaObjectStore(db)
        handle = store.store_audio(
            signal.to_bytes(), filename="consult-442.pcm", sectors=sectors
        )
        row = store.fetch_row(handle)
        print(f"\nStored as {handle.media_ref} with "
              f"{len(row['FLD_SECTORS'])} browsable sectors")
        db.close()


if __name__ == "__main__":
    main()
