"""A tour of ``repro.obs.dtrace``: where did the 100 ms go?

A four-shard cluster runs two concurrent consultations with a 20 ms
propagation batch window, fully traced: every shared choice carries a
compact trace context on the wire, and every hop it crosses — the
uplink, the gateway's routing, the shard's serial queue, the batch
window, the downlink — records a timed span. The tour then reads the
result three ways:

1. the per-subscriber **delivery tree** for one traced choice, every
   hop named, ``← delivered`` marking each viewer's screen;
2. the **critical-path breakdown** for the slowest delivery — e2e time
   attributed to wire vs queueing vs batch window vs retransmit
   backoff;
3. the **latency histograms** tracing feeds: per-hop and per-room e2e
   p50/p99.

A second, chaos-afflicted room (25 % drop rate) shows retransmissions
appearing as attempt-numbered sibling spans under the hop they delayed.

Run:  python examples/dtrace_tour.py
"""

import tempfile

from repro import obs
from repro.chaos.plan import FaultPlan
from repro.db import Database, MultimediaObjectStore
from repro.obs.dtrace import (
    HOP_RETRANSMIT,
    DeliveryTracer,
    analyze_delivery,
    render_delivery_tree,
    use_dtrace,
)
from repro.obs.export import summary_quantile
from repro.workloads.chaos import run_chaos_conference
from repro.workloads.cluster import run_cluster_conference


def traced_cluster_run(workdir):
    """Four shards, two rooms, three viewers each, every root traced."""
    registry = obs.MetricsRegistry()
    db = Database(f"{workdir}/db")
    store = MultimediaObjectStore(db)
    try:
        with obs.use_registry(registry), obs.use_event_log(obs.EventLog()):
            tracer = DeliveryTracer(sample_every=1)
            with use_dtrace(tracer):
                result = run_cluster_conference(
                    store,
                    num_shards=4,
                    num_rooms=2,
                    clients_per_room=3,
                    events_per_room=4,
                    batch_window_s=0.02,
                )
    finally:
        db.close()
    assert result["errors"] == []
    return result, tracer, registry.snapshot()["histograms"]


def chaos_run(workdir):
    """Two shards under a 25% drop plan — retransmits become spans."""
    db = Database(f"{workdir}/db-chaos")
    store = MultimediaObjectStore(db)
    try:
        with obs.use_registry(obs.MetricsRegistry()), \
                obs.use_event_log(obs.EventLog()):
            tracer = DeliveryTracer(sample_every=1)
            with use_dtrace(tracer):
                result = run_chaos_conference(
                    store,
                    plan=FaultPlan(seed=3, drop_rate=0.25),
                    num_shards=2,
                    num_rooms=2,
                    clients_per_room=2,
                    events_per_room=4,
                    failure_timeout=30.0,
                )
    finally:
        db.close()
    assert result["errors"] == []
    return tracer


def main():
    with tempfile.TemporaryDirectory() as workdir:
        result, tracer, histograms = traced_cluster_run(workdir)

        print("== A healthy batched cluster, fully traced ==")
        print(
            f"{result['shards']} shards, {result['rooms']} rooms, "
            f"{len(result['displayed'])} viewers displayed, "
            f"{len(tracer.store)} traces held"
        )

        # 1. One delivery tree: a choice with several subscribers that
        # rode a real batch window.
        record = max(tracer.store, key=lambda r: len(r.deliveries))
        print("\n== Delivery tree for one traced choice ==")
        print(render_delivery_tree(record))

        # 2. Critical path of the slowest delivery in that trace.
        slowest = max(
            record.deliveries, key=lambda d: d["at"] - record.started_at
        )
        analysis = analyze_delivery(record, slowest)
        print(f"== Where {1000 * analysis['e2e']:.1f}ms of e2e went "
              f"(delivery to {slowest['node']}) ==")
        for category, seconds in sorted(
            analysis["categories"].items(), key=lambda kv: -kv[1]
        ):
            share = seconds / analysis["e2e"] if analysis["e2e"] else 0.0
            print(f"  {category:<18} {1000 * seconds:7.1f}ms  {share:5.1%}")
        print(f"  {'other':<18} {1000 * analysis['other']:7.1f}ms")

        # 3. The histograms tracing feeds.
        print("\n== Per-hop latency (all traced deliveries) ==")
        for key in sorted(k for k in histograms
                          if k.startswith("dtrace.hop.latency")):
            summary = histograms[key]
            print(
                f"  {key:<42} n={summary['count']:<4} "
                f"p50={1000 * summary_quantile(summary, 0.5):6.2f}ms "
                f"p99={1000 * summary_quantile(summary, 0.99):6.2f}ms"
            )
        print("== End-to-end latency per room ==")
        for key in sorted(k for k in histograms
                          if k.startswith("dtrace.e2e.latency")):
            summary = histograms[key]
            print(
                f"  {key:<42} n={summary['count']:<4} "
                f"p50={1000 * summary_quantile(summary, 0.5):6.2f}ms "
                f"p99={1000 * summary_quantile(summary, 0.99):6.2f}ms"
            )

        # 4. Chaos: retransmits surface as attempt-numbered siblings.
        chaos_tracer = chaos_run(workdir)
        retransmits = [
            span
            for rec in chaos_tracer.store
            for span in rec.spans
            if span.hop == HOP_RETRANSMIT
        ]
        print(f"\n== Under a 25% drop plan: {len(retransmits)} retransmit "
              "spans attached ==")
        traced = next(
            rec for rec in chaos_tracer.store
            if any(s.hop == HOP_RETRANSMIT for s in rec.spans)
        )
        print(render_delivery_tree(traced))


if __name__ == "__main__":
    main()
