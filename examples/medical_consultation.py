"""A full tele-consultation session (the paper's Section 1 scenario).

Three physicians discuss a patient record in a shared room: they zoom and
segment the CT image (Section 4.2 operations), annotate it, freeze it
while one of them measures, and one participant keeps a personal
presentation view tuned to a hospital-WAN link. The record round-trips
through the database, so the globally-important segmentation is there for
the next consultation.

Run:  python examples/medical_consultation.py
"""

import tempfile

from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.media.image import AnnotatedImage, ct_phantom, label_regions, overlay_grid, zoom
from repro.net import Link, SimulatedNetwork
from repro.server import InteractionServer

MBPS = 1_000_000


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        db = Database(f"{workdir}/hospital-db")
        store = MultimediaObjectStore(db)

        # The record + the actual CT pixels (a synthetic phantom) go in.
        record = build_sample_medical_record("patient-442", patient="patient-442")
        ct_image = ct_phantom(256, seed=42)
        ct_object = store.store_image(ct_image.to_bytes(), quality=2)
        store.store_document(record)
        print(f"Stored {record.title!r} and CT payload as {ct_object.media_ref}")

        # --- the conference ------------------------------------------------
        network = SimulatedNetwork()
        server = InteractionServer(store, network=network)
        radiologist = ClientModule("radiologist", network=network)
        surgeon = ClientModule("surgeon", network=network)
        resident = ClientModule("resident", network=network)
        network.attach_client(radiologist, downlink=Link(bandwidth_bps=100 * MBPS))
        network.attach_client(surgeon, downlink=Link(bandwidth_bps=20 * MBPS))
        network.attach_client(
            resident,
            downlink=Link(bandwidth_bps=1.5 * MBPS, latency_s=0.04),
            uplink=Link(bandwidth_bps=0.7 * MBPS, latency_s=0.04),
        )
        for client in (radiologist, surgeon, resident):
            client.join("patient-442")
        network.run()
        print(f"\n{len(network.client_ids)} participants in room {radiologist.room_id!r}")

        # The radiologist switches everyone to the segmented CT view.
        radiologist.choose("imaging.ct_head", "segmented")
        network.run()
        print("Radiologist shares the segmented CT; the surgeon now sees:",
              surgeon.displayed()["imaging.ct_head"])

        # She freezes the image from the rest and annotates the lesion.
        radiologist.freeze("imaging.ct_head")
        radiologist.annotate(
            "imaging.ct_head",
            {"type": "text", "text": "lesion, 9mm", "x": 140, "y": 96},
        )
        network.run()
        surgeon.choose("imaging.ct_head", "flat")
        network.run()
        print("Surgeon's change while frozen ->",
              surgeon.errors[-1]["error"] if surgeon.errors else "no error (bug!)")
        radiologist.release("imaging.ct_head")
        network.run()

        # §4.2 operation: a *zoom* important only to the resident...
        resident.operate("imaging.ct_head", "zoom")
        # ...and a *segmentation* the radiologist marks globally important.
        radiologist.operate("imaging.ct_head", "segmentation", global_importance=True)
        network.run()
        print("Resident sees the zoom:",
              resident.displayed().get("imaging.ct_head.zoom"))
        print("Surgeon does NOT see the zoom:",
              "imaging.ct_head.zoom" not in surgeon.displayed())
        print("Everyone sees the global segmentation:",
              surgeon.displayed().get("imaging.ct_head.segmentation"))

        # --- the image processing behind those operations ------------------
        zoomed = zoom(ct_image, top=96, left=96, height=64, width=64, factor=2)
        annotated = AnnotatedImage(ct_image)
        annotated.add_text("lesion, 9mm", 96, 140)
        annotated.add_line(96, 140, 120, 128)
        gridded, grid = overlay_grid(ct_image, rows=4, cols=4)
        regions = label_regions(ct_image, levels=5)
        print(f"\nImage ops: zoomed to {zoomed.shape}, "
              f"{len(annotated.elements)} annotation elements, "
              f"{grid.rows}x{grid.cols} grid, "
              f"{regions.max()} auto-segmented regions")

        # --- wrap up --------------------------------------------------------
        for client in (radiologist, surgeon, resident):
            client.leave()
        network.run()

        # The globally-important operation survived in the database.
        reloaded = store.fetch_document("patient-442")
        print("\nAfter the room closed, the stored record's network knows:",
              "imaging.ct_head.segmentation" in reloaded.network)
        print(f"Traffic: {network.stats.messages} messages, "
              f"{network.stats.bytes_total / 1024:.0f} KB "
              f"(updates: {network.stats.bytes_by_kind.get('presentation_update', 0)} B)")
        db.close()


if __name__ == "__main__":
    main()
