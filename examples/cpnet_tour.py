"""A guided tour of the CP-network engine (the paper's Figure 2).

Builds the paper's example network exactly, then walks through everything
the presentation module asks of it: the optimal outcome, constrained
completions, dominance between outcomes, the §4.2 online updates, the
authoring audit, and per-component explanations.

Run:  python examples/cpnet_tour.py
"""

from repro.cpnet import (
    ViewerExtension,
    apply_operation,
    best_completion,
    compare,
    dominates,
    figure2_network,
    improving_flips,
    optimal_outcome,
)
from repro.cpnet.analysis import audit_network
from repro.cpnet.dominance import flipping_sequence


def show(outcome: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in sorted(outcome.items()))


def main() -> None:
    net = figure2_network()
    print("The paper's Figure 2 network:")
    for name in net.topological_order():
        parents = net.parents(name)
        rules = "; ".join(str(rule) for rule in net.cpt(name).rules)
        dependency = f" | {', '.join(parents)}" if parents else ""
        print(f"  {name}{dependency}:  {rules}")

    # --- the two queries the presentation module runs -----------------------
    best = optimal_outcome(net)
    print(f"\nOptimal outcome (top-down sweep): {show(best)}")
    forced = best_completion(net, {"c3": "c3_1"})
    print(f"Viewer forces c3=c3_1 -> best completion: {show(forced)}")
    print("  (c4 and c5 follow c3, exactly as the CPTs dictate)")

    # --- dominance: the partial order over outcomes ----------------------------
    worst = {"c1": "c1_2", "c2": "c2_1", "c3": "c3_1", "c4": "c4_2", "c5": "c5_2"}
    print(f"\nDoes the optimum dominate {show(worst)}?"
          f" -> {dominates(net, best, worst)}")
    path = flipping_sequence(net, best, worst)
    print(f"Improving flipping sequence ({len(path)} outcomes):")
    for step in path:
        print(f"  {show(step)}")
    left = dict(best, c4="c4_1")
    right = dict(best, c5="c5_1")
    print(f"compare(one-flip-on-c4, one-flip-on-c5) -> {compare(net, left, right)}")
    print(f"The optimum admits {len(list(improving_flips(net, best)))} improving flips.")

    # --- §4.2 online updates -----------------------------------------------------
    print("\n§4.2: a viewer segments c3 while it shows c3_2 (globally important):")
    apply_operation(net, "c3", "segmentation", active_value="c3_2")
    updated = optimal_outcome(net)
    print(f"  new optimal outcome: {show(updated)}")
    viewer = ViewerExtension(net, "dr-lee")
    viewer.apply_operation("c4", "zoom", active_value=updated["c4"])
    print(f"  dr-lee's private zoom: extension stores {viewer.size()} variable(s), "
          f"base still has {len(net)}")
    print(f"  dr-lee's view: {show(viewer.optimal_outcome())}")

    # --- authoring audit ------------------------------------------------------------
    print("\nAuthoring audit of the (updated) network:")
    print(audit_network(net).summary())


if __name__ == "__main__":
    main()
