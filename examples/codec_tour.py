"""A tour of ``repro.net.codec``: encode once, send everywhere.

Act one takes one presentation-update body and shows what the canonical
binary framing does to it: tagged values, varint lengths, protocol
strings interned to one byte — and how a per-connection dynamic table
shrinks the *second* frame that repeats an application string.

Act two puts a six-physician consultation on the reliable transport and
watches the ledger: every shared choice is serialized three times total
(the choice, the update, the peer event) no matter how many viewers
receive it, and the saved encodes/bytes are counted by the codec itself.

Act three opts the server into a 50 ms propagation-batching window and
replays the same consultation: the per-recipient update+event pair
coalesces into one acked frame, so the reliable transport moves fewer
frames and fewer bytes for the same delivered updates.

Run:  python examples/codec_tour.py
"""

import tempfile

from repro import obs
from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import Link, SimulatedNetwork
from repro.net.codec import StringInterner, encode_message
from repro.server import InteractionServer
from repro.server.protocol import MessageKind, json_encoded_size

MBPS = 1_000_000

#: The consultation script acts two and three replay.
SCRIPT = [
    ("imaging.ct_head", "segmented"),
    ("labs", "hidden"),
    ("consult.voice_note", "transcript"),
    ("imaging.ct_head", "icon"),
    ("labs", "shown"),
    ("consult.referral_letter", "full"),
]


def act(title):
    print(f"\n== {title} ==")


def run_consultation(workdir, name, population, window_s):
    """A scripted consultation; returns the wire totals."""
    db = Database(f"{workdir}/{name}")
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    network = SimulatedNetwork(reliability=True)
    InteractionServer(store, network=network, batch_window_s=window_s)
    clients = []
    for index in range(population):
        client = ClientModule(f"dr-{index}", network=network, auto_fetch=False)
        network.attach_client(
            client,
            downlink=Link(bandwidth_bps=50 * MBPS),
            uplink=Link(bandwidth_bps=50 * MBPS),
        )
        client.join("record-17")
        clients.append(client)
    network.run()
    network.reset_stats()
    counters = obs.snapshot()["counters"]
    before = {
        key: counters.get(key, 0)
        for key in ("codec.encodes", "codec.encodes_saved", "codec.bytes_saved")
    }
    for component, value in SCRIPT:
        clients[0].choose(component, value)
        network.run()
    counters = obs.snapshot()["counters"]
    out = {
        key: counters.get(key, 0) - start for key, start in before.items()
    }
    out["frames"] = network.stats.messages
    out["wire_bytes"] = network.stats.bytes_total
    out["updates"] = sum(c.updates_received for c in clients)
    db.close()
    return out


def main() -> None:
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry), obs.use_event_log(obs.EventLog()):
        act("act one: one body, three encodings")
        body = {
            "doc_id": "record-17",
            "changes": {"imaging.ct_head": "segmented"},
            "seq": 4,
        }
        frame = encode_message(MessageKind.PRESENTATION_UPDATE, body)
        print(f"update body: {body}")
        print(f"JSON encoding (through PR 4):   {json_encoded_size(body)} bytes,"
              " serialized twice per send (size + checksum)")
        print(f"binary frame (static interning): {frame.size_bytes} bytes,"
              f" crc32 {frame.checksum:#010x}, encoded once, reused forever")
        interner = StringInterner()
        first = encode_message(MessageKind.PRESENTATION_UPDATE, body, interner)
        second = encode_message(MessageKind.PRESENTATION_UPDATE, body, interner)
        print("per-connection dynamic interning: "
              f"first frame {first.size_bytes} bytes registers the strings, "
              f"repeat frame {second.size_bytes} bytes back-references them")

        act("act two: six viewers, three encodes per shared choice")
        with tempfile.TemporaryDirectory() as workdir:
            plain = run_consultation(workdir, "fanout", 6, window_s=0.0)
            per_choice = plain["codec.encodes"] / len(SCRIPT)
            print(f"{len(SCRIPT)} shared choices fanned out to 6 viewers:")
            print(f"  encode calls: {plain['codec.encodes']} "
                  f"({per_choice:.1f} per choice — flat in room size)")
            print(f"  frame reuses: {plain['codec.encodes_saved']} "
                  f"({plain['codec.bytes_saved']} re-serialization bytes never paid)")
            print(f"  reliable transport: {plain['frames']} frames, "
                  f"{plain['wire_bytes']} bytes, {plain['updates']} updates delivered")

            act("act three: the same consultation, 50 ms batching window")
            batched = run_consultation(workdir, "batched", 6, window_s=0.05)
            print(f"  unbatched: {plain['frames']} frames / {plain['wire_bytes']} bytes")
            print(f"  batched:   {batched['frames']} frames / {batched['wire_bytes']} bytes "
                  f"(same {batched['updates']} updates delivered)")
            saved = 1 - batched["frames"] / plain["frames"]
            print(f"  the window coalesced each recipient's update+event pair: "
                  f"{saved:.0%} fewer acked frames")
            assert batched["updates"] == plain["updates"]
            assert batched["frames"] < plain["frames"]

    print("\nthe wire now pays per distinct message body, not per recipient.")


if __name__ == "__main__":
    main()
