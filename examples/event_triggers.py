"""Dynamic event triggers and broadcasting (the paper's future work,
implemented).

A hospital deployment wires three triggers into the interaction server:

  1. audit — log every operation performed on any imaging component;
  2. escalation — the first time the CT is segmented, broadcast an alert
     into the room so everyone looks at it;
  3. quorum — once the room reaches three participants, broadcast that
     the consultation is quorate (fires once).

Run:  python examples/event_triggers.py
"""

import tempfile

from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import SimulatedNetwork
from repro.server import InteractionServer
from repro.server.triggers import all_of, on_component, on_kind, on_room_population


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        db = Database(f"{workdir}/db")
        store = MultimediaObjectStore(db)
        store.store_document(build_sample_medical_record())

        network = SimulatedNetwork()
        server = InteractionServer(store, network=network)
        audit_log = []

        # 1. audit every operation on imaging components
        server.triggers.register(
            lambda room, change: (
                change.kind == "operation"
                and change.data.get("component", "").startswith("imaging.")
            ),
            lambda room, change: audit_log.append(
                f"{change.viewer_id} performed {change.data['operation']} "
                f"on {change.data['component']}"
            ),
            description="imaging operation audit",
        )

        # 2. escalate the first segmentation of the CT (fires once)
        server.triggers.register(
            all_of(on_kind("choice"), on_component("imaging.ct_head")),
            lambda room, change: (
                server.broadcast(
                    {"alert": f"{change.viewer_id} switched the CT to "
                              f"{change.data['value']} — please review"},
                    room_id=room.room_id,
                )
                if change.data.get("value") == "segmented"
                else None
            ),
            description="CT segmentation escalation",
        )

        # 3. announce quorum once
        server.triggers.register(
            on_room_population(3),
            lambda room, change: server.broadcast(
                {"note": "three participants present — consultation is quorate"},
                room_id=room.room_id,
            ),
            once=True,
            description="quorum announcement",
        )

        clients = []
        for name in ("radiologist", "surgeon", "resident"):
            client = ClientModule(name, network=network)
            network.attach_client(client)
            client.join("record-17")
            clients.append(client)
        network.run()

        radiologist, surgeon, resident = clients
        radiologist.operate("imaging.ct_head", "zoom")
        network.run()
        surgeon.choose("imaging.ct_head", "segmented")  # escalation fires here
        network.run()
        surgeon.choose("labs", "hidden")  # quorum trigger (already joined) fires on first change
        network.run()

        print("Audit log:")
        for entry in audit_log:
            print(f"  {entry}")
        print(f"\nBroadcasts received by the resident ({len(resident.broadcasts)}):")
        for message in resident.broadcasts:
            print(f"  {message}")
        print("\nRegistered triggers still active:")
        for trigger in server.triggers.triggers:
            print(f"  #{trigger.trigger_id} {trigger.description} "
                  f"(fired {trigger.fired_count}x)")
        db.close()


if __name__ == "__main__":
    main()
