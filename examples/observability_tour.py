"""A tour of ``repro.obs`` over one traced consultation session.

Runs the Section 1 scenario — retrieve the record, join the room, choose
a presentation, let the server propagate it — with every tier's
always-on instrumentation visible:

* ``repro.obs.timeit`` times each phase CLI-style (``[timeit] ...``);
* a :class:`Tracer` driven by the *simulated* clock produces a
  deterministic span tree of the session (byte-identical on every run);
* the server's own ``server.join_room`` / ``server.propagate`` spans are
  shown from the default tracer;
* the metrics the session moved — db scans, wire bytes, propagation
  payloads, CP-net sweeps — are printed as a before/after diff.

Then a second act: a :class:`TelemetryMonitor` joins a three-client
consultation *over the simulated network itself* — the flight recorder's
events and the registry's metric diffs arrive as ``TELEMETRY`` /
``TELEMETRY_EVENT`` messages on the monitor's own (modelled) downlink,
and are folded into one text dashboard.

Run:  python examples/observability_tour.py
"""

import tempfile

from repro import obs
from repro.client import ClientModule, TelemetryMonitor
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import Link, SimulatedNetwork
from repro.obs import Tracer, render_span_tree, timeit, to_lines
from repro.server import InteractionServer

MBPS = 1_000_000


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        before = obs.snapshot()

        with timeit("db.setup"):
            db = Database(f"{workdir}/db")
            store = MultimediaObjectStore(db)
            store.store_document(build_sample_medical_record())

        network = SimulatedNetwork()
        server = InteractionServer(store, network=network)

        # Session-level spans run on the *simulated* clock: durations are
        # wire time, and the tree is identical on every run.
        session_trace = Tracer(clock=lambda: network.clock.now)

        with timeit("consultation"), session_trace.span("session"):
            with session_trace.span("retrieve"):
                document = store.fetch_document("record-17")
                print(f"retrieved {document.title!r}")

            lee = ClientModule("lee", network=network)
            cho = ClientModule("cho", network=network)
            network.attach_client(lee, downlink=Link(bandwidth_bps=20 * MBPS))
            network.attach_client(
                cho, downlink=Link(bandwidth_bps=1.5 * MBPS, latency_s=0.04)
            )

            with session_trace.span("join_room"):
                lee.join("record-17")
                cho.join("record-17")
                network.run()

            with session_trace.span("choose"):
                lee.choose("imaging.ct_head", "segmented")

            with session_trace.span("propagate"):
                network.run()

        print("\n-- session span tree (simulated clock) --")
        print(render_span_tree(session_trace.last()))

        print("\n-- server-side spans (default tracer, wall clock) --")
        for span in server._trace.roots[-3:]:
            print(render_span_tree(span))

        print("\n-- metrics moved by this session --")
        delta = obs.diff(before, obs.snapshot())
        for line in to_lines(delta).splitlines():
            if line.split()[1].partition(".")[0] in ("db", "net", "server", "cpnet"):
                print(line)

        db.close()


def monitored_consultation() -> None:
    """Act two: the machinery watching itself over its own network."""
    with tempfile.TemporaryDirectory() as workdir:
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            network = SimulatedNetwork()
            # Flight recorder on the simulated clock: every event is
            # stamped with wire time, so the recording is reproducible.
            log = obs.EventLog(clock=lambda: network.clock.now, tracer=obs.trace)
            with obs.use_event_log(log):
                watchdog = obs.Watchdog(event_log=log, registry=registry)
                # A tight view-response budget: the 1.5 Mbps client's
                # round trip misses it, the faster links make it.
                watchdog.set_budget("client.view_response", 0.0105)
                with obs.use_watchdog(watchdog):
                    db = Database(f"{workdir}/db")
                    store = MultimediaObjectStore(db)
                    store.store_document(build_sample_medical_record())
                    server = InteractionServer(store, network=network)

                    # The monitor is just another node on the hub.
                    monitor = TelemetryMonitor("ops", network=network)
                    network.attach_client(monitor)
                    monitor.connect()
                    network.run()

                    doctors = []
                    for name, mbps in (("lee", 20), ("cho", 1.5), ("rao", 8)):
                        doctor = ClientModule(name, network=network)
                        network.attach_client(
                            doctor, downlink=Link(bandwidth_bps=mbps * MBPS)
                        )
                        doctors.append(doctor)
                        doctor.join("record-17")
                    network.run()

                    doctors[0].choose("imaging.ct_head", "segmented")
                    network.run()
                    doctors[1].choose("labs", "hidden")
                    network.run()
                    for doctor in doctors:
                        doctor.leave()
                    network.run()

                    print(
                        f"\nmonitor received {len(monitor.snapshots)} telemetry "
                        f"snapshots and {len(monitor.events)} events "
                        f"({len(monitor.warn_events())} WARN+) over the wire"
                    )
                    print()
                    # Excluded: wall-clock latency histograms, plus the
                    # byte/delay accounting that telemetry traffic itself
                    # perturbs (a telemetry payload's encoded size depends
                    # on the wall-clock floats inside it). Everything left
                    # is simclock-driven and byte-identical across runs.
                    print(
                        monitor.render(
                            title="three-doctor consultation, as the monitor saw it",
                            exclude=(
                                "db.query_latency_s",
                                "trace.",
                                "net.bytes_total",
                                "net.queue_delay_s",
                                "net.link.monitor-",
                                "server.bytes_out",
                            ),
                            max_events=12,
                        )
                    )
                    print(f"\nserver stats at close: {server.stats()}")
                    db.close()


if __name__ == "__main__":
    main()
    monitored_consultation()
