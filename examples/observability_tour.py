"""A tour of ``repro.obs`` over one traced consultation session.

Runs the Section 1 scenario — retrieve the record, join the room, choose
a presentation, let the server propagate it — with every tier's
always-on instrumentation visible:

* ``repro.obs.timeit`` times each phase CLI-style (``[timeit] ...``);
* a :class:`Tracer` driven by the *simulated* clock produces a
  deterministic span tree of the session (byte-identical on every run);
* the server's own ``server.join_room`` / ``server.propagate`` spans are
  shown from the default tracer;
* the metrics the session moved — db scans, wire bytes, propagation
  payloads, CP-net sweeps — are printed as a before/after diff.

Run:  python examples/observability_tour.py
"""

import tempfile

from repro import obs
from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import Link, SimulatedNetwork
from repro.obs import Tracer, render_span_tree, timeit, to_lines
from repro.server import InteractionServer

MBPS = 1_000_000


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        before = obs.snapshot()

        with timeit("db.setup"):
            db = Database(f"{workdir}/db")
            store = MultimediaObjectStore(db)
            store.store_document(build_sample_medical_record())

        network = SimulatedNetwork()
        server = InteractionServer(store, network=network)

        # Session-level spans run on the *simulated* clock: durations are
        # wire time, and the tree is identical on every run.
        session_trace = Tracer(clock=lambda: network.clock.now)

        with timeit("consultation"), session_trace.span("session"):
            with session_trace.span("retrieve"):
                document = store.fetch_document("record-17")
                print(f"retrieved {document.title!r}")

            lee = ClientModule("lee", network=network)
            cho = ClientModule("cho", network=network)
            network.attach_client(lee, downlink=Link(bandwidth_bps=20 * MBPS))
            network.attach_client(
                cho, downlink=Link(bandwidth_bps=1.5 * MBPS, latency_s=0.04)
            )

            with session_trace.span("join_room"):
                lee.join("record-17")
                cho.join("record-17")
                network.run()

            with session_trace.span("choose"):
                lee.choose("imaging.ct_head", "segmented")

            with session_trace.span("propagate"):
                network.run()

        print("\n-- session span tree (simulated clock) --")
        print(render_span_tree(session_trace.last()))

        print("\n-- server-side spans (default tracer, wall clock) --")
        for span in server._trace.roots[-3:]:
            print(render_span_tree(span))

        print("\n-- metrics moved by this session --")
        delta = obs.diff(before, obs.snapshot())
        for line in to_lines(delta).splitlines():
            if line.split()[1].partition(".")[0] in ("db", "net", "server", "cpnet"):
                print(line)

        db.close()


if __name__ == "__main__":
    main()
