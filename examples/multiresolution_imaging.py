"""Multi-resolution image delivery (the paper's Figure 9, end to end).

Encodes a CT phantom with the multi-layer codec (wavelet main
approximation + local-cosine residual layers), stores the stream in the
CMP_OBJECTS_TABLE, and serves three viewers on very different links: each
receives the largest layer prefix their bandwidth affords within the
interactivity deadline — "the same image ... shown with different
resolutions to the various partners in the chat room".

Run:  python examples/multiresolution_imaging.py
"""

import tempfile

from repro.db import Database, MultimediaObjectStore
from repro.media.image import (
    EncodedImage,
    MultiLayerCodec,
    ct_phantom,
    psnr,
    resolution_ladder,
)
from repro.media.image.progressive import layers_for_bandwidth, transcode_to_budget

KBPS = 1_000
MBPS = 1_000_000

VIEWERS = (
    ("radiologist-lan", 100 * MBPS),
    ("clinic-dsl", 2 * MBPS),
    ("home-modem", 96 * KBPS),
)
DEADLINE_S = 2.0


def main() -> None:
    image = ct_phantom(256, seed=11)
    raw_bytes = len(image.to_bytes())
    codec = MultiLayerCodec(wavelet_levels=3, dct_block=8, base_step=64.0)
    encoded = codec.encode(image, num_layers=4)
    print(f"CT phantom {image.shape}: raw {raw_bytes / 1024:.0f} KB")
    print("\nMulti-layer stream (wavelet approximation + local-cosine residuals):")
    for step in resolution_ladder(encoded, image):
        ratio = raw_bytes / step.bytes_on_wire
        print(f"  layers={step.num_layers}  {step.bytes_on_wire:7d} B  "
              f"{step.psnr_db:6.2f} dB  ({ratio:5.1f}x smaller than raw)")

    # Store the stream once; serve every bandwidth class from it.
    with tempfile.TemporaryDirectory() as workdir:
        db = Database(f"{workdir}/db")
        store = MultimediaObjectStore(db)
        handle = store.store_compressed(
            encoded.to_bytes(), header=b"mlc-v1", filename="ct-442.mlc"
        )
        print(f"\nStored stream as {handle.media_ref}")

        _, stream = store.fetch(handle)
        stored = EncodedImage.from_bytes(stream)
        print(f"\nPer-viewer delivery within a {DEADLINE_S:.0f}s deadline:")
        for name, bandwidth in VIEWERS:
            layers = layers_for_bandwidth(stored, bandwidth, DEADLINE_S)
            if layers == 0:
                print(f"  {name:16s} cannot receive even one layer in time")
                continue
            budget = int(bandwidth * DEADLINE_S / 8)
            shipped = transcode_to_budget(stored, budget)
            decoded = MultiLayerCodec.decode(EncodedImage.from_bytes(shipped))
            transfer_s = len(shipped) * 8 / bandwidth
            print(f"  {name:16s} {layers} layer(s), {len(shipped):7d} B, "
                  f"{transfer_s:5.2f}s transfer, {psnr(image, decoded):6.2f} dB")
        db.close()


if __name__ == "__main__":
    main()
