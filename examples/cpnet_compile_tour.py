"""A tour of ``repro.cpnet.compiled``: the compiled hot path + shared cache.

The interpreted CP-net engine re-derives the topological order and
re-scans every CPT rule list on every ``best_completion`` — per viewer,
per choice. This tour shows what compilation buys:

1. **Compile once per structural version** — the net is frozen into a
   topological sweep over flat ``parent values -> best value`` tables;
   specificity arbitration is resolved at compile time.
2. **Byte-identical answers, much faster** — the compiled and the
   interpreted engine produce the same dicts in the same key order.
3. **Cross-viewer sharing** — a shard-scoped ``CompletionCache`` memoizes
   completed outcomes by (doc, version, overlay, evidence): when eight
   room members impose the same constraints, one sweep serves them all.
4. **Precise §4.2 invalidation** — a global operation bumps the
   structural version, recompiles once, and evicts exactly the open
   document's cached completions.

Run:  python examples/cpnet_compile_tour.py
"""

import json
import tempfile
import time

from repro import obs
from repro.cpnet import compile_cpnet, interpreted_mode
from repro.cpnet.reasoning import best_completion
from repro.db import Database, MultimediaObjectStore
from repro.server import InteractionServer
from repro.workloads import generate_record

MEMBERS = 8


def main():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry), obs.use_event_log(obs.EventLog()):
        doc = generate_record("tour", sections=5, components_per_section=4, seed=7)
        net = doc.network

        print("== 1. Compile once per structural version ==")
        compiled = compile_cpnet(net)
        flat_rows = sum(len(t.orders) for t in compiled._sweep)
        print(f"  {compiled!r}")
        print(
            f"  {len(net)} variables frozen into {flat_rows} flat rows; "
            f"structure_version={net.structure_version}"
        )
        assert compile_cpnet(net) is compiled, "same version -> same compilation"

        print("\n== 2. Byte-identical to the interpreted engine ==")
        path = doc.component_paths()[0]
        evidence = {path: doc.component(path).domain[-1]}
        with interpreted_mode():
            reference = best_completion(net, evidence)
        fast = compiled.best_completion(evidence)
        assert json.dumps(fast) == json.dumps(reference)
        print(f"  evidence {evidence} -> same {len(fast)}-component outcome")
        n = 300
        started = time.perf_counter()
        with interpreted_mode():
            for _ in range(n):
                best_completion(net, evidence)
        slow_s = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(n):
            compiled.best_completion(evidence)
        fast_s = time.perf_counter() - started
        print(
            f"  {n} sweeps: interpreted {slow_s * 1000:.1f} ms, "
            f"compiled {fast_s * 1000:.1f} ms ({slow_s / fast_s:.1f}x)"
        )

        print(f"\n== 3. {MEMBERS} members share one completion cache ==")
        with tempfile.TemporaryDirectory() as workdir:
            db = Database(f"{workdir}/db")
            try:
                store = MultimediaObjectStore(db)
                store.store_document(
                    generate_record("rec", sections=5, components_per_section=4, seed=7)
                )
                server = InteractionServer(store)
                sessions = []
                for index in range(MEMBERS):
                    session = server.connect_session(f"viewer-{index}")
                    server.join_room(session.session_id, "rec")
                    sessions.append(session)
                cache = server.completion_cache
                print(
                    f"  after {MEMBERS} joins: {cache.hits} cache hits, "
                    f"{cache.misses} misses — one sweep served "
                    f"{cache.hits + 1} identical presentations"
                )
                room = server.room(server.room_ids[0])
                component = room.document.component_paths()[2]
                value = room.document.component(component).domain[0]
                server.handle_choice(sessions[0].session_id, component, value)
                print(
                    f"  one shared choice on {component!r}: every member "
                    f"reconfigures -> {cache.hits} hits total"
                )

                print("\n== 4. A global operation invalidates precisely ==")
                before = room.document.network.structure_version
                server.handle_operation(
                    sessions[0].session_id, component, "segment",
                    global_importance=True,
                )
                net_version = room.document.network.structure_version
                print(
                    f"  structure_version {before} -> {net_version}; "
                    f"{cache.invalidations} cached completions evicted "
                    f"(doc-scoped, version-keyed)"
                )
                print(f"  cache after churn: {cache!r}")
            finally:
                db.close()

        print("\n== The cpnet panel of the stock dashboard ==")
        print(
            obs.render_dashboard(
                registry.snapshot(),
                title="cpnet compilation telemetry",
                include=("cpnet.compile", "cpnet.completion_cache.", "cpnet.completions"),
                max_events=0,
            )
        )


if __name__ == "__main__":
    main()
