"""A tour of the sharded gateway tier: homing, route caches, failover.

Three consultations run through a 3-shard cluster behind TWO gateways
and a directory. The directory homes each client on a gateway by
consistent hash over its node id; after the JOIN, every op rides the
home gateway's route cache straight to the owning shard — the directory
never touches the data plane.

Mid-conference the gateway homing ``case-0``'s writer fail-stops. Its
heartbeats go silent, the directory's detector notices, the stranded
clients are re-homed onto the surviving gateway, and each one replays
its logged ops through the new home. The shard-side per-session op_seq
fence drops the replays that had already been applied, so the replay is
exactly-once — which the tour proves the same way ``cluster_tour`` does:
a control run of the identical conference with no crash must end with
byte-identical displayed state on every client.

Run:  python examples/gateway_tour.py
"""

import tempfile

from repro import obs
from repro.cluster import ClusterConfig, ClusterHarness
from repro.db import Database, MultimediaObjectStore
from repro.workloads import consultation_events, generate_record

DOCS = ("case-0", "case-1", "case-2")
EVENTS_PER_ROOM = 6
HORIZON = 30.0


def build_store(workdir):
    db = Database(f"{workdir}/db")
    store = MultimediaObjectStore(db)
    records = {}
    for index, doc_id in enumerate(DOCS):
        record = generate_record(
            doc_id, sections=2, components_per_section=3, seed=index
        )
        records[doc_id] = record
        store.store_document(record)
    return db, store, records


def run_conference(workdir, crash: bool):
    """One 3-room conference through the tier; optionally kill a gateway."""
    db, store, records = build_store(workdir)
    config = ClusterConfig(shards=3, gateways=2, failure_timeout=1.5)
    harness = ClusterHarness(store, config)

    clients = {}
    for index, doc_id in enumerate(DOCS):
        pair = [harness.add_client(f"dr-{index}-{j}") for j in range(2)]
        for client in pair:
            client.join(doc_id)
        clients[doc_id] = pair
    harness.run()

    homes = {
        client.viewer_id: harness.home_of(client.viewer_id)
        for pair in clients.values()
        for client in pair
    }
    # The gateway to kill: whoever homes case-0's writer — guaranteed to
    # hold parked ops and a warm route cache when it dies.
    victim = harness.home_of("dr-0-0")

    streams = {
        doc_id: consultation_events(
            records[doc_id], num_events=EVENTS_PER_ROOM, seed=11 + index
        )
        for index, doc_id in enumerate(DOCS)
    }
    # First half of every room's choice stream, then (maybe) the crash,
    # then the second half through whoever is still standing.
    for doc_id, events in streams.items():
        for path, value in events[: EVENTS_PER_ROOM // 2]:
            clients[doc_id][0].choose(path, value)
    harness.run()
    harness.start(until=HORIZON)
    if crash:
        harness.run_until(3.0)
        harness.crash(victim)
        harness.run_until(8.0)
    harness.run()
    for doc_id, events in streams.items():
        for path, value in events[EVENTS_PER_ROOM // 2 :]:
            clients[doc_id][1].choose(path, value)
    harness.run()

    out = {
        "victim": victim,
        "homes_before": homes,
        "homes_after": {
            viewer_id: harness.home_of(viewer_id) for viewer_id in homes
        },
        "final": {
            client.viewer_id: client.displayed()
            for pair in clients.values()
            for client in pair
        },
        "errors": [e for pair in clients.values() for c in pair for e in c.errors],
        "gateway_failovers": list(harness.gateway_failovers),
        "replays": {
            client.viewer_id: client.gateway_failovers
            for pair in clients.values()
            for client in pair
            if client.gateway_failovers
        },
        "route_cache": harness.route_cache_stats(),
        "directory": harness.directory.stats(),
    }
    db.close()
    return out


def main() -> None:
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog(tracer=obs.trace)
        with obs.use_event_log(log):
            with tempfile.TemporaryDirectory() as workdir:
                result = run_conference(workdir, crash=True)
            snapshot = registry.snapshot()["counters"]

    print("== act one: clients homed across the tier by consistent hash ==")
    for viewer_id, home in sorted(result["homes_before"].items()):
        print(f"  {viewer_id}: homed on {home}")
    print(f"gateway homing case-0's writer (the victim): {result['victim']}")

    print("\n== act two: the victim dies mid-conference ==")
    for failover in result["gateway_failovers"]:
        print(
            f"gateway failover: {failover['gateway']} died, "
            f"{failover['clients']} clients re-homed at "
            f"t={failover['completed']:.2f} sim-s"
        )
    for viewer_id, entries in sorted(result["replays"].items()):
        for entry in entries:
            print(
                f"  {viewer_id} re-attached to {entry['gateway']} and "
                f"replayed {entry['replayed']} parked ops"
            )
    dups = snapshot.get("cluster.shard.dup_ops_dropped", 0)
    print(f"replayed duplicates fenced by the shards' op_seq: {dups}")
    for viewer_id, home in sorted(result["homes_after"].items()):
        moved = " (re-homed)" if home != result["homes_before"][viewer_id] else ""
        print(f"  {viewer_id}: now on {home}{moved}")
    print(f"client-visible errors during failover: {result['errors']}")

    print("\n-- route caches kept the directory off the data plane --")
    cache = result["route_cache"]
    print(
        f"  tier-wide: {cache['hits']} hits, {cache['misses']} misses, "
        f"{cache['invalidations']} invalidations "
        f"(hit rate {cache['hit_rate']:.2f})"
    )
    print(f"  directory at close: {result['directory']}")
    for name in sorted(snapshot):
        if name.startswith("gateway.route_cache."):
            print(f"  {name} = {snapshot[name]}")

    print("\n== act three: the no-crash control run ==")
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog(tracer=obs.trace)
        with obs.use_event_log(log):
            with tempfile.TemporaryDirectory() as workdir:
                control = run_conference(workdir, crash=False)
    assert control["errors"] == []

    same = result["final"] == control["final"]
    print(f"final displayed state, all {len(control['final'])} clients, "
          f"crash run vs control: {'byte-identical' if same else 'DIVERGED'}")
    if not same:
        raise SystemExit("gateway failover lost acknowledged state")
    print("the tier survived its own access point dying — replay held.")


if __name__ == "__main__":
    main()
