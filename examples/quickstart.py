"""Quickstart: author a multimedia document, store it, confer over it.

Walks the full pipeline in one file:
  1. author a document with CP-net preferences,
  2. store it in the embedded object-relational database,
  3. open a shared room over the simulated network with two clients,
  4. watch a cooperative choice and a personal bandwidth adaptation.

Run:  python examples/quickstart.py
"""

import tempfile

from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import DocumentBuilder, Hidden, Icon, JPGImage, Text
from repro.net import Link, SimulatedNetwork
from repro.presentation import TUNING_VARIABLE, install_bandwidth_tuning, level_for_bandwidth
from repro.server import InteractionServer

KB = 1024
MBPS = 1_000_000


def author_document():
    """Step 1 — the document author describes content and preferences."""
    return (
        DocumentBuilder("demo-record", title="Demo patient record")
        .composite("imaging")
        .prefer("imaging", ["shown", "hidden"])
        .primitive(
            "imaging.ct",
            [
                JPGImage("flat", size_bytes=512 * KB, resolution=2),
                Icon("icon", size_bytes=8 * KB),
                Hidden(),
            ],
        )
        .depends("imaging.ct", on=["imaging"])
        .prefer_when("imaging.ct", {"imaging": "shown"}, ["flat", "icon", "hidden"])
        .prefer_when("imaging.ct", {"imaging": "hidden"}, ["hidden", "icon", "flat"])
        # The paper's signature rule: when the CT is on screen, the X-ray
        # shrinks to an icon.
        .primitive(
            "imaging.xray",
            [
                JPGImage("flat", size_bytes=256 * KB, resolution=2),
                Icon("icon", size_bytes=6 * KB),
                Hidden(),
            ],
        )
        .depends("imaging.xray", on=["imaging.ct"])
        .prefer_when("imaging.xray", {"imaging.ct": "flat"}, ["icon", "hidden", "flat"])
        .prefer_when("imaging.xray", {}, ["flat", "icon", "hidden"])
        .primitive(
            "report",
            [Text("full", size_bytes=8 * KB), Text("summary", size_bytes=1 * KB), Hidden()],
        )
        .prefer("report", ["summary", "full", "hidden"])
        .build()
    )


def main() -> None:
    document = author_document()
    print(f"Authored {document}")
    print("Author's default presentation:")
    for path, value in sorted(document.default_presentation().items()):
        print(f"  {path:24s} -> {value}")

    # Make heavy components bandwidth-aware (§4.4 tuning variables).
    tuned = install_bandwidth_tuning(document)
    print(f"\nBandwidth tuning installed on: {', '.join(tuned)}")

    with tempfile.TemporaryDirectory() as workdir:
        # Step 2 — persist through the Fig. 7 schema.
        db = Database(f"{workdir}/clinic-db")
        store = MultimediaObjectStore(db)
        store.store_document(document)
        print(f"Stored documents: {[d['FLD_DOCID'] for d in store.list_documents()]}")

        # Step 3 — a room with a fast and a slow participant.
        network = SimulatedNetwork()
        server = InteractionServer(store, network=network)
        fast = ClientModule("dr-fast", network=network)
        slow = ClientModule("dr-slow", network=network)
        network.attach_client(fast, downlink=Link(bandwidth_bps=50 * MBPS))
        network.attach_client(
            slow, downlink=Link(bandwidth_bps=0.3 * MBPS), uplink=Link(bandwidth_bps=0.3 * MBPS)
        )
        fast.join("demo-record")
        slow.join("demo-record")
        network.run()
        print(f"\nBoth joined room {fast.room_id!r}")
        print(f"  dr-fast join latency: {fast.join_latency:.3f}s")
        print(f"  dr-slow join latency: {slow.join_latency:.3f}s")

        # The slow client declares its bandwidth level (personal choice).
        slow.choose(TUNING_VARIABLE, level_for_bandwidth(0.3 * MBPS), scope="personal")
        network.run()
        print("\nAfter dr-slow's bandwidth adaptation:")
        print(f"  dr-fast sees ct = {fast.displayed()['imaging.ct']}")
        print(f"  dr-slow sees ct = {slow.displayed()['imaging.ct']}")

        # Step 4 — a cooperative action: dr-fast zooms into the CT for all.
        fast.choose("imaging.ct", "flat")  # shared scope by default
        network.run()
        print("\nAfter dr-fast's shared choice of the flat CT:")
        print(f"  dr-slow sees ct = {slow.displayed()['imaging.ct']} (action propagated)")
        print(f"  dr-slow sees xray = {slow.displayed()['imaging.xray']} (author's coupling)")
        print(f"  dr-slow peer events: {len(slow.peer_events)}")

        # The client window (the paper's Fig. 5), as text:
        print("\ndr-slow's window:")
        for line in slow.render.render_text().splitlines():
            print(f"  {line}")

        # Why does each component look the way it does?
        from repro.presentation import explain_for_viewer

        room = server.room(slow.room_id)
        slow_viewer = room.viewer_of(slow.session_id)
        print("\nExplanations for dr-slow's presentation:")
        for explanation in explain_for_viewer(room.engine, slow_viewer).values():
            print(f"  {explanation.describe()}")

        fast.leave()
        slow.leave()
        network.run()
        print(f"\nRoom closed; total traffic: {network.stats.messages} messages, "
              f"{network.stats.bytes_total / 1024:.0f} KB")
        db.close()


if __name__ == "__main__":
    main()
