"""Pre-fetching study (the paper's §4.4 performance discussion).

Replays the same scripted consultation against a bounded client buffer
and a bandwidth-limited link under three prefetch policies — none (pure
demand caching), random, and CP-net-guided — and prints the response-time
and hit-rate comparison the paper's pre-fetching extension targets.

Run:  python examples/prefetch_study.py
"""

from repro.prefetch import POLICIES, PrefetchSimulator
from repro.workloads import consultation_events, generate_record

MBPS = 1_000_000


def run_study(bandwidth_bps: float, buffer_bytes: int, rationality: float) -> None:
    events = consultation_events(
        generate_record("study", sections=5, components_per_section=4, seed=2),
        num_events=25,
        rationality=rationality,
        seed=7,
    )
    print(f"\nbandwidth={bandwidth_bps / MBPS:.1f} Mbit/s, "
          f"buffer={buffer_bytes / MBPS:.1f} MB, rationality={rationality}")
    print(f"  {'policy':8s} {'hit rate':>8s} {'mean wait':>10s} "
          f"{'max wait':>9s} {'prefetched':>11s} {'wasted':>8s}")
    for policy in POLICIES:
        simulator = PrefetchSimulator(
            generate_record("study", sections=5, components_per_section=4, seed=2),
            policy=policy,
            buffer_bytes=buffer_bytes,
            bandwidth_bps=bandwidth_bps,
            think_time_s=4.0,
            seed=1,
        )
        report = simulator.run(events)
        print(f"  {policy:8s} {report.hit_rate:8.2%} {report.mean_wait_s:9.2f}s "
              f"{report.max_wait_s:8.2f}s {report.prefetch_bytes / 1024:9.0f}KB "
              f"{report.wasted_prefetch_bytes / 1024:6.0f}KB")


def main() -> None:
    print("Prefetch policy comparison (same viewer session for every policy)")
    for bandwidth in (1 * MBPS, 4 * MBPS, 16 * MBPS):
        run_study(bandwidth, buffer_bytes=3 * MBPS, rationality=0.9)
    print("\nSensitivity to buffer size at 4 Mbit/s:")
    for buffer_bytes in (1 * MBPS, 3 * MBPS, 8 * MBPS):
        run_study(4 * MBPS, buffer_bytes=buffer_bytes, rationality=0.9)


if __name__ == "__main__":
    main()
