"""A tour of ``repro.interest``: propagate only what each viewer watches.

Act one puts three physicians in a room and has one narrow its
subscription to the labs section: the next imaging change costs that
member zero wire bytes while the implicitly-subscribed member still
receives it.

Act two switches the server to ``interest_mode="cpnet"`` and shows the
seed: a joiner starts subscribed to exactly the primitives its CP-net
outcome makes visible — §5.3's "relevant parts", computed per viewer.

Act three widens a subscription after the fact: the SUBSCRIBE_ACK's
catch-up diff heals precisely the changes filtering withheld, and
nothing else.

Act four degrades one viewer to low bandwidth and fetches a heavy
payload for everyone: the degraded member receives a ~5 % one-layer
prefix cut from the same cached frame, then the interest dashboard
panel sums up what the room saved.

Run:  python examples/interest_tour.py
"""

import tempfile

from repro import obs
from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.interest import SIMULCAST_FLOOR, layer_prefix_size
from repro.net import SimulatedNetwork
from repro.presentation import (
    BANDWIDTH_LOW,
    TUNING_VARIABLE,
    install_bandwidth_tuning,
)
from repro.server import InteractionServer


class MeteredNetwork(SimulatedNetwork):
    """Tallies application bytes per recipient (transport acks excluded)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.bytes_by_node = {}

    def _transmit(self, message):
        if message.kind != "net_ack":
            self.bytes_by_node[message.recipient] = (
                self.bytes_by_node.get(message.recipient, 0) + message.size_bytes
            )
        super()._transmit(message)

    def reset_metering(self):
        self.bytes_by_node = {}


def act(title):
    print(f"\n== {title} ==")


def make_room(workdir, name, interest_mode, viewers):
    db = Database(f"{workdir}/{name}")
    store = MultimediaObjectStore(db)
    document = build_sample_medical_record()
    install_bandwidth_tuning(document)
    store.store_document(document)
    network = MeteredNetwork()
    server = InteractionServer(store, network=network, interest_mode=interest_mode)
    clients = []
    for viewer in viewers:
        client = ClientModule(viewer, network=network, auto_fetch=False)
        network.attach_client(client)
        client.join("record-17")
        clients.append(client)
    network.run()
    return db, network, server, clients


def main() -> None:
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry), tempfile.TemporaryDirectory() as workdir:
        act("act one: a narrow subscription means zero bytes")
        db, network, server, clients = make_room(
            workdir, "filter", "off", ["cho", "lee", "park"]
        )
        actor, wide, narrow = clients
        narrow.subscribe(["labs"], replace=True)
        network.run()
        network.reset_metering()
        actor.choose("imaging.ct_head", "segmented")
        network.run()
        print(f"{actor.viewer_id} chose imaging.ct_head=segmented; wire cost:")
        for client in (wide, narrow):
            subs = client.subscriptions or ("<everything>",)
            print(
                f"  {client.viewer_id:<5} subscribed to {', '.join(subs):<14}"
                f" received {network.bytes_by_node.get(client.node_id, 0):>3} bytes,"
                f" displays {client.displayed()['imaging.ct_head']}"
            )
        assert network.bytes_by_node.get(narrow.node_id, 0) == 0
        db.close()

        act("act two: CP-net mode seeds the relevant parts")
        db, network, server, clients = make_room(
            workdir, "seed", "cpnet", ["cho", "lee"]
        )
        room = server.room(server.room_ids[0])
        for client in clients:
            seeded = room.interest.subscriptions(client.session_id)
            print(f"  {client.viewer_id} joined already following: {', '.join(seeded)}")

        act("act three: widening heals exactly what was filtered")
        laggard = clients[1]
        laggard.subscribe(["labs"], replace=True)
        network.run()
        clients[0].choose("imaging.ct_head", "segmented")
        clients[0].choose("consult.voice_note", "transcript")
        network.run()
        print(f"  while narrowed, {laggard.viewer_id} still displays "
              f"imaging.ct_head={laggard.displayed()['imaging.ct_head']}")
        laggard.subscribe(["imaging.ct_head"])
        network.run()
        print(f"  after re-subscribing, the ack's catch-up diff brings "
              f"imaging.ct_head={laggard.displayed()['imaging.ct_head']}")
        print(f"  ...but consult.voice_note stays filtered: "
              f"{laggard.displayed()['consult.voice_note']}")
        assert laggard.displayed()["imaging.ct_head"] == "segmented"
        db.close()

        act("act four: one cached frame, per-subscriber layers")
        db, network, server, clients = make_room(
            workdir, "layers", "cpnet", ["cho", "lee"]
        )
        full, low = clients
        low.choose(TUNING_VARIABLE, BANDWIDTH_LOW, scope="personal")
        network.run()
        room = server.room(server.room_ids[0])
        size = room.document.component("imaging.ct_head").presentation_size("flat")
        assert size >= SIMULCAST_FLOOR
        network.reset_metering()
        full.fetch_payload("imaging.ct_head", "flat")
        low.fetch_payload("imaging.ct_head", "flat")
        network.run()
        full_bytes = network.bytes_by_node[full.node_id]
        low_bytes = network.bytes_by_node[low.node_id]
        print(f"  imaging.ct_head 'flat' is {size} bytes")
        print(f"  {full.viewer_id} (full quality) received {full_bytes} bytes")
        print(f"  {low.viewer_id} (tuning.bandwidth=low) received {low_bytes} bytes "
              f"(one-layer prefix = {layer_prefix_size(size, 1)})")
        assert low_bytes < full_bytes
        db.close()

        print("\nthe interest dashboard panel:")
        print(obs.render_dashboard(registry.snapshot(), include=("interest.",)))

    print("propagation now costs per watcher, not per member.")


if __name__ == "__main__":
    main()
