"""Similar-case retrieval during a consultation (the paper's §1 scenario).

"While discussing the case, some of them would like to consider similar
cases either from the same database or from other medical databases."

A clinic database holds a small corpus of prior cases (CT / X-ray /
ultrasound studies with patient attributes). During a consultation on a
new patient, the physicians:

  1. query by example — which stored studies *look* like this CT?
  2. refine with a fuzzy attribute query — "age about 60, lesion at
     least 8 mm, preferably ICU" (Fagin-style graded top-k);
  3. and search past consultation marks spatially — "what did previous
     reviewers note near this lesion?"

Run:  python examples/similar_cases.py
"""

import tempfile

from repro.db import Database, MultimediaObjectStore
from repro.db.sql import execute
from repro.media.image import ct_phantom, ultrasound_phantom, xray_phantom
from repro.retrieval import (
    AnnotationSpatialIndex,
    FuzzyQuery,
    SimilarImageIndex,
    about,
    at_least,
    fuzzy_and,
)
from repro.retrieval.fuzzy import equals, fuzzy_or


def build_corpus(db, store, index):
    """Prior cases: images + an attribute table, linked by media_ref."""
    execute(
        db,
        "CREATE TABLE cases (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "patient TEXT NOT NULL, media_ref TEXT NOT NULL, age INTEGER, "
        "lesion_mm REAL, ward TEXT)",
    )
    corpus = [
        ("pt-101", ct_phantom(128, seed=1), 63, 9.5, "icu"),
        ("pt-102", ct_phantom(128, seed=2), 44, 4.0, "er"),
        ("pt-103", ct_phantom(128, seed=3), 59, 11.0, "icu"),
        ("pt-104", xray_phantom(128, 128, seed=1), 71, 0.0, "ward"),
        ("pt-105", xray_phantom(128, 128, seed=2), 35, 0.0, "er"),
        ("pt-106", ultrasound_phantom(128, seed=1), 58, 7.0, "icu"),
    ]
    for patient, image, age, lesion, ward in corpus:
        handle = index.add_image(image, label=patient)
        execute(
            db,
            "INSERT INTO cases (patient, media_ref, age, lesion_mm, ward) "
            "VALUES (?, ?, ?, ?, ?)",
            [patient, handle.media_ref, age, lesion, ward],
        )
    # Past consultation marks on pt-101's CT.
    store.store_annotation("case-101", "ct", "dr-prior", {"type": "text", "text": "calcification", "x": 40, "y": 44})
    store.store_annotation("case-101", "ct", "dr-prior", {"type": "text", "text": "9mm lesion", "x": 150, "y": 118})
    store.store_annotation("case-101", "ct", "dr-later", {"type": "line", "x": 152, "y": 122})


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        db = Database(f"{workdir}/clinic")
        store = MultimediaObjectStore(db)
        index = SimilarImageIndex(store)
        build_corpus(db, store, index)
        print(f"Corpus: {len(index)} indexed studies, "
              f"{db.count('cases')} case records\n")

        # 1. query by example with the new patient's CT
        new_ct = ct_phantom(128, seed=42)
        print("Step 1 — studies that look like the new CT:")
        hits = index.query(new_ct, k=3)
        for hit in hits:
            print(f"  {hit.label:8s} similarity {hit.similarity:.3f}")

        # 2. fuzzy refinement over the attribute table
        print("\nStep 2 — fuzzy refinement: age~60, lesion>=8mm, prefer ICU")
        rows = execute(db, "SELECT * FROM cases").rows
        visual = {hit.media_ref: hit.similarity for hit in index.query(new_ct, k=10)}
        query = FuzzyQuery(
            fuzzy_and(
                about("age", 60, 12),
                at_least("lesion_mm", 8.0, 4.0),
                fuzzy_or(equals("ward", "icu"), equals("ward", "ward", 0.5, 0.5)),
            )
        )
        for scored in query.top_k(rows, k=3):
            row = scored.row
            look = visual.get(row["media_ref"], 0.0)
            print(f"  {row['patient']:8s} attribute score {scored.score:.2f} "
                  f"(visual similarity {look:.3f})")

        # 3. spatial search of prior marks on the best match
        print("\nStep 3 — prior consultation marks near the lesion on pt-101:")
        marks = AnnotationSpatialIndex.from_store(store, "case-101", "ct", 256, 256)
        near = marks.mark_near(148, 120)
        region = marks.marks_in_region(130, 100, 180, 140)
        print(f"  nearest mark to the click: {near['text'] if 'text' in near else near}")
        print(f"  marks in the zoom region: {len(region)}")
        for mark in region:
            print(f"    ({mark['x']},{mark['y']}) {mark.get('text', mark['type'])} "
                  f"by {mark['viewer']}")
        db.close()


if __name__ == "__main__":
    main()
