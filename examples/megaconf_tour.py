"""A tour of the overload-safe cluster: the mega-conference flash crowd.

A conference day runs from a declarative schedule: parallel tracks at a
steady join rate, attendees migrating between rooms at session
boundaries, then a keynote that packs *every* attendee into one room
inside a quarter-second window — a join-rate flash crowd more than 10x
steady state, aimed at a single shard with finite service capacity.

The day runs twice over the identical schedule:

1. **Unguarded** — the overloaded shard's serial queue just grows; every
   arriving op piles more latency onto the ones behind it.
2. **Admission-controlled** — a gate in front of each queue defers JOINs
   (parked FIFO, resumed as the queue drains) before shedding data ops
   (bounced with a typed ``RETRY_AFTER`` carrying a deterministic
   backoff hint the client honors with seeded jitter). Control-plane
   traffic — heartbeats, PROMOTE, ACKs — is never gated, so overload
   can't fake a death and trigger a spurious failover.

The tour shows what admission buys: bounded queue depth under the same
crowd, zero control-plane sheds, and a clean day — every join eventually
lands, every shed op is retried exactly once into the shard's dedup
fence, and nobody is left parked when the lights go out.

Run:  python examples/megaconf_tour.py
"""

import tempfile

from repro import obs
from repro.cluster import AdmissionConfig, ClusterConfig
from repro.db import Database, MultimediaObjectStore
from repro.workloads import build_conference_schedule, run_megaconf

SERVICE_RATE = 60.0  # ops/s per shard — the keynote wave arrives faster


def conference_schedule():
    return build_conference_schedule(
        tracks=4,
        slots_per_track=2,
        attendees_per_session=6,   # 24 attendees in the building
        session_s=4.0,
        join_window_s=3.0,         # steady state: 8 joins/s
        keynote_window_s=0.25,     # keynote: 96 joins/s
        keynote_s=8.0,
        events_per_session=4,
        keynote_events=8,
    )


def run_day(workdir, tag, admission):
    """One conference day in an isolated metrics registry."""
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry), obs.use_event_log(obs.EventLog()):
        db = Database(f"{workdir}/db-{tag}")
        store = MultimediaObjectStore(db)
        config = ClusterConfig(
            shards=4, gateways=2, service_rate=SERVICE_RATE, admission=admission
        )
        try:
            result = run_megaconf(
                store, conference_schedule(), config=config, seed=17
            )
        finally:
            db.close()
    return result


def describe(label, result):
    lat = result["join_latency"]
    adm = result["admission"]
    peak = max(result["queue_max_pending"].values())
    print(f"\n--- {label} ---")
    print(
        f"  track joins   n={lat['track']['n']:3d}  "
        f"p50={lat['track']['p50'] * 1000:7.1f} ms  "
        f"p99={lat['track']['p99'] * 1000:7.1f} ms"
    )
    print(
        f"  keynote joins n={lat['keynote']['n']:3d}  "
        f"p50={lat['keynote']['p50'] * 1000:7.1f} ms  "
        f"p99={lat['keynote']['p99'] * 1000:7.1f} ms"
    )
    print(f"  peak queue depth: {peak}")
    if adm["accepted"] or adm["deferred"] or adm["shed"]:
        print(
            f"  admission: {adm['accepted']} accepted, "
            f"{adm['deferred']} deferred (all resumed FIFO), "
            f"{adm['shed']} shed {adm['shed_by_lane']}"
        )
        print(
            f"  client retries honored: {result['retry_afters']}  "
            f"control-plane sheds: {adm['control_shed']}  "
            f"parked residue: {adm['parked_residue']}"
        )
    print(f"  errors: {len(result['errors'])}  late joins: {result['late_joins']}")


def main():
    schedule = conference_schedule()
    keynote = schedule.keynote
    print("== The mega-conference schedule ==")
    print(
        f"  {len(schedule.attendees)} attendees, 4 tracks x 2 waves, "
        f"{len(schedule.docs)} rooms, {schedule.horizon_s:.0f}s horizon"
    )
    print(
        f"  steady join rate {schedule.steady_join_rate:.0f}/s; keynote "
        f"{keynote.join_rate:.0f}/s into one room — "
        f"{schedule.keynote_join_ratio:.0f}x flash crowd vs {SERVICE_RATE:.0f} "
        f"ops/s of shard capacity"
    )

    with tempfile.TemporaryDirectory() as workdir:
        unguarded = run_day(workdir, "unguarded", None)
        guarded = run_day(
            workdir,
            "guarded",
            AdmissionConfig(
                depth_defer=8, depth_shed=16, defer_limit=256, retry_after_s=0.25
            ),
        )

    describe("unguarded: the queue just grows", unguarded)
    describe("admission-controlled: bounded deferral", guarded)

    peak_off = max(unguarded["queue_max_pending"].values())
    peak_on = max(guarded["queue_max_pending"].values())
    print("\n== What admission bought ==")
    print(
        f"  peak queue depth {peak_off} -> {peak_on} "
        f"(gate: defer at 8, shed at 16; control traffic never gated)"
    )
    print(
        "  every deferred JOIN resumed in FIFO order; every shed op retried\n"
        "  after its deterministic backoff hint and landed exactly once\n"
        "  behind the shard's op_seq fence."
    )
    assert guarded["errors"] == [] and guarded["late_joins"] == 0
    assert guarded["admission"]["control_shed"] == 0
    assert guarded["admission"]["parked_residue"] == 0
    assert peak_on < peak_off
    print("\nall invariants held — a flash crowd, survived politely")


if __name__ == "__main__":
    main()
