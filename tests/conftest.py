"""Test-suite configuration.

Property-based tests run derandomized: a reproduction repository's test
output should be identical run-to-run, so hypothesis derives its examples
deterministically from each test's code instead of the wall clock.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
settings.load_profile("repro")
