"""Unit tests for the CP-net prefetch predictor."""

import pytest

from repro.document import build_sample_medical_record
from repro.prefetch import CPNetPredictor
from repro.workloads import generate_record


@pytest.fixture
def doc():
    return build_sample_medical_record()


@pytest.fixture
def predictor(doc):
    return CPNetPredictor(doc)


class TestCandidates:
    def test_excludes_displayed_payloads(self, doc, predictor):
        outcome = doc.default_presentation()
        for candidate in predictor.candidates(outcome):
            assert outcome.get(candidate.component) != candidate.value

    def test_only_payload_bearing_alternatives(self, doc, predictor):
        for candidate in predictor.candidates(doc.default_presentation()):
            assert candidate.size_bytes > 0

    def test_sorted_by_score(self, doc, predictor):
        candidates = predictor.candidates(doc.default_presentation())
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_author_next_best_ranks_high(self):
        doc = generate_record("p", sections=3, components_per_section=3, seed=4)
        predictor = CPNetPredictor(doc)
        outcome = doc.default_presentation()
        top = predictor.candidates(outcome, max_candidates=12)
        # Top candidates should be the expanded ("flat"/"play"/"full") forms
        # of on-screen components — the author's rank-1 alternatives.
        expanded = {"flat", "play", "full"}
        assert sum(1 for c in top if c.value in expanded) >= len(top) // 2

    def test_consequences_included(self, doc, predictor):
        # Hypothetically iconifying the CT pulls the X-ray to "flat":
        # that payload must appear among the candidates.
        outcome = doc.default_presentation()
        keys = {(c.component, c.value) for c in predictor.candidates(outcome)}
        assert ("imaging.xray_chest", "flat") in keys

    def test_locality_boost_reorders(self):
        doc = generate_record("p", sections=4, components_per_section=3, seed=4)
        predictor = CPNetPredictor(doc)
        outcome = doc.default_presentation()
        plain = predictor.candidates(outcome, max_candidates=6)
        sections = {c.component.split(".")[0] for c in plain}
        target = sorted(sections)[-1]
        recent = [
            path for path in doc.component_paths() if path.startswith(target + ".")
        ][:1]
        boosted = predictor.candidates(outcome, recent_choices=recent, max_candidates=6)
        top_sections = [c.component.split(".")[0] for c in boosted[:3]]
        assert target in top_sections

    def test_max_candidates(self, doc, predictor):
        assert len(predictor.candidates(doc.default_presentation(), max_candidates=3)) == 3

    def test_keys(self, doc, predictor):
        candidate = predictor.candidates(doc.default_presentation())[0]
        assert candidate.key == f"{candidate.component}={candidate.value}"

    def test_parameter_validation(self, doc):
        with pytest.raises(ValueError):
            CPNetPredictor(doc, rank_decay=0.0)
        with pytest.raises(ValueError):
            CPNetPredictor(doc, rank_decay=1.0)
        with pytest.raises(ValueError):
            CPNetPredictor(doc, consequence_discount=1.5)


class TestCompiledHotPath:
    def test_one_compile_per_predictor_run(self):
        """A predictor run performs at most one compile, and reruns zero:
        the hypothetical sweep shares a single compiled evaluator (with
        `default_presentation`, which hits the same memo)."""
        from repro.obs import MetricsRegistry, get_registry, use_registry

        with use_registry(MetricsRegistry()):
            doc = build_sample_medical_record()
            predictor = CPNetPredictor(doc)
            compiles = get_registry().counter("cpnet.compile")
            outcome = doc.default_presentation()
            predictor.candidates(outcome)
            assert compiles.value == 1  # one compile for the whole flow
            predictor.candidates(outcome)  # memo still valid: no recompile
            assert compiles.value == 1

    def test_compiled_and_interpreted_agree(self, doc, predictor):
        from repro.cpnet import interpreted_mode

        outcome = doc.default_presentation()
        compiled = predictor.candidates(outcome)
        with interpreted_mode():
            reference = predictor.candidates(outcome)
        assert compiled == reference
