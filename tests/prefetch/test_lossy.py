"""Lossy-link replay and §4.4 degradation in the prefetch simulator."""

import pytest

from repro import obs
from repro.document import build_sample_medical_record
from repro.errors import PrefetchError
from repro.prefetch import POLICY_NONE, PrefetchSimulator
from repro.presentation import (
    BANDWIDTH_LOW,
    BANDWIDTH_MEDIUM,
    install_bandwidth_tuning,
)
from repro.workloads import consultation_events, generate_record


def make_doc():
    return generate_record("sim", sections=4, components_per_section=3, seed=2)


def make_events(doc, num=15, seed=7):
    return consultation_events(doc, num_events=num, rationality=0.9, seed=seed)


def run(doc, events=None, **kwargs):
    simulator = PrefetchSimulator(
        doc, policy=POLICY_NONE, buffer_bytes=3_000_000,
        bandwidth_bps=2_000_000, think_time_s=4.0, seed=1, **kwargs
    )
    return simulator.run(events if events is not None else make_events(doc))


class TestLossyLink:
    def test_loss_rate_validated(self):
        with pytest.raises(PrefetchError, match="loss_rate"):
            PrefetchSimulator(make_doc(), loss_rate=1.0)
        with pytest.raises(PrefetchError, match="loss_rate"):
            PrefetchSimulator(make_doc(), loss_rate=-0.1)

    def test_zero_loss_means_zero_retries(self):
        report = run(make_doc())
        assert report.retries == 0

    def test_loss_inflates_waits_and_counts_retries(self):
        doc = make_doc()
        events = make_events(doc)
        clean = run(doc, events=events)
        lossy = run(make_doc(), events=events, loss_rate=0.4)
        assert lossy.retries > 0
        assert lossy.total_wait_s > clean.total_wait_s

    def test_lossy_replay_is_seeded(self):
        doc_a, doc_b = make_doc(), make_doc()
        events = make_events(doc_a)
        a = run(doc_a, events=events, loss_rate=0.3)
        b = run(doc_b, events=make_events(doc_b), loss_rate=0.3)
        assert a.retries == b.retries
        assert a.waits == b.waits


#: A consultation that walks the record section by section. Every re-shown
#: section re-demands its children at their CPT-preferred presentation —
#: heavy forms (flat CT, ECG trace) unless the tuning evidence has
#: re-partitioned the preference orders toward affordable ones.
SECTION_WALK = [
    ("imaging", "hidden"),
    ("consult", "hidden"),
    ("imaging", "shown"),
    ("consult", "shown"),
    ("labs", "hidden"),
    ("labs", "shown"),
    ("labs", "hidden"),
    ("labs", "shown"),
]


def tuned_doc(tuned=True):
    doc = build_sample_medical_record()
    if tuned:
        install_bandwidth_tuning(doc)
    return doc


def walk(doc, **kwargs):
    # The buffer is smaller than the ECG trace (96 KiB): revisited
    # sections genuinely re-fetch over the lossy link.
    simulator = PrefetchSimulator(
        doc, policy=POLICY_NONE, buffer_bytes=64_000,
        bandwidth_bps=2_000_000, think_time_s=4.0, seed=1, **kwargs
    )
    return simulator.run(SECTION_WALK)


class TestDegradation:
    def test_overlong_waits_step_tuning_down(self):
        report = walk(
            tuned_doc(), loss_rate=0.5, degrade_on_loss=True, degrade_wait_s=0.25
        )
        assert report.degradations  # (event index, level) trail
        assert report.tuning_level in (BANDWIDTH_MEDIUM, BANDWIDTH_LOW)
        levels = [level for _, level in report.degradations]
        # Steps go strictly downward, never skipping MEDIUM: the first
        # over-budget wait steps high→medium, a later one medium→low.
        assert levels in ([BANDWIDTH_MEDIUM], [BANDWIDTH_MEDIUM, BANDWIDTH_LOW])

    def test_degradation_reduces_total_wait(self):
        stoic = walk(tuned_doc(), loss_rate=0.5)
        adaptive = walk(
            tuned_doc(), loss_rate=0.5,
            degrade_on_loss=True, degrade_wait_s=0.25,
        )
        # Same seeded loss; stepping the tuning down re-partitions heavy
        # components toward affordable presentations, so re-shown sections
        # demand icons and transcripts instead of full scans and audio.
        assert adaptive.degradations
        assert adaptive.total_wait_s < stoic.total_wait_s

    def test_untuned_document_never_degrades(self):
        report = walk(
            tuned_doc(tuned=False), loss_rate=0.5,
            degrade_on_loss=True, degrade_wait_s=0.25,
        )
        assert report.degradations == []
        assert report.tuning_level is None

    def test_disabled_by_default(self):
        report = walk(tuned_doc(), loss_rate=0.5, degrade_wait_s=0.25)
        assert report.degradations == []

    def test_metrics_published(self):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            walk(
                tuned_doc(), loss_rate=0.5,
                degrade_on_loss=True, degrade_wait_s=0.25,
            )
        counters = registry.snapshot()["counters"]
        assert counters["prefetch.retries"] > 0
        assert counters["prefetch.degradations"] > 0
