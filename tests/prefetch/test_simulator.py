"""Unit tests for the prefetch session simulator."""

import pytest

from repro.errors import PrefetchError
from repro.prefetch import POLICIES, POLICY_CPNET, POLICY_NONE, POLICY_RANDOM, PrefetchSimulator
from repro.workloads import consultation_events, generate_record


def make_doc():
    return generate_record("sim", sections=4, components_per_section=3, seed=2)


def make_events(rationality=0.9, num=15, seed=7):
    return consultation_events(make_doc(), num_events=num, rationality=rationality, seed=seed)


def run(policy, bandwidth=4_000_000, buffer_bytes=3_000_000, events=None, seed=1):
    simulator = PrefetchSimulator(
        make_doc(), policy=policy, buffer_bytes=buffer_bytes,
        bandwidth_bps=bandwidth, think_time_s=4.0, seed=seed,
    )
    return simulator.run(events if events is not None else make_events())


class TestMechanics:
    def test_unknown_policy_rejected(self):
        with pytest.raises(PrefetchError, match="unknown policy"):
            PrefetchSimulator(make_doc(), policy="psychic")

    def test_report_counts(self):
        events = make_events(num=10)
        report = run(POLICY_NONE, events=events)
        assert report.events == 10
        assert len(report.waits) == 11  # initial display + one per event
        assert report.demand_requests >= report.demand_hits
        assert report.total_wait_s == pytest.approx(sum(report.waits))

    def test_none_policy_never_prefetches(self):
        report = run(POLICY_NONE)
        assert report.prefetch_bytes == 0
        assert report.wasted_prefetch_bytes == 0

    def test_prefetch_policies_spend_bytes(self):
        assert run(POLICY_RANDOM).prefetch_bytes > 0
        assert run(POLICY_CPNET).prefetch_bytes > 0

    def test_repeat_choice_hits_cache(self):
        doc = make_doc()
        path = next(
            p for p, n in doc.components().items()
            if n.is_primitive and "flat" in n.domain
        )
        events = [(path, "flat"), (path, "icon"), (path, "flat")]
        report = run(POLICY_NONE, events=events, buffer_bytes=8_000_000)
        # The second display of "flat" must be served from the buffer.
        assert report.waits[-1] == 0.0

    def test_tiny_buffer_still_works(self):
        report = run(POLICY_CPNET, buffer_bytes=64 * 1024)
        assert report.demand_requests > 0  # no crash, just misses

    def test_deterministic_given_seed(self):
        events = make_events()
        first = run(POLICY_RANDOM, events=events, seed=5)
        second = run(POLICY_RANDOM, events=events, seed=5)
        assert first.waits == second.waits


class TestPolicyOrdering:
    """The qualitative §4.4 claims: prefetching reduces waiting, and
    preference-guided prefetching is at least as good as random."""

    @pytest.fixture(scope="class")
    def reports(self):
        events = make_events(rationality=0.9, num=20)
        return {
            policy: PrefetchSimulator(
                make_doc(), policy=policy, buffer_bytes=3_000_000,
                bandwidth_bps=4_000_000, think_time_s=4.0, seed=1,
            ).run(events)
            for policy in POLICIES
        }

    def test_prefetch_beats_none_on_wait(self, reports):
        assert reports[POLICY_CPNET].total_wait_s <= reports[POLICY_NONE].total_wait_s

    def test_cpnet_at_least_matches_random(self, reports):
        assert reports[POLICY_CPNET].total_wait_s <= reports[POLICY_RANDOM].total_wait_s + 1e-9

    def test_hit_rates_ordered(self, reports):
        assert reports[POLICY_CPNET].hit_rate >= reports[POLICY_NONE].hit_rate

    def test_mean_and_max_wait_consistent(self, reports):
        for report in reports.values():
            assert report.mean_wait_s <= report.max_wait_s
