"""Unit tests for MMPresentation alternatives."""

import pytest

from repro.document import AudioFragment, Hidden, Icon, JPGImage, MMPresentation, SegmentedJPGImage, Text


class TestBasics:
    def test_kinds(self):
        assert Text("full").kind == "Text"
        assert JPGImage("flat").kind == "JPGImage"
        assert SegmentedJPGImage("seg").kind == "SegmentedJPGImage"
        assert Icon("icon").kind == "Icon"
        assert AudioFragment("play").kind == "AudioFragment"
        assert Hidden().kind == "Hidden"

    def test_hidden_flag(self):
        assert Hidden().is_hidden
        assert not Text("full").is_hidden

    def test_hidden_defaults(self):
        hidden = Hidden()
        assert hidden.label == "hidden"
        assert hidden.size_bytes == 0

    def test_hidden_rejects_payload(self):
        with pytest.raises(ValueError, match="no bytes"):
            Hidden(size_bytes=100)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Text("full", size_bytes=-1)

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            Text("bad label!")

    def test_str(self):
        assert str(Text("full", size_bytes=100)) == "Text(full, 100B)"


class TestMetadata:
    def test_dict_metadata_normalized(self):
        p = Text("full", metadata={"lang": "en", "align": "left"})
        assert p.meta == {"align": "left", "lang": "en"}

    def test_metadata_hashable(self):
        a = Text("full", metadata={"x": 1})
        b = Text("full", metadata={"x": 1})
        assert a == b
        assert len({a, b}) == 1


class TestImage:
    def test_resolution(self):
        assert JPGImage("flat", resolution=3).resolution == 3

    def test_negative_resolution_rejected(self):
        with pytest.raises(ValueError):
            JPGImage("flat", resolution=-1)

    def test_segmented_is_image(self):
        assert isinstance(SegmentedJPGImage("seg"), JPGImage)
        assert isinstance(SegmentedJPGImage("seg"), MMPresentation)


class TestAudio:
    def test_duration(self):
        assert AudioFragment("play", duration_s=12.5).duration_s == 12.5

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            AudioFragment("play", duration_s=-0.1)
