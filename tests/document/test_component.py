"""Unit tests for the component tree."""

import pytest

from repro.document import (
    COMPOSITE_HIDDEN,
    COMPOSITE_SHOWN,
    CompositeMultimediaComponent,
    Hidden,
    JPGImage,
    PrimitiveMultimediaComponent,
    Text,
)
from repro.errors import DocumentError


@pytest.fixture
def tree():
    root = CompositeMultimediaComponent("record")
    imaging = root.add(CompositeMultimediaComponent("imaging"))
    imaging.add(
        PrimitiveMultimediaComponent(
            "ct", [JPGImage("flat", size_bytes=100), Hidden()]
        )
    )
    root.add(PrimitiveMultimediaComponent("notes", [Text("full", size_bytes=10), Hidden()]))
    return root


class TestComposite:
    def test_domain_is_binary(self, tree):
        assert tree.domain == (COMPOSITE_SHOWN, COMPOSITE_HIDDEN)

    def test_paths(self, tree):
        assert tree.path == "record"
        assert tree.find("imaging").path == "imaging"
        assert tree.find("imaging.ct").path == "imaging.ct"
        assert tree.find("notes").path == "notes"

    def test_depth(self, tree):
        assert tree.depth == 0
        assert tree.find("imaging").depth == 1
        assert tree.find("imaging.ct").depth == 2

    def test_iter_tree_preorder(self, tree):
        names = [node.name for node in tree.iter_tree()]
        assert names == ["record", "imaging", "ct", "notes"]

    def test_find_missing(self, tree):
        with pytest.raises(DocumentError, match="no child"):
            tree.find("imaging.mri")

    def test_find_through_leaf(self, tree):
        with pytest.raises(DocumentError, match="leaf"):
            tree.find("notes.sub")

    def test_duplicate_child_rejected(self, tree):
        with pytest.raises(DocumentError, match="already has"):
            tree.add(CompositeMultimediaComponent("imaging"))

    def test_reattach_rejected(self, tree):
        ct = tree.find("imaging.ct")
        with pytest.raises(DocumentError, match="already attached"):
            tree.add(ct)

    def test_remove_detaches(self, tree):
        notes = tree.remove("notes")
        assert notes.parent is None
        with pytest.raises(DocumentError):
            tree.find("notes")

    def test_remove_missing(self, tree):
        with pytest.raises(DocumentError):
            tree.remove("ghost")

    def test_composite_size_is_zero(self, tree):
        assert tree.presentation_size(COMPOSITE_SHOWN) == 0

    def test_composite_size_bad_value(self, tree):
        with pytest.raises(DocumentError):
            tree.presentation_size("flat")


class TestPrimitive:
    def test_domain_from_labels(self, tree):
        ct = tree.find("imaging.ct")
        assert ct.domain == ("flat", "hidden")
        assert ct.is_primitive

    def test_presentation_size(self, tree):
        ct = tree.find("imaging.ct")
        assert ct.presentation_size("flat") == 100
        assert ct.presentation_size("hidden") == 0

    def test_unknown_presentation(self, tree):
        with pytest.raises(DocumentError):
            tree.find("imaging.ct").presentation("zoom")

    def test_needs_two_alternatives(self):
        with pytest.raises(DocumentError, match=">= 2"):
            PrimitiveMultimediaComponent("x", [Text("only")])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DocumentError, match="duplicate"):
            PrimitiveMultimediaComponent("x", [Text("a"), Text("a")])

    def test_non_presentation_rejected(self):
        with pytest.raises(DocumentError, match="MMPresentation"):
            PrimitiveMultimediaComponent("x", ["flat", "hidden"])


class TestNames:
    def test_dot_in_component_name_rejected(self):
        with pytest.raises(ValueError, match="'.'"):
            CompositeMultimediaComponent("a.b")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            CompositeMultimediaComponent("white space")
