"""Unit tests for MultimediaDocument (the §5.1 interface)."""

import pytest

from repro.cpnet import CPNet
from repro.document import (
    CompositeMultimediaComponent,
    DocumentBuilder,
    Hidden,
    JPGImage,
    PrimitiveMultimediaComponent,
    Text,
    build_sample_medical_record,
)
from repro.document.document import MultimediaDocument
from repro.errors import DocumentError


@pytest.fixture
def doc():
    return build_sample_medical_record()


class TestInterface:
    def test_get_content_returns_root(self, doc):
        root = doc.get_content()
        assert root.is_root
        assert root.name == "record"

    def test_components_keyed_by_path(self, doc):
        components = doc.components()
        assert "imaging.ct_head" in components
        assert "record" not in components
        assert len(components) == 10

    def test_component_lookup(self, doc):
        assert doc.component("imaging.ct_head").name == "ct_head"
        with pytest.raises(DocumentError):
            doc.component("imaging.mri")

    def test_default_presentation_is_complete(self, doc):
        default = doc.default_presentation()
        assert set(default) == set(doc.component_paths())

    def test_default_matches_author_intent(self, doc):
        default = doc.default_presentation()
        # CT shown flat, voice note playing alongside, X-ray iconified.
        assert default["imaging.ct_head"] == "flat"
        assert default["consult.voice_note"] == "play"
        assert default["imaging.xray_chest"] == "icon"

    def test_reconfig_respects_choice(self, doc):
        outcome = doc.reconfig_presentation({"imaging.ct_head": "icon"})
        assert outcome["imaging.ct_head"] == "icon"
        # With the CT iconified, the author prefers the X-ray flat and the
        # voice note as transcript.
        assert outcome["imaging.xray_chest"] == "flat"
        assert outcome["consult.voice_note"] == "transcript"

    def test_reconfig_accepts_event_pairs(self, doc):
        outcome = doc.reconfig_presentation([("labs", "hidden")])
        assert outcome["labs"] == "hidden"

    def test_later_events_win(self, doc):
        outcome = doc.reconfig_presentation(
            [("imaging.ct_head", "icon"), ("imaging.ct_head", "segmented")]
        )
        assert outcome["imaging.ct_head"] == "segmented"

    def test_hiding_composite_hides_subtree(self, doc):
        outcome = doc.reconfig_presentation({"imaging": "hidden"})
        assert outcome["imaging.ct_head"] == "hidden"
        assert outcome["imaging.xray_chest"] == "hidden"

    def test_presentation_bytes(self, doc):
        default = doc.default_presentation()
        total = doc.presentation_bytes(default)
        assert total > 0
        hidden_all = doc.reconfig_presentation(
            {path: "hidden" for path in doc.component_paths()}
        )
        assert doc.presentation_bytes(hidden_all) == 0

    def test_visible_components(self, doc):
        default = doc.default_presentation()
        visible = doc.visible_components(default)
        assert "imaging.ct_head" in visible
        outcome = doc.reconfig_presentation({"imaging": "hidden"})
        assert "imaging.ct_head" not in doc.visible_components(outcome)


class TestAlignmentChecks:
    def _tiny_tree(self):
        root = CompositeMultimediaComponent("root")
        root.add(PrimitiveMultimediaComponent("a", [Text("full"), Hidden()]))
        return root

    def test_missing_variable_rejected(self):
        with pytest.raises(DocumentError, match="no variable"):
            MultimediaDocument("d", self._tiny_tree(), CPNet("empty"))

    def test_extra_variable_rejected(self):
        net = CPNet()
        net.add_variable("a", ("full", "hidden"))
        net.add_rule("a", {}, ("full", "hidden"))
        net.add_variable("ghost", ("x", "y"))
        net.add_rule("ghost", {}, ("x", "y"))
        with pytest.raises(DocumentError, match="without components"):
            MultimediaDocument("d", self._tiny_tree(), net)

    def test_operation_variables_allowed(self):
        net = CPNet()
        net.add_variable("a", ("full", "hidden"))
        net.add_rule("a", {}, ("full", "hidden"))
        from repro.cpnet import apply_operation

        apply_operation(net, "a", "zoom", active_value="full")
        doc = MultimediaDocument("d", self._tiny_tree(), net)
        assert doc.default_presentation()["a.zoom"] == "applied"

    def test_domain_mismatch_rejected(self):
        net = CPNet()
        net.add_variable("a", ("x", "y"))
        net.add_rule("a", {}, ("x", "y"))
        with pytest.raises(DocumentError, match="does not match"):
            MultimediaDocument("d", self._tiny_tree(), net)

    def test_root_must_be_composite(self):
        leaf = PrimitiveMultimediaComponent("a", [Text("full"), Hidden()])
        with pytest.raises(DocumentError, match="composite"):
            MultimediaDocument("d", leaf, CPNet())


class TestOnlineUpdates:
    def test_add_component(self, doc):
        doc.add_component(
            "imaging",
            PrimitiveMultimediaComponent("mri", [JPGImage("flat", size_bytes=100), Hidden()]),
        )
        assert "imaging.mri" in doc.network
        assert doc.default_presentation()["imaging.mri"] == "flat"

    def test_add_component_with_preference(self, doc):
        doc.add_component(
            "imaging",
            PrimitiveMultimediaComponent("mri", [JPGImage("flat", size_bytes=100), Hidden()]),
            preferred_order=("hidden", "flat"),
        )
        assert doc.default_presentation()["imaging.mri"] == "hidden"

    def test_add_rolls_back_on_network_failure(self, doc):
        # Network parent that doesn't exist -> variable creation fails ->
        # the tree attachment must be rolled back too.
        with pytest.raises(Exception):
            doc.add_component(
                "imaging",
                PrimitiveMultimediaComponent("mri", [JPGImage("flat"), Hidden()]),
                network_parents=("no.such.variable",),
            )
        with pytest.raises(DocumentError):
            doc.component("imaging.mri")

    def test_add_to_leaf_rejected(self, doc):
        with pytest.raises(DocumentError, match="not a composite"):
            doc.add_component(
                "imaging.ct_head",
                PrimitiveMultimediaComponent("x", [Text("full"), Hidden()]),
            )

    def test_remove_component(self, doc):
        doc.remove_component("labs.ecg")
        assert "labs.ecg" not in doc.network
        assert "labs.ecg" not in doc.default_presentation()

    def test_remove_component_drops_operation_variables(self, doc):
        from repro.cpnet import apply_operation

        apply_operation(doc.network, "labs.ecg", "zoom", active_value="trace")
        doc.remove_component("labs.ecg")
        assert "labs.ecg.zoom" not in doc.network

    def test_remove_nonempty_composite_rejected(self, doc):
        with pytest.raises(DocumentError, match="children"):
            doc.remove_component("imaging")

    def test_remove_root_rejected(self, doc):
        with pytest.raises(DocumentError):
            doc.remove_component("record")


class TestBuilder:
    def test_unknown_depends_target(self):
        builder = DocumentBuilder("d").primitive("a", [Text("full"), Hidden()])
        with pytest.raises(DocumentError):
            builder.depends("a", on=["ghost"])

    def test_cyclic_depends_rejected(self):
        builder = (
            DocumentBuilder("d")
            .primitive("a", [Text("full"), Hidden()])
            .primitive("b", [Text("full"), Hidden()])
            .depends("a", on=["b"])
            .depends("b", on=["a"])
        )
        with pytest.raises(DocumentError, match="cyclic"):
            builder.build()

    def test_default_rule_added_when_no_preference(self):
        doc = DocumentBuilder("d").primitive("a", [Text("full"), Hidden()]).build()
        assert doc.default_presentation()["a"] == "full"

    def test_builder_single_use(self):
        builder = DocumentBuilder("d").primitive("a", [Text("full"), Hidden()])
        builder.build()
        with pytest.raises(DocumentError, match="already produced"):
            builder.build()

    def test_nested_composites(self):
        doc = (
            DocumentBuilder("d")
            .composite("x")
            .composite("x.y")
            .primitive("x.y.z", [Text("full"), Hidden()])
            .build()
        )
        assert doc.component("x.y.z").path == "x.y.z"
        assert len(doc.components()) == 3
