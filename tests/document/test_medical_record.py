"""Behavioural tests of the sample medical record's author preferences.

These encode the paper's §1/§4 narrative directly, so regressions in the
preference semantics surface as story-level failures.
"""

import pytest

from repro.document import build_sample_medical_record


@pytest.fixture
def doc():
    return build_sample_medical_record()


class TestAuthorNarrative:
    def test_ct_is_the_centrepiece(self, doc):
        assert doc.default_presentation()["imaging.ct_head"] == "flat"

    def test_xray_iconified_while_ct_visible(self, doc):
        """"If a CT image is presented, then a correlated X-ray image is
        preferred by the author to be hidden, or ... a small icon."""
        for ct_form in ("flat", "segmented"):
            outcome = doc.reconfig_presentation({"imaging.ct_head": ct_form})
            assert outcome["imaging.xray_chest"] in ("icon", "hidden")

    def test_xray_expands_when_ct_shrinks(self, doc):
        for ct_form in ("icon", "hidden"):
            outcome = doc.reconfig_presentation({"imaging.ct_head": ct_form})
            assert outcome["imaging.xray_chest"] == "flat"

    def test_voice_note_accompanies_visible_ct(self, doc):
        """Present a CT image together with a voice fragment of expertise."""
        assert doc.default_presentation()["consult.voice_note"] == "play"
        outcome = doc.reconfig_presentation({"imaging.ct_head": "hidden"})
        assert outcome["consult.voice_note"] == "transcript"

    def test_labs_follow_their_section(self, doc):
        outcome = doc.reconfig_presentation({"labs": "hidden"})
        assert outcome["labs.blood_panel"] == "hidden"
        assert outcome["labs.ecg"] == "hidden"
        outcome = doc.reconfig_presentation({"labs": "shown"})
        assert outcome["labs.blood_panel"] == "table"

    def test_default_size_is_bounded(self, doc):
        default = doc.default_presentation()
        total = doc.presentation_bytes(default)
        assert 1_000_000 < total < 2_500_000  # ~1.7 MB: CT + voice dominate

    def test_every_component_has_hidden_or_compact_form(self, doc):
        for path, node in doc.components().items():
            if node.is_primitive:
                sizes = [node.presentation_size(v) for v in node.domain]
                assert min(sizes) < 10_000, path

    def test_custom_doc_id_and_patient(self):
        doc = build_sample_medical_record("record-9", patient="p-9")
        assert doc.doc_id == "record-9"
        assert "p-9" in doc.title

    def test_network_is_valid_and_auditable(self, doc):
        from repro.cpnet.analysis import audit_network

        doc.network.validate()
        assert audit_network(doc.network).ok
