"""Unit tests for document JSON serialization."""

import pytest

from repro.document import (
    AudioFragment,
    DocumentBuilder,
    Hidden,
    JPGImage,
    SegmentedJPGImage,
    Text,
    build_sample_medical_record,
)
from repro.document.serialize import (
    component_from_dict,
    document_from_dict,
    document_from_json,
    document_to_dict,
    document_to_json,
    presentation_from_dict,
    presentation_to_dict,
)
from repro.errors import DocumentError


class TestPresentationSerialization:
    @pytest.mark.parametrize(
        "presentation",
        [
            Text("full", size_bytes=100, metadata={"lang": "en"}),
            JPGImage("flat", size_bytes=5000, resolution=2, media_ref="IMAGE_OBJECTS_TABLE:3"),
            SegmentedJPGImage("seg", size_bytes=6000, resolution=1),
            AudioFragment("play", size_bytes=9000, duration_s=33.5),
            Hidden(),
        ],
    )
    def test_round_trip(self, presentation):
        restored = presentation_from_dict(presentation_to_dict(presentation))
        assert restored == presentation
        assert type(restored) is type(presentation)

    def test_unknown_kind(self):
        with pytest.raises(DocumentError, match="unknown presentation kind"):
            presentation_from_dict({"kind": "Hologram", "label": "x"})


class TestComponentSerialization:
    def test_unknown_component_type(self):
        with pytest.raises(DocumentError, match="unknown component type"):
            component_from_dict({"type": "mystery", "name": "x"})


class TestDocumentSerialization:
    def test_full_round_trip(self):
        doc = build_sample_medical_record()
        clone = document_from_json(document_to_json(doc, indent=2))
        assert clone.doc_id == doc.doc_id
        assert clone.title == doc.title
        assert clone.component_paths() == doc.component_paths()
        assert clone.default_presentation() == doc.default_presentation()
        # Presentation metadata (sizes) survives.
        assert (
            clone.component("imaging.ct_head").presentation("flat").size_bytes
            == doc.component("imaging.ct_head").presentation("flat").size_bytes
        )

    def test_reconfig_equivalence_after_round_trip(self):
        doc = build_sample_medical_record()
        clone = document_from_dict(document_to_dict(doc))
        events = {"imaging.ct_head": "icon", "labs": "hidden"}
        assert clone.reconfig_presentation(events) == doc.reconfig_presentation(events)

    def test_format_version_checked(self):
        data = document_to_dict(build_sample_medical_record())
        data["format"] = 99
        with pytest.raises(DocumentError, match="format"):
            document_from_dict(data)

    def test_bad_json(self):
        with pytest.raises(DocumentError, match="invalid"):
            document_from_json("{nope")

    def test_primitive_root_rejected(self):
        data = document_to_dict(build_sample_medical_record())
        data["root"] = {
            "type": "primitive",
            "name": "leaf",
            "presentations": [
                presentation_to_dict(Text("full")),
                presentation_to_dict(Hidden()),
            ],
        }
        data["network"] = {"format": 1, "name": "n", "variables": []}
        with pytest.raises(DocumentError):
            document_from_dict(data)

    def test_empty_document_round_trips(self):
        doc = DocumentBuilder("tiny").primitive("a", [Text("full"), Hidden()]).build()
        clone = document_from_json(document_to_json(doc))
        assert clone.default_presentation() == {"a": "full"}
