"""Unit tests for optional long-term viewer profiles."""

import pytest

from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.presentation.profile import ViewerProfile
from repro.server import InteractionServer


@pytest.fixture
def doc():
    return build_sample_medical_record()


class TestViewerProfile:
    def test_no_habit_below_min_observations(self):
        profile = ViewerProfile("lee")
        profile.record_choice("imaging.ct_head", "segmented")
        profile.record_choice("imaging.ct_head", "segmented")
        assert profile.habitual_value("imaging.ct_head") is None

    def test_habit_emerges_with_majority(self):
        profile = ViewerProfile("lee")
        for _ in range(3):
            profile.record_choice("imaging.ct_head", "segmented")
        assert profile.habitual_value("imaging.ct_head") == "segmented"

    def test_no_habit_without_majority(self):
        profile = ViewerProfile("lee")
        for value in ("segmented", "flat", "icon", "segmented"):
            profile.record_choice("imaging.ct_head", value)
        assert profile.habitual_value("imaging.ct_head") is None

    def test_habits_filtered_to_document(self, doc):
        profile = ViewerProfile("lee")
        for _ in range(3):
            profile.record_choice("imaging.ct_head", "segmented")
            profile.record_choice("ghost.component", "x")
            profile.record_choice("labs.ecg", "nonexistent-value")
        habits = profile.habits_for(doc)
        assert habits == {"imaging.ct_head": "segmented"}

    def test_round_trip(self):
        profile = ViewerProfile("lee")
        for _ in range(4):
            profile.record_choice("labs", "hidden")
        restored = ViewerProfile.from_dict(profile.to_dict())
        assert restored.viewer_id == "lee"
        assert restored.habitual_value("labs") == "hidden"
        assert restored.observations("labs") == 4


class TestProfileStore:
    def test_save_and_load(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            store = MultimediaObjectStore(db)
            profile = ViewerProfile("lee")
            for _ in range(3):
                profile.record_choice("labs", "hidden")
            store.save_profile(profile)
            loaded = store.load_profile("lee")
            assert loaded.habitual_value("labs") == "hidden"

    def test_load_missing_is_empty(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            profile = MultimediaObjectStore(db).load_profile("nobody")
            assert profile.observations("anything") == 0

    def test_save_updates_in_place(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            store = MultimediaObjectStore(db)
            profile = ViewerProfile("lee")
            profile.record_choice("labs", "hidden")
            store.save_profile(profile)
            profile.record_choice("labs", "hidden")
            store.save_profile(profile)
            assert store.db.count("VIEWER_PROFILES_TABLE") == 1
            assert store.load_profile("lee").observations("labs") == 2


class TestServerIntegration:
    def _session_cycle(self, server, choices):
        """One consultation: join, make choices, disconnect."""
        session = server.connect_session("dr-habit")
        __, spec = server.join_room(session.session_id, "record-17")
        for component, value in choices:
            server.handle_choice(session.session_id, component, value)
        server.disconnect_session(session.session_id)
        return spec

    @pytest.fixture
    def server(self, tmp_path, doc):
        db = Database(str(tmp_path / "db"))
        store = MultimediaObjectStore(db)
        store.store_document(doc)
        yield InteractionServer(store, use_profiles=True)
        db.close()

    def test_habit_learned_across_sessions(self, server):
        # Three consultations always segmenting the CT...
        for _ in range(3):
            spec = self._session_cycle(
                server, [("imaging.ct_head", "segmented")]
            )
            assert spec.value("imaging.ct_head") == "flat"  # author default
        # ...the fourth consultation greets the viewer segmented.
        spec = self._session_cycle(server, [])
        assert spec.value("imaging.ct_head") == "segmented"

    def test_habit_is_personal_not_shared(self, server):
        for _ in range(3):
            self._session_cycle(server, [("imaging.ct_head", "segmented")])
        habitual = server.connect_session("dr-habit")
        fresh = server.connect_session("dr-fresh")
        __, habit_spec = server.join_room(habitual.session_id, "record-17")
        __, fresh_spec = server.join_room(fresh.session_id, "record-17")
        assert habit_spec.value("imaging.ct_head") == "segmented"
        assert fresh_spec.value("imaging.ct_head") == "flat"

    def test_profiles_survive_server_restart(self, tmp_path, doc):
        path = str(tmp_path / "db-restart")
        with Database(path) as db:
            store = MultimediaObjectStore(db)
            store.store_document(doc)
            server = InteractionServer(store, use_profiles=True)
            for _ in range(3):
                self._session_cycle(server, [("labs", "hidden")])
        with Database(path) as db:
            server = InteractionServer(MultimediaObjectStore(db), use_profiles=True)
            spec = self._session_cycle(server, [])
            assert spec.value("labs") == "hidden"

    def test_profiles_off_by_default(self, tmp_path, doc):
        db = Database(str(tmp_path / "db-off"))
        store = MultimediaObjectStore(db)
        store.store_document(doc)
        server = InteractionServer(store)  # use_profiles=False
        for _ in range(4):
            session = server.connect_session("dr-habit")
            server.join_room(session.session_id, "record-17")
            server.handle_choice(session.session_id, "imaging.ct_head", "segmented")
            server.disconnect_session(session.session_id)
        session = server.connect_session("dr-habit")
        __, spec = server.join_room(session.session_id, "record-17")
        assert spec.value("imaging.ct_head") == "flat"  # nothing learned
        db.close()
