"""Unit tests for presentation-spec memoization."""

import pytest

from repro.document import build_sample_medical_record
from repro.presentation import PresentationEngine, ViewerChoice


@pytest.fixture
def engine():
    engine = PresentationEngine(build_sample_medical_record())
    engine.register_viewer("lee")
    engine.register_viewer("cho")
    return engine


class TestCaching:
    def test_repeat_query_hits_cache(self, engine):
        first = engine.presentation_for("lee")
        second = engine.presentation_for("lee")
        assert second is first
        assert engine.cache_hits == 1
        assert engine.cache_misses == 1

    def test_shared_choice_invalidates_everyone(self, engine):
        lee_before = engine.presentation_for("lee")
        cho_before = engine.presentation_for("cho")
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "segmented"))
        assert engine.presentation_for("lee") is not lee_before
        assert engine.presentation_for("cho") is not cho_before

    def test_personal_choice_invalidates_only_owner(self, engine):
        lee_before = engine.presentation_for("lee")
        cho_before = engine.presentation_for("cho")
        engine.apply_choice(
            ViewerChoice("cho", "imaging.ct_head", "icon", scope="personal")
        )
        assert engine.presentation_for("lee") is lee_before  # cache hit
        assert engine.presentation_for("cho") is not cho_before

    def test_personal_operation_invalidates_only_owner(self, engine):
        lee_before = engine.presentation_for("lee")
        engine.apply_operation("cho", "imaging.ct_head", "zoom")
        assert engine.presentation_for("lee") is lee_before
        assert "imaging.ct_head.zoom" in engine.presentation_for("cho").outcome

    def test_global_operation_invalidates_everyone(self, engine):
        lee_before = engine.presentation_for("lee")
        engine.apply_operation("cho", "imaging.ct_head", "zoom", global_importance=True)
        refreshed = engine.presentation_for("lee")
        assert refreshed is not lee_before
        assert "imaging.ct_head.zoom" in refreshed.outcome

    def test_clear_choice_invalidates(self, engine):
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "icon"))
        before = engine.presentation_for("lee")
        engine.clear_choice("lee", "imaging.ct_head")
        after = engine.presentation_for("lee")
        assert after is not before
        assert after.value("imaging.ct_head") == "flat"

    def test_explicit_invalidate(self, engine):
        before = engine.presentation_for("lee")
        engine.document.network.add_variable("demographics.note", ("applied", "plain"),
                                             parents=("demographics",))
        engine.document.network.add_rule("demographics.note", {}, ("plain", "applied"))
        engine.invalidate()
        after = engine.presentation_for("lee")
        assert after is not before
        assert "demographics.note" in after.outcome

    def test_unregister_drops_cache(self, engine):
        engine.presentation_for("cho")
        engine.unregister_viewer("cho")
        engine.register_viewer("cho")
        engine.presentation_for("cho")
        assert engine.cache_misses >= 2

    def test_cached_spec_values_correct_after_mixed_changes(self, engine):
        """Correctness under the memoization, not just identity checks."""
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "segmented"))
        engine.apply_choice(ViewerChoice("cho", "labs", "hidden", scope="personal"))
        for _ in range(3):
            lee = engine.presentation_for("lee")
            cho = engine.presentation_for("cho")
            assert lee.value("imaging.ct_head") == "segmented"
            assert lee.value("labs") == "shown"
            assert cho.value("labs") == "hidden"
            assert cho.value("labs.ecg") == "hidden"
