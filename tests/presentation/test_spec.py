"""Unit tests for presentation specs and diffing."""

import pytest

from repro.document import build_sample_medical_record
from repro.presentation import diff_presentations
from repro.presentation.spec import build_spec


@pytest.fixture
def doc():
    return build_sample_medical_record()


class TestDiffPresentations:
    def test_none_old_is_full_copy(self):
        new = {"a": "x", "b": "y"}
        delta = diff_presentations(None, new)
        assert delta == new
        assert delta is not new  # copy, not alias

    def test_no_change_empty(self):
        outcome = {"a": "x"}
        assert diff_presentations(outcome, {"a": "x"}) == {}

    def test_only_changed_entries(self):
        old = {"a": "x", "b": "y", "c": "z"}
        new = {"a": "x", "b": "Y", "c": "z"}
        assert diff_presentations(old, new) == {"b": "Y"}

    def test_new_keys_included(self):
        # Operation variables appear mid-session.
        assert diff_presentations({"a": "x"}, {"a": "x", "a.zoom": "applied"}) == {
            "a.zoom": "applied"
        }

    def test_removed_keys_ignored(self):
        # A removed component simply stops being mentioned.
        assert diff_presentations({"a": "x", "gone": "y"}, {"a": "x"}) == {}


class TestBuildSpec:
    def test_measures_consistent(self, doc):
        outcome = doc.default_presentation()
        spec = build_spec(doc, "lee", outcome, computed_at=3.5)
        assert spec.doc_id == doc.doc_id
        assert spec.viewer_id == "lee"
        assert spec.computed_at == 3.5
        assert spec.total_bytes == doc.presentation_bytes(outcome)
        assert set(spec.visible) == set(doc.visible_components(outcome))

    def test_value_and_is_visible(self, doc):
        spec = build_spec(doc, "lee", doc.default_presentation())
        assert spec.value("imaging.ct_head") == "flat"
        assert spec.is_visible("imaging.ct_head")
        assert not spec.is_visible("no.such.path")

    def test_spec_outcome_is_copy(self, doc):
        outcome = doc.default_presentation()
        spec = build_spec(doc, "lee", outcome)
        outcome["imaging.ct_head"] = "mutated"
        assert spec.value("imaging.ct_head") == "flat"

    def test_frozen_dataclass(self, doc):
        spec = build_spec(doc, "lee", doc.default_presentation())
        with pytest.raises(AttributeError):
            spec.viewer_id = "other"

    def test_len(self, doc):
        spec = build_spec(doc, "lee", doc.default_presentation())
        assert len(spec) == 10
