"""Unit tests for §4.4 bandwidth tuning variables."""

import pytest

from repro.document import build_sample_medical_record
from repro.errors import CPNetError
from repro.presentation import (
    BANDWIDTH_HIGH,
    BANDWIDTH_LOW,
    BANDWIDTH_MEDIUM,
    PresentationEngine,
    TUNING_VARIABLE,
    ViewerChoice,
    install_bandwidth_tuning,
    level_for_bandwidth,
)
from repro.presentation.tuning import budget_order


@pytest.fixture
def doc():
    document = build_sample_medical_record()
    install_bandwidth_tuning(document)
    return document


class TestInstallation:
    def test_tunes_heavy_components_only(self, doc):
        assert TUNING_VARIABLE in doc.network
        assert TUNING_VARIABLE in doc.network.parents("imaging.ct_head")
        # blood panel (4 KB) stays untouched
        assert TUNING_VARIABLE not in doc.network.parents("labs.blood_panel")

    def test_idempotence_guard(self, doc):
        with pytest.raises(CPNetError, match="already installed"):
            install_bandwidth_tuning(doc)

    def test_network_still_valid(self, doc):
        doc.network.validate()

    def test_document_still_aligned(self, doc):
        # tuning.* variables are tolerated by the alignment check.
        from repro.document.serialize import document_from_json, document_to_json

        clone = document_from_json(document_to_json(doc))
        assert TUNING_VARIABLE in clone.network


class TestBehaviour:
    def test_high_bandwidth_keeps_author_preference(self, doc):
        assert doc.default_presentation()["imaging.ct_head"] == "flat"

    def test_low_bandwidth_prefers_cheap_presentations(self, doc):
        outcome = doc.reconfig_presentation({TUNING_VARIABLE: BANDWIDTH_LOW})
        assert outcome["imaging.ct_head"] == "icon"  # 8 KB fits the low budget
        assert outcome["consult.voice_note"] == "transcript"

    def test_medium_bandwidth_between(self, doc):
        low = doc.reconfig_presentation({TUNING_VARIABLE: BANDWIDTH_LOW})
        medium = doc.reconfig_presentation({TUNING_VARIABLE: BANDWIDTH_MEDIUM})
        high = doc.reconfig_presentation({TUNING_VARIABLE: BANDWIDTH_HIGH})
        assert doc.presentation_bytes(low) <= doc.presentation_bytes(medium)
        assert doc.presentation_bytes(medium) <= doc.presentation_bytes(high)

    def test_explicit_choice_beats_tuning(self, doc):
        outcome = doc.reconfig_presentation(
            {TUNING_VARIABLE: BANDWIDTH_LOW, "imaging.ct_head": "flat"}
        )
        assert outcome["imaging.ct_head"] == "flat"

    def test_per_viewer_tuning_in_engine(self, doc):
        engine = PresentationEngine(doc)
        engine.register_viewer("fast")
        engine.register_viewer("slow")
        engine.apply_choice(
            ViewerChoice("slow", TUNING_VARIABLE, BANDWIDTH_LOW, scope="personal")
        )
        fast_bytes = engine.presentation_for("fast").total_bytes
        slow_bytes = engine.presentation_for("slow").total_bytes
        assert slow_bytes < fast_bytes


class TestHelpers:
    def test_level_for_bandwidth(self):
        assert level_for_bandwidth(100_000_000) == BANDWIDTH_HIGH
        assert level_for_bandwidth(1_000_000) == BANDWIDTH_MEDIUM
        assert level_for_bandwidth(64_000) == BANDWIDTH_LOW

    def test_budget_order_stable_partition(self, doc):
        ct = doc.component("imaging.ct_head")
        order = ("flat", "segmented", "icon", "hidden")
        cheap_first = budget_order(ct, order, budget=16 * 1024)
        assert cheap_first[0] == "icon"
        assert cheap_first[1] == "hidden"
        # heavy ones follow cheapest-first: flat (512K) before segmented (640K)
        assert cheap_first[2:] == ("flat", "segmented")

    def test_budget_order_no_change_when_all_fit(self, doc):
        ct = doc.component("imaging.ct_head")
        order = ("flat", "segmented", "icon", "hidden")
        assert budget_order(ct, order, budget=10**9) == order
