"""Unit tests for presentation explanations."""

import pytest

from repro.document import build_sample_medical_record
from repro.presentation import (
    PresentationEngine,
    ViewerChoice,
    explain_for_viewer,
    explain_outcome,
)
from repro.presentation.explain import (
    SOURCE_AUTHOR_RULE,
    SOURCE_PERSONAL_CHOICE,
    SOURCE_SHARED_CHOICE,
    SOURCE_SUBTREE_HIDDEN,
)


@pytest.fixture
def doc():
    return build_sample_medical_record()


@pytest.fixture
def engine(doc):
    engine = PresentationEngine(doc)
    engine.register_viewer("lee")
    engine.register_viewer("cho")
    return engine


class TestExplainOutcome:
    def test_every_component_explained(self, doc):
        outcome = doc.default_presentation()
        explanations = explain_outcome(doc, outcome)
        assert set(explanations) == set(outcome)

    def test_author_rule_with_conditions(self, doc):
        outcome = doc.default_presentation()
        explanations = explain_outcome(doc, outcome)
        xray = explanations["imaging.xray_chest"]
        assert xray.source == SOURCE_AUTHOR_RULE
        assert ("imaging.ct_head", "flat") in xray.conditions
        assert "icon > hidden > flat" in xray.rule

    def test_unconditional_rule(self, doc):
        outcome = doc.default_presentation()
        explanation = explain_outcome(doc, outcome)["demographics"]
        assert explanation.source == SOURCE_AUTHOR_RULE
        assert explanation.conditions == ()
        assert "unconditional" in explanation.describe()

    def test_choices_attributed(self, doc):
        outcome = doc.reconfig_presentation({"imaging.ct_head": "icon"})
        explanations = explain_outcome(
            doc, outcome, shared_choices={"imaging.ct_head": "icon"}
        )
        assert explanations["imaging.ct_head"].source == SOURCE_SHARED_CHOICE
        # The consequence is still an author rule.
        assert explanations["imaging.xray_chest"].source == SOURCE_AUTHOR_RULE

    def test_subtree_hiding_attributed_to_ancestor(self, doc):
        outcome = doc.reconfig_presentation({"imaging": "hidden"})
        explanations = explain_outcome(
            doc, outcome, shared_choices={"imaging": "hidden"}
        )
        ct = explanations["imaging.ct_head"]
        assert ct.source == SOURCE_SUBTREE_HIDDEN
        assert ct.conditions == (("imaging", "hidden"),)
        assert "imaging is hidden" in ct.describe()

    def test_hidden_by_own_rule_not_subtree(self, doc):
        # ECG hidden because labs is hidden -> but via its own rule when
        # labs itself is shown? Force ecg hidden directly instead.
        outcome = doc.reconfig_presentation({"labs.ecg": "hidden"})
        explanations = explain_outcome(
            doc, outcome, personal_choices={"labs.ecg": "hidden"}
        )
        assert explanations["labs.ecg"].source == SOURCE_PERSONAL_CHOICE


class TestExplainForViewer:
    def test_mixed_sources(self, engine):
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "segmented"))
        engine.apply_choice(ViewerChoice("cho", "labs", "hidden", scope="personal"))
        explanations = explain_for_viewer(engine, "cho")
        assert explanations["imaging.ct_head"].source == SOURCE_SHARED_CHOICE
        assert explanations["labs"].source == SOURCE_PERSONAL_CHOICE
        assert explanations["labs.ecg"].source == SOURCE_SUBTREE_HIDDEN
        assert explanations["consult.voice_note"].source == SOURCE_AUTHOR_RULE

    def test_operation_variables_explained(self, engine):
        engine.apply_operation("lee", "imaging.ct_head", "zoom")
        explanations = explain_for_viewer(engine, "lee")
        # The operation variable has no document component but is in the
        # viewer's outcome via the extension — skipped quietly is fine,
        # but base-net operation variables must be explainable:
        engine.apply_operation("cho", "imaging.ct_head", "measure", global_importance=True)
        explanations = explain_for_viewer(engine, "cho")
        measure = explanations["imaging.ct_head.measure"]
        assert measure.source == SOURCE_AUTHOR_RULE

    def test_describe_renders_for_all(self, engine):
        for explanation in explain_for_viewer(engine, "lee").values():
            assert explanation.component in explanation.describe()
