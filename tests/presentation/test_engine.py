"""Unit tests for the presentation engine."""

import pytest

from repro.cpnet import CompletionCache
from repro.document import build_sample_medical_record
from repro.errors import DocumentError
from repro.presentation import PresentationEngine, ViewerChoice
from repro.presentation.engine import PERSONAL, SHARED


@pytest.fixture
def engine():
    engine = PresentationEngine(build_sample_medical_record())
    engine.register_viewer("lee")
    engine.register_viewer("cho")
    return engine


class TestViewers:
    def test_register_unregister(self, engine):
        assert set(engine.viewer_ids) == {"lee", "cho"}
        engine.unregister_viewer("cho")
        assert engine.viewer_ids == ("lee",)

    def test_register_idempotent(self, engine):
        ext = engine.extension("lee")
        engine.register_viewer("lee")
        assert engine.extension("lee") is ext

    def test_unknown_viewer_rejected(self, engine):
        with pytest.raises(DocumentError, match="not registered"):
            engine.presentation_for("ghost")
        with pytest.raises(DocumentError):
            engine.apply_choice(ViewerChoice("ghost", "labs", "hidden"))


class TestChoices:
    def test_default_presentations_equal(self, engine):
        lee = engine.presentation_for("lee")
        cho = engine.presentation_for("cho")
        assert lee.outcome == cho.outcome
        assert lee.viewer_id == "lee"

    def test_shared_choice_constrains_everyone(self, engine):
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "segmented"))
        assert engine.presentation_for("cho").value("imaging.ct_head") == "segmented"

    def test_personal_choice_constrains_only_owner(self, engine):
        engine.apply_choice(
            ViewerChoice("cho", "imaging.ct_head", "icon", scope=PERSONAL)
        )
        assert engine.presentation_for("cho").value("imaging.ct_head") == "icon"
        assert engine.presentation_for("lee").value("imaging.ct_head") == "flat"

    def test_shared_overrides_older_personal(self, engine):
        engine.apply_choice(ViewerChoice("cho", "imaging.ct_head", "icon", scope=PERSONAL))
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "segmented", scope=SHARED))
        assert engine.presentation_for("cho").value("imaging.ct_head") == "segmented"

    def test_personal_overrides_older_shared(self, engine):
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "segmented", scope=SHARED))
        engine.apply_choice(ViewerChoice("cho", "imaging.ct_head", "icon", scope=PERSONAL))
        assert engine.presentation_for("cho").value("imaging.ct_head") == "icon"
        assert engine.presentation_for("lee").value("imaging.ct_head") == "segmented"

    def test_clear_choice(self, engine):
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "icon"))
        engine.clear_choice("lee", "imaging.ct_head")
        assert engine.presentation_for("lee").value("imaging.ct_head") == "flat"

    def test_bad_value_rejected(self, engine):
        with pytest.raises(Exception):
            engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "sideways"))

    def test_bad_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            ViewerChoice("lee", "x", "y", scope="broadcast")

    def test_choice_propagates_preferences(self, engine):
        # The author couples the voice note to a visible CT.
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "hidden"))
        assert engine.presentation_for("lee").value("consult.voice_note") == "transcript"


class TestOperations:
    def test_personal_operation_only_for_owner(self, engine):
        record = engine.apply_operation("lee", "imaging.ct_head", "zoom")
        assert record.active_value == "flat"
        assert "imaging.ct_head.zoom" in engine.presentation_for("lee").outcome
        assert "imaging.ct_head.zoom" not in engine.presentation_for("cho").outcome

    def test_global_operation_for_everyone(self, engine):
        engine.apply_operation("lee", "imaging.ct_head", "zoom", global_importance=True)
        assert "imaging.ct_head.zoom" in engine.presentation_for("cho").outcome

    def test_operation_active_value_follows_current_view(self, engine):
        engine.apply_choice(ViewerChoice("lee", "imaging.ct_head", "segmented"))
        record = engine.apply_operation("lee", "imaging.ct_head", "zoom")
        assert record.active_value == "segmented"

    def test_operation_on_unknown_component(self, engine):
        with pytest.raises(DocumentError):
            engine.apply_operation("lee", "no.such", "zoom")


class TestSharedCompletionCache:
    def test_rejoining_viewer_never_hits_discarded_extension_entries(self):
        """Regression: a viewer who leaves and rejoins gets a *fresh*
        ViewerExtension whose version counter restarts at 0, while the
        shard-scoped completion cache outlives the extension. Applying a
        different operation after the rejoin reproduces the old version
        number (add_variable + 2 add_rules = 3 either way), so the
        overlay token must be salted per extension instance or the cache
        serves the previous extension's outcome."""
        cache = CompletionCache()
        engine = PresentationEngine(
            build_sample_medical_record(), completion_cache=cache
        )
        engine.register_viewer("lee")
        engine.apply_operation("lee", "imaging.ct_head", "segment")
        first = engine.presentation_for("lee").outcome
        assert "imaging.ct_head.segment" in first

        engine.unregister_viewer("lee")
        engine.register_viewer("lee")
        engine.apply_operation("lee", "imaging.ct_head", "crop")
        second = engine.presentation_for("lee").outcome
        assert "imaging.ct_head.crop" in second
        assert "imaging.ct_head.segment" not in second


class TestSpecs:
    def test_spec_measures(self, engine):
        spec = engine.presentation_for("lee")
        assert spec.total_bytes > 0
        assert "imaging.ct_head" in spec.visible
        assert spec.is_visible("imaging.ct_head")
        assert len(spec) == 10

    def test_presentations_covers_all_viewers(self, engine):
        specs = engine.presentations()
        assert set(specs) == {"lee", "cho"}

    def test_hiding_composite_cascades_in_spec(self, engine):
        engine.apply_choice(ViewerChoice("lee", "imaging", "hidden"))
        spec = engine.presentation_for("lee")
        assert spec.value("imaging.ct_head") == "hidden"
        assert not spec.is_visible("imaging.ct_head")
