"""Unit tests for the client buffer (cache)."""

import pytest

from repro.client import ClientBuffer
from repro.client.buffer import entry_key
from repro.errors import BufferFullError


class TestAdmission:
    def test_admit_and_lookup(self):
        buf = ClientBuffer(1000)
        assert buf.admit("a", 400)
        assert buf.lookup("a") is not None
        assert buf.used_bytes == 400

    def test_lookup_miss_counts(self):
        buf = ClientBuffer(1000)
        assert buf.lookup("ghost") is None
        assert buf.misses == 1
        assert buf.hit_rate == 0.0

    def test_hit_rate(self):
        buf = ClientBuffer(1000)
        buf.admit("a", 10)
        buf.lookup("a")
        buf.lookup("b")
        assert buf.hit_rate == 0.5

    def test_refresh_existing(self):
        buf = ClientBuffer(1000)
        buf.admit("a", 400, priority=1.0)
        assert buf.admit("a", 400, priority=2.0)
        assert buf.used_bytes == 400  # not double-counted
        entry = buf.lookup("a")
        assert entry.priority == 2.0

    def test_oversized_rejected_not_raised(self):
        buf = ClientBuffer(100)
        assert buf.admit("big", 500) is False
        assert buf.used_bytes == 0

    def test_oversized_pinned_raises(self):
        buf = ClientBuffer(100)
        with pytest.raises(BufferFullError):
            buf.admit("big", 500, pinned=True)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ClientBuffer(100).admit("a", -1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ClientBuffer(0)


class TestEviction:
    def test_lowest_priority_evicted_first(self):
        buf = ClientBuffer(1000)
        buf.admit("low", 400, priority=0.1)
        buf.admit("high", 400, priority=0.9)
        buf.admit("new", 400, priority=0.5)
        assert "low" not in buf
        assert "high" in buf and "new" in buf

    def test_lru_breaks_priority_ties(self):
        buf = ClientBuffer(1000)
        buf.admit("older", 400, priority=0.5)
        buf.admit("newer", 400, priority=0.5)
        buf.lookup("older")  # refresh recency
        buf.admit("incoming", 400, priority=0.5)
        assert "newer" not in buf
        assert "older" in buf

    def test_pinned_never_evicted(self):
        buf = ClientBuffer(1000)
        buf.admit("display", 600, pinned=True)
        buf.admit("cache", 300, priority=0.9)
        assert buf.admit("incoming", 350) is True
        assert "display" in buf
        assert "cache" not in buf

    def test_all_pinned_blocks_admission(self):
        buf = ClientBuffer(1000)
        buf.admit("a", 600, pinned=True)
        buf.admit("b", 400, pinned=True)
        assert buf.admit("c", 100) is False
        with pytest.raises(BufferFullError, match="pinned"):
            buf.admit("c", 100, pinned=True)

    def test_unpin_allows_eviction(self):
        buf = ClientBuffer(1000)
        buf.admit("a", 600, pinned=True)
        buf.unpin("a")
        assert buf.admit("b", 600)
        assert "a" not in buf

    def test_unpin_all_and_clear(self):
        buf = ClientBuffer(1000)
        buf.admit("a", 100, pinned=True)
        buf.admit("b", 100, pinned=True)
        buf.unpin_all()
        buf.clear()
        assert len(buf) == 0
        assert buf.used_bytes == 0

    def test_remove(self):
        buf = ClientBuffer(1000)
        buf.admit("a", 100)
        buf.remove("a")
        assert buf.used_bytes == 0
        buf.remove("ghost")  # no error


class TestHelpers:
    def test_entry_key(self):
        assert entry_key("imaging.ct", "flat") == "imaging.ct=flat"

    def test_reset_stats(self):
        buf = ClientBuffer(100)
        buf.lookup("x")
        buf.reset_stats()
        assert (buf.hits, buf.misses) == (0, 0)
