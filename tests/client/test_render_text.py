"""Unit tests for the Figure 5 text rendering of the client window."""

import pytest

from repro.client import ClientModule, RenderTree
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import SimulatedNetwork
from repro.server import InteractionServer


STRUCTURE = [
    {"path": "imaging", "domain": ["shown", "hidden"]},
    {"path": "imaging.ct", "domain": ["flat", "icon", "hidden"]},
    {"path": "imaging.xray", "domain": ["flat", "icon", "hidden"]},
    {"path": "notes", "domain": ["full", "hidden"]},
]


@pytest.fixture
def tree():
    tree = RenderTree("doc-1", STRUCTURE)
    tree.apply_update(
        {"imaging": "shown", "imaging.ct": "flat", "imaging.xray": "icon", "notes": "full"}
    )
    return tree


class TestRenderText:
    def test_shows_document_and_hierarchy(self, tree):
        text = tree.render_text()
        lines = text.splitlines()
        assert lines[0] == "doc-1"
        assert any("├─ imaging: shown" in line for line in lines)
        # Children are indented under their parent.
        ct_line = next(line for line in lines if "ct:" in line)
        assert ct_line.startswith("│  ")

    def test_loading_marker(self, tree):
        text = tree.render_text()
        assert "ct: flat (loading)" in text
        tree.mark_payload_ready("imaging.ct")
        assert "ct: flat (loading)" not in tree.render_text()
        assert "ct: flat" in tree.render_text()

    def test_composites_never_loading(self, tree):
        assert "imaging: shown (loading)" not in tree.render_text()

    def test_hidden_not_loading(self, tree):
        tree.apply_update({"imaging.ct": "hidden"})
        assert "ct: hidden (loading)" not in tree.render_text()

    def test_unset_values_render_bare(self):
        tree = RenderTree("doc-1", STRUCTURE)
        text = tree.render_text()
        assert "notes" in text
        assert "notes:" not in text  # no value yet

    def test_last_sibling_connector(self, tree):
        lines = tree.render_text().splitlines()
        assert lines[-1].startswith("└─ ")

    def test_operation_variable_appears(self, tree):
        tree.apply_update({"imaging.ct.zoom": "applied"})
        assert "zoom: applied" in tree.render_text()


class TestEndToEndRendering:
    def test_networked_client_renders_fig5_window(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        store = MultimediaObjectStore(db)
        store.store_document(build_sample_medical_record())
        network = SimulatedNetwork()
        InteractionServer(store, network=network)
        client = ClientModule("lee", network=network)
        network.attach_client(client)
        client.join("record-17")
        network.run()
        text = client.render.render_text()
        assert text.splitlines()[0] == "record-17"
        assert "ct_head: flat" in text
        assert "(loading)" not in text  # payloads all arrived
        db.close()
