"""Client-side graceful degradation (§4.4) on delivery failure.

When the reliable transport gives up on a ``FETCH_PAYLOAD``, the client
must not hang half-rendered: the affected component renders its
placeholder, and the client steps its *personal* ``tuning.bandwidth``
choice down a level so the preference model stops selecting
presentations the link cannot carry.
"""

import pytest

from repro import obs
from repro.chaos import ChaosNetwork, FaultPlan
from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.errors import DeliveryFailed
from repro.net import Link, SimulatedNetwork
from repro.net.link import MBPS
from repro.presentation import (
    BANDWIDTH_LOW,
    BANDWIDTH_MEDIUM,
    TUNING_VARIABLE,
    install_bandwidth_tuning,
)
from repro.server import InteractionServer
from repro.server.protocol import MessageKind


@pytest.fixture(autouse=True)
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


def build_rig(tmp_path, tuned=True, plan=None, reliability=True):
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    doc = build_sample_medical_record()
    if tuned:
        install_bandwidth_tuning(doc)
    store.store_document(doc)
    if plan is not None:
        network = ChaosNetwork(reliability=reliability, plan=plan)
    else:
        network = SimulatedNetwork(reliability=reliability)
    server = InteractionServer(store, network=network)
    client = ClientModule("lee", network=network)
    network.attach_client(
        client,
        downlink=Link(bandwidth_bps=50 * MBPS),
        uplink=Link(bandwidth_bps=50 * MBPS),
    )
    return db, network, server, client


def fetch_failure(client, component="imaging.ct_head", value="flat"):
    return DeliveryFailed(
        sender=client.node_id,
        recipient="server",
        kind=MessageKind.FETCH_PAYLOAD,
        seq=1,
        attempts=7,
        reason="retry_budget_exhausted",
        payload={
            "session_id": client.session_id,
            "component": component,
            "value": value,
        },
    )


class TestStepDown:
    def test_failed_fetch_renders_placeholder_and_steps_down(self, tmp_path):
        db, network, server, client = build_rig(tmp_path)
        client.join("record-17")
        network.run()
        assert client.tuning_level is None
        client.on_delivery_failed(fetch_failure(client))
        network.run()
        # The component did not hang the render...
        assert client.degraded_components == ["imaging.ct_head"]
        assert client.fully_rendered()
        # ...and the personal tuning choice reached the server.
        assert client.tuning_level == BANDWIDTH_MEDIUM
        room = server.room(client.room_id)
        personal = room.engine._personal_choices[client.viewer_id]
        assert personal.get(TUNING_VARIABLE) == BANDWIDTH_MEDIUM
        assert client.errors == []
        db.close()

    def test_second_failure_steps_to_the_floor_and_stays(self, tmp_path):
        db, network, server, client = build_rig(tmp_path)
        client.join("record-17")
        network.run()
        for _ in range(3):  # third failure has no level left below LOW
            client.on_delivery_failed(fetch_failure(client))
            network.run()
        assert client.tuning_level == BANDWIDTH_LOW
        assert client.errors == []
        db.close()

    def test_untuned_document_bounces_without_user_visible_error(self, tmp_path):
        # The document never had install_bandwidth_tuning applied: the
        # server rejects the tuning choice, the client learns and stops,
        # and the bounce never shows up in client.errors.
        db, network, server, client = build_rig(tmp_path, tuned=False)
        client.join("record-17")
        network.run()
        client.on_delivery_failed(fetch_failure(client))
        network.run()
        assert client.tuning_level == BANDWIDTH_MEDIUM  # attempted once
        assert client.errors == []
        client.on_delivery_failed(fetch_failure(client))
        network.run()
        # No further CHOICE was sent: the level froze where it bounced.
        assert client.tuning_level == BANDWIDTH_MEDIUM
        assert client.errors == []
        db.close()

    def test_degrade_off_records_but_does_not_react(self, tmp_path):
        db, network, server, client = build_rig(tmp_path)
        client.degrade_on_loss = False
        client.join("record-17")
        network.run()
        client.on_delivery_failed(fetch_failure(client))
        assert client.delivery_failures  # still recorded for inspection
        assert client.degraded_components == []
        assert client.tuning_level is None
        db.close()

    def test_non_fetch_failures_do_not_degrade(self, tmp_path):
        db, network, server, client = build_rig(tmp_path)
        client.join("record-17")
        network.run()
        error = fetch_failure(client)
        object.__setattr__(error, "kind", MessageKind.CHOICE)
        client.on_delivery_failed(error)
        assert client.tuning_level is None
        assert client.delivery_failures[0]["kind"] == MessageKind.CHOICE
        db.close()


class TestEndToEnd:
    def test_chaos_killing_payload_fetches_degrades_gracefully(self, tmp_path):
        # Every FETCH_PAYLOAD transmission dies (retries included): the
        # transport exhausts its budget, the hook fires for real, and the
        # client ends fully rendered at a stepped-down tuning level.
        plan = FaultPlan(
            seed=4, drop_rate=0.999999, kinds=(MessageKind.FETCH_PAYLOAD,)
        )
        db, network, server, client = build_rig(tmp_path, plan=plan)
        client.join("record-17")
        network.run()
        assert client.delivery_failures  # the transport really gave up
        assert all(
            f["kind"] == MessageKind.FETCH_PAYLOAD for f in client.delivery_failures
        )
        assert client.degraded_components  # placeholders, not hangs
        assert client.fully_rendered()
        assert client.tuning_level in (BANDWIDTH_MEDIUM, BANDWIDTH_LOW)
        assert client.errors == []
        db.close()
