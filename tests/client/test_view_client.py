"""Unit tests for the render tree and the networked client module."""

import pytest

from repro.client import ClientModule, RenderTree
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.errors import ClientError
from repro.net import Link, SimulatedNetwork
from repro.net.link import KBPS, MBPS
from repro.server import InteractionServer


class TestRenderTree:
    STRUCTURE = [
        {"path": "a", "domain": ["x", "y"]},
        {"path": "b", "domain": ["shown", "hidden"]},
    ]

    def test_construction(self):
        tree = RenderTree("doc", self.STRUCTURE)
        assert len(tree) == 2
        assert tree.value_of("a") is None

    def test_apply_update(self):
        tree = RenderTree("doc", self.STRUCTURE)
        changed = tree.apply_update({"a": "x", "b": "hidden"})
        assert set(changed) == {"a", "b"}
        assert tree.displayed() == {"a": "x", "b": "hidden"}

    def test_no_change_not_reported(self):
        tree = RenderTree("doc", self.STRUCTURE)
        tree.apply_update({"a": "x"})
        assert tree.apply_update({"a": "x"}) == ()

    def test_unknown_path_added(self):
        tree = RenderTree("doc", self.STRUCTURE)
        changed = tree.apply_update({"a.zoom": "applied"})
        assert changed == ("a.zoom",)
        assert "a.zoom" in tree

    def test_new_domain_value_learned(self):
        tree = RenderTree("doc", self.STRUCTURE)
        tree.apply_update({"a": "z"})
        assert "z" in tree.component("a").domain

    def test_payload_tracking(self):
        tree = RenderTree("doc", self.STRUCTURE)
        tree.apply_update({"a": "x", "b": "hidden"})
        assert tree.pending_payloads() == ("a",)  # hidden needs no payload
        tree.mark_payload_ready("a")
        assert tree.pending_payloads() == ()

    def test_value_change_invalidates_payload(self):
        tree = RenderTree("doc", self.STRUCTURE)
        tree.apply_update({"a": "x"})
        tree.mark_payload_ready("a")
        tree.apply_update({"a": "y"})
        assert tree.pending_payloads() == ("a",)

    def test_unknown_component_raises(self):
        tree = RenderTree("doc", self.STRUCTURE)
        with pytest.raises(ClientError):
            tree.component("ghost")


@pytest.fixture
def rig(tmp_path):
    """A server with two networked clients, document stored."""
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    net = SimulatedNetwork()
    server = InteractionServer(store, network=net)
    lee = ClientModule("lee", network=net)
    cho = ClientModule("cho", network=net)
    net.attach_client(lee, downlink=Link(bandwidth_bps=100 * MBPS), uplink=Link(bandwidth_bps=100 * MBPS))
    net.attach_client(cho, downlink=Link(bandwidth_bps=100 * MBPS), uplink=Link(bandwidth_bps=100 * MBPS))
    yield net, server, lee, cho
    db.close()


class TestClientOverNetwork:
    def test_join_populates_state(self, rig):
        net, server, lee, cho = rig
        lee.join("record-17")
        net.run()
        assert lee.session_id is not None
        assert lee.room_id is not None
        assert lee.displayed()["imaging.ct_head"] == "flat"
        assert lee.join_latency > 0

    def test_requests_before_join_rejected(self, rig):
        net, server, lee, cho = rig
        with pytest.raises(ClientError, match="join first"):
            lee.choose("imaging.ct_head", "icon")

    def test_choice_updates_both_clients(self, rig):
        net, server, lee, cho = rig
        lee.join("record-17")
        cho.join("record-17")
        net.run()
        lee.choose("imaging.ct_head", "segmented")
        net.run()
        assert lee.displayed()["imaging.ct_head"] == "segmented"
        assert cho.displayed()["imaging.ct_head"] == "segmented"
        assert len(cho.peer_events) == 1
        assert cho.peer_events[0]["kind"] == "choice"

    def test_response_time_measured(self, rig):
        net, server, lee, cho = rig
        lee.join("record-17")
        net.run()
        lee.choose("imaging.ct_head", "segmented")
        net.run()
        assert len(lee.response_times) == 1
        assert lee.response_times[0] > 0

    def test_payloads_fetched_and_buffered(self, rig):
        net, server, lee, cho = rig
        lee.join("record-17")
        net.run()
        assert lee.fully_rendered()
        assert lee.buffer.used_bytes > 0

    def test_slow_link_renders_later(self, tmp_path):
        db = Database(str(tmp_path / "db2"))
        store = MultimediaObjectStore(db)
        store.store_document(build_sample_medical_record())
        net = SimulatedNetwork()
        InteractionServer(store, network=net)
        slow = ClientModule("slow", network=net)
        net.attach_client(
            slow,
            downlink=Link(bandwidth_bps=256 * KBPS),
            uplink=Link(bandwidth_bps=256 * KBPS),
        )
        slow.join("record-17")
        net.run()
        assert slow.fully_rendered()
        # ~1.7 MB over 256 kbit/s: tens of seconds of simulated time.
        assert net.clock.now > 10
        db.close()

    def test_error_reported_to_client(self, rig):
        net, server, lee, cho = rig
        lee.join("record-17")
        cho.join("record-17")
        net.run()
        lee.freeze("imaging.ct_head")
        net.run()
        cho.choose("imaging.ct_head", "icon")
        net.run()
        assert cho.errors
        assert cho.errors[0]["error"] == "FrozenObjectError"
        assert cho.displayed()["imaging.ct_head"] == "flat"  # unchanged

    def test_operation_over_network(self, rig):
        net, server, lee, cho = rig
        lee.join("record-17")
        cho.join("record-17")
        net.run()
        lee.operate("imaging.ct_head", "zoom")
        net.run()
        assert lee.displayed().get("imaging.ct_head.zoom") == "applied"
        assert "imaging.ct_head.zoom" not in cho.displayed()

    def test_leave_closes_room(self, rig):
        net, server, lee, cho = rig
        lee.join("record-17")
        net.run()
        lee.leave()
        net.run()
        assert server.room_ids == ()
