"""Client-tier instrumentation: buffer gauges, response histograms,
registry-backed engine cache counters."""

import pytest

from repro import obs
from repro.client import ClientBuffer, ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import Link, SimulatedNetwork
from repro.presentation import PresentationEngine
from repro.server import InteractionServer

MBPS = 1_000_000


@pytest.fixture
def registry():
    fresh = obs.MetricsRegistry()
    with obs.use_registry(fresh):
        yield fresh


class TestBufferInstrumentation:
    def test_occupancy_gauge_follows_admit_remove_clear(self, registry):
        buf = ClientBuffer(1000, owner="client-dr-1")
        gauge = registry.gauge('client.buffer.occupancy_bytes{owner="client-dr-1"}')
        buf.admit("a", 400)
        buf.admit("b", 100)
        assert gauge.value == 500
        buf.remove("a")
        assert gauge.value == 100
        buf.clear()
        assert gauge.value == 0

    def test_evictions_counted_and_logged(self, registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            buf = ClientBuffer(500, owner="client-dr-1")
            buf.admit("old", 300, priority=0.1)
            buf.admit("new", 300, priority=9.0)  # forces eviction of "old"
        counter = registry.counter(
            'client.buffer.evictions{owner="client-dr-1"}'
        )
        assert counter.value == 1
        evictions = log.filter(name="client.buffer.evict")
        assert len(evictions) == 1
        assert evictions[0].fields["key"] == "old"
        assert evictions[0].fields["owner"] == "client-dr-1"

    def test_owners_get_separate_series(self, registry):
        ClientBuffer(100, owner="client-a").admit("x", 60)
        ClientBuffer(100, owner="client-b").admit("y", 10)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]['client.buffer.occupancy_bytes{owner="client-a"}'] == 60
        assert snapshot["gauges"]['client.buffer.occupancy_bytes{owner="client-b"}'] == 10

    def test_plain_hit_miss_attrs_survive(self, registry):
        # The prefetch simulator assigns these directly; they must stay
        # plain ints, not registry-backed properties.
        buf = ClientBuffer(100)
        buf.hits = 7
        buf.misses = 3
        assert buf.hit_rate == 0.7


class TestEngineCacheCounters:
    def test_properties_are_registry_backed(self, registry):
        engine = PresentationEngine(build_sample_medical_record())
        engine.register_viewer("dr-1")
        engine.presentation_for("dr-1")  # miss
        engine.presentation_for("dr-1")  # hit
        assert engine.cache_misses == 1
        assert engine.cache_hits == 1
        snapshot = registry.snapshot()
        assert snapshot["counters"][
            'presentation.spec_cache.hits{doc="record-17"}'
        ] == 1
        assert snapshot["counters"][
            'presentation.spec_cache.misses{doc="record-17"}'
        ] == 1

    def test_per_engine_counts_offset_shared_registry(self, registry):
        first = PresentationEngine(build_sample_medical_record())
        first.register_viewer("dr-1")
        first.presentation_for("dr-1")
        second = PresentationEngine(build_sample_medical_record())
        second.register_viewer("dr-1")
        # A new engine over the same doc starts from zero even though the
        # registry child already carries the first engine's counts.
        assert second.cache_misses == 0
        assert second.cache_hits == 0
        second.presentation_for("dr-1")
        assert second.cache_misses == 1
        assert first.cache_misses == 1
        # The registry series aggregates both engines for the doc.
        assert registry.counter(
            'presentation.spec_cache.misses{doc="record-17"}'
        ).value == 2


class TestViewResponseHistogram:
    def test_view_response_observed_per_viewer(self, registry, tmp_path):
        db = Database(str(tmp_path / "db"))
        store = MultimediaObjectStore(db)
        store.store_document(build_sample_medical_record())
        network = SimulatedNetwork()
        InteractionServer(store, network=network)
        clients = []
        for name in ("dr-0", "dr-1"):
            client = ClientModule(name, network=network)
            network.attach_client(
                client,
                downlink=Link(bandwidth_bps=10 * MBPS),
                uplink=Link(bandwidth_bps=10 * MBPS),
            )
            clients.append(client)
        for client in clients:
            client.join("record-17")
        network.run()
        clients[0].choose("imaging.ct_head", "segmented")
        network.run()
        snapshot = registry.snapshot()
        # The chooser times its own choice->update round trip.
        hist = snapshot["histograms"]['client.view_response_s{viewer="dr-0"}']
        assert hist["count"] >= 1
        assert hist["min"] > 0
        assert snapshot["histograms"]["client.join_latency_s"]["count"] == 2
        assert clients[0].response_times  # legacy list still populated
        db.close()
