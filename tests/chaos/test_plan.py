"""FaultPlan: seeded determinism, rates, priority, windows."""

import pytest

from repro.chaos import (
    CORRUPT,
    DROP,
    DUPLICATE,
    FLAP_DROP,
    FaultPlan,
    PARTITION_DROP,
)
from repro.errors import ChaosError


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)

    def test_empty_windows_are_rejected(self):
        plan = FaultPlan()
        with pytest.raises(ChaosError):
            plan.partition({"a"}, {"b"}, start=5.0, end=5.0)
        with pytest.raises(ChaosError):
            plan.flap("a", start=2.0, end=1.0)

    def test_overlapping_partition_sides_are_rejected(self):
        with pytest.raises(ChaosError):
            FaultPlan().partition({"a", "b"}, {"b", "c"}, 0.0, 1.0)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plans = [
            FaultPlan(seed=7, drop_rate=0.2, dup_rate=0.2, corrupt_rate=0.1)
            for _ in range(2)
        ]
        sequences = [
            [plan.decide("choice") for _ in range(200)] for plan in plans
        ]
        assert sequences[0] == sequences[1]

    def test_different_seed_different_decisions(self):
        a = FaultPlan(seed=1, drop_rate=0.3, delay_rate=0.3)
        b = FaultPlan(seed=2, drop_rate=0.3, delay_rate=0.3)
        assert [a.decide("choice") for _ in range(100)] != [
            b.decide("choice") for _ in range(100)
        ]


class TestDecide:
    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=3)
        assert all(plan.decide("choice") is None for _ in range(100))

    def test_certain_drop_always_drops(self):
        plan = FaultPlan(seed=3, drop_rate=0.999999)
        assert all(plan.decide("choice") == (DROP, 0.0) for _ in range(50))

    def test_drop_takes_priority_over_corrupt(self):
        plan = FaultPlan(seed=3, drop_rate=0.999999, corrupt_rate=0.999999)
        assert plan.decide("choice")[0] == DROP

    def test_one_fault_per_transmission(self):
        plan = FaultPlan(
            seed=11, drop_rate=0.3, dup_rate=0.3, corrupt_rate=0.3,
            delay_rate=0.3, reorder_rate=0.3,
        )
        for _ in range(500):
            decision = plan.decide("choice")
            assert decision is None or decision[0] in (
                DROP, CORRUPT, DUPLICATE, "delay", "reorder"
            )

    def test_protected_kinds_are_exempt(self):
        plan = FaultPlan(seed=5, drop_rate=0.999999)
        assert plan.decide("heartbeat") is None
        assert plan.decide("choice") is not None

    def test_kinds_filter_restricts_faults(self):
        plan = FaultPlan(seed=5, drop_rate=0.999999, kinds=("payload",))
        assert plan.decide("choice") is None
        assert plan.decide("payload") == (DROP, 0.0)

    def test_delay_is_bounded(self):
        plan = FaultPlan(seed=9, delay_rate=0.999999, delay_max_s=0.25)
        for _ in range(100):
            action, extra = plan.decide("choice")
            assert action == "delay" and 0.0 <= extra <= 0.25


class TestWindows:
    def test_partition_cuts_both_directions_only_inside_window(self):
        plan = FaultPlan()
        plan.partition({"gw"}, {"shard-1"}, start=1.0, end=2.0)
        assert plan.severed("gw", "shard-1", 1.5) == PARTITION_DROP
        assert plan.severed("shard-1", "gw", 1.5) == PARTITION_DROP
        assert plan.severed("gw", "shard-1", 0.5) is None
        assert plan.severed("gw", "shard-1", 2.0) is None  # end exclusive
        assert plan.severed("gw", "shard-2", 1.5) is None

    def test_flap_cuts_everything_touching_the_node(self):
        plan = FaultPlan()
        plan.flap("c1", start=0.0, end=1.0)
        assert plan.severed("c1", "server", 0.5) == FLAP_DROP
        assert plan.severed("server", "c1", 0.5) == FLAP_DROP
        assert plan.severed("server", "c2", 0.5) is None

    def test_partition_checked_before_flap(self):
        plan = FaultPlan()
        plan.flap("a", 0.0, 10.0)
        plan.partition({"a"}, {"b"}, 0.0, 10.0)
        assert plan.severed("a", "b", 5.0) == PARTITION_DROP

    def test_horizon_is_latest_window_edge(self):
        plan = FaultPlan()
        assert plan.horizon == 0.0
        plan.partition({"a"}, {"b"}, 1.0, 4.0)
        plan.flap("c", 2.0, 6.5)
        assert plan.horizon == 6.5
