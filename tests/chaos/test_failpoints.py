"""The failpoint registry itself (crash-point wiring is tested per-tier)."""

import pytest

from repro.chaos import Failpoints, get_failpoints, use_failpoints


class TestArming:
    def test_unarmed_fire_is_a_noop_but_counted(self):
        fp = Failpoints()
        assert fp.fire("journal.append", op="put") is None
        assert fp.hits == {"journal.append": 1}
        assert fp.fired == []

    def test_armed_point_fires_once_by_default(self):
        fp = Failpoints()
        fp.arm("journal.append", mode="torn")
        assert fp.fire("journal.append") == "torn"
        assert fp.fire("journal.append") is None  # disarmed after count
        assert fp.fired == [("journal.append", "torn")]

    def test_after_skips_matching_hits(self):
        fp = Failpoints()
        fp.arm("cluster.replicate", mode="crash_before", after=2)
        assert fp.fire("cluster.replicate") is None
        assert fp.fire("cluster.replicate") is None
        assert fp.fire("cluster.replicate") == "crash_before"

    def test_count_fires_repeatedly(self):
        fp = Failpoints()
        fp.arm("p", mode="m", count=3)
        assert [fp.fire("p") for _ in range(4)] == ["m", "m", "m", None]

    def test_match_restricts_by_context(self):
        fp = Failpoints()
        fp.arm("cluster.replicate", mode="crash_after", match={"shard": "shard-2"})
        assert fp.fire("cluster.replicate", shard="shard-1") is None
        assert fp.fire("cluster.replicate", shard="shard-2") == "crash_after"
        assert fp.armed("cluster.replicate") is False

    def test_validation(self):
        fp = Failpoints()
        with pytest.raises(ValueError):
            fp.arm("p", after=-1)
        with pytest.raises(ValueError):
            fp.arm("p", count=0)


class TestIsolation:
    def test_use_failpoints_installs_and_restores(self):
        outer = get_failpoints()
        with use_failpoints() as fp:
            assert get_failpoints() is fp
            assert fp is not outer
            fp.arm("p")
            assert get_failpoints().fire("p") == "fire"
        assert get_failpoints() is outer
        assert not outer.armed("p")

    def test_clear_disarms_everything(self):
        fp = Failpoints()
        fp.arm("a")
        fp.fire("b")
        fp.clear()
        assert not fp.armed("a")
        assert fp.hits == {} and fp.fired == []
