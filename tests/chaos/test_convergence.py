"""The acceptance gate: chaos runs converge byte-identically to control.

The full five-seed sweep runs in CI as
``python -m repro.chaos.convergence --seeds 1 2 3 4 5 --quick``; here we
keep the suite fast with two seeds in quick mode and spot-check the
report shape and the CLI exit codes.
"""

from repro.chaos.convergence import main, run_convergence


def test_two_seeds_converge_to_control(tmp_path):
    report = run_convergence(str(tmp_path), seeds=(1, 2), quick=True)
    assert report["ok"], report
    for seed in (1, 2):
        entry = report["seeds"][seed]
        assert entry["converged"]
        assert entry["errors"] == []
        assert entry["delivery_failures"] == []
        # Chaos must demonstrably have been on, and repaired.
        assert sum(entry["injected"].values()) > 0
        assert entry["retries"] > 0
        # The primary crash forced exactly one failover.
        assert entry["failovers"] == 1
        assert entry["victim"] is not None
    # The control itself finished a full conference without errors.
    assert report["control"]["errors"] == []
    assert report["control"]["displayed"]


def test_subscription_churn_still_converges(tmp_path):
    """Interest churn racing the fault windows must not break convergence.

    CP-net seeding plus subscribe/unsubscribe frames dropped, duplicated
    and reordered across the partition and the primary crash: the final
    replace-all re-subscribe's catch-up heals every divergence, so the
    seeded run still ends byte-identical to its (equally churning)
    fault-free control.
    """
    report = run_convergence(str(tmp_path), seeds=(1,), quick=True, interest_churn=True)
    assert report["ok"], report
    entry = report["seeds"][1]
    assert entry["converged"]
    assert entry["delivery_failures"] == []
    assert sum(entry["injected"].values()) > 0
    assert entry["failovers"] == 1


def test_traced_chaos_run_converges_to_untraced_control(tmp_path):
    """Trace trailers must be invisible to the data plane.

    The seeded chaos run traces every delivery (stamped frames, spans,
    histograms) while the control stays untraced: byte-identical final
    displays prove tracing changes no decode result, no ordering and no
    retry outcome — it only appends validated trailers the receivers
    skip.
    """
    report = run_convergence(str(tmp_path), seeds=(2,), quick=True, tracing=True)
    assert report["ok"], report
    entry = report["seeds"][2]
    assert entry["converged"]
    assert entry["errors"] == []
    assert entry["delivery_failures"] == []
    assert sum(entry["injected"].values()) > 0
    assert entry["retries"] > 0


def test_compiled_hot_path_converges_to_interpreted_control(tmp_path):
    """The compiled CP-net engine is byte-identical under faults.

    The control runs every completion on the interpreted reference sweep;
    the seeded chaos run keeps compiled evaluation plus the shard-scoped
    completion cache on, through the fault window and the primary crash.
    Byte-identical final displays prove compilation and cache sharing
    change no presentation decision — and the gate additionally requires
    cache *hits*, so sharing demonstrably happened (not just agreed).
    """
    report = run_convergence(str(tmp_path), seeds=(1,), quick=True, cpnet_compiled=True)
    assert report["ok"], report
    entry = report["seeds"][1]
    assert entry["converged"]
    assert entry["errors"] == []
    assert entry["delivery_failures"] == []
    assert entry["completion_cache_hits"] > 0
    assert sum(entry["injected"].values()) > 0
    assert entry["failovers"] == 1


def test_cli_reports_success(tmp_path, capsys):
    status = main(["--seeds", "3", "--quick", "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert status == 0
    assert "seed 3: ok" in out
    assert "converged to the control run" in out
