"""ChaosNetwork: fault enforcement composed with the reliable transport."""

import pytest

from repro import obs
from repro.chaos import (
    CORRUPTED_PAYLOAD,
    ChaosNetwork,
    FLAP_DROP,
    FaultPlan,
    PARTITION_DROP,
)
from repro.net import Link


@pytest.fixture(autouse=True)
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


class Recorder:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []
        self.failures = []

    def receive(self, message):
        self.received.append(message)

    def on_delivery_failed(self, error):
        self.failures.append(error)


def rig(plan, reliability=True):
    network = ChaosNetwork(reliability=reliability, plan=plan)
    hub = Recorder("server")
    client = Recorder("c1")
    network.attach_hub(hub)
    network.attach_client(client, uplink=Link(), downlink=Link())
    return network, hub, client


class TestFaultEnforcement:
    def test_no_plan_behaves_like_the_plain_network(self):
        network, hub, _ = rig(plan=None)
        network.send("c1", "server", "choice", {"v": 1}, size_bytes=10)
        network.run()
        assert [m.payload for m in hub.received] == [{"v": 1}]
        assert network.injected_counts() == {}

    def test_reliability_repairs_heavy_loss(self):
        plan = FaultPlan(seed=42, drop_rate=0.15, dup_rate=0.1, corrupt_rate=0.05)
        network, hub, _ = rig(plan)
        for n in range(20):
            network.send("c1", "server", "choice", {"n": n}, size_bytes=10)
        network.run()
        # Every frame arrives exactly once, in order, despite the chaos.
        assert [m.payload["n"] for m in hub.received] == list(range(20))
        assert sum(network.injected_counts().values()) > 0
        assert network.delivery_failures == []

    def test_without_reliability_loss_is_visible(self):
        plan = FaultPlan(seed=42, drop_rate=0.5)
        network, hub, _ = rig(plan, reliability=None)
        for n in range(40):
            network.send("c1", "server", "choice", {"n": n}, size_bytes=10)
        network.run()
        assert 0 < len(hub.received) < 40  # lossy and unrepaired
        assert network.injected_counts().get("drop", 0) > 0

    def test_corruption_substitutes_the_poison_payload(self):
        plan = FaultPlan(seed=1, corrupt_rate=0.999999)
        network, hub, _ = rig(plan, reliability=None)
        network.send("c1", "server", "choice", {"v": "good"}, size_bytes=10)
        network.run()
        assert [m.payload for m in hub.received] == [CORRUPTED_PAYLOAD]

    def test_retransmissions_are_also_subject_to_faults(self):
        # Drop everything: even the retries die, so the retry budget is
        # what terminates the run — injected count must exceed budget.
        plan = FaultPlan(seed=2, drop_rate=0.999999)
        network, hub, client = rig(plan)
        network.send("c1", "server", "choice", {"v": 1}, size_bytes=10)
        network.run()
        assert hub.received == []
        assert [f.reason for f in network.delivery_failures] == [
            "retry_budget_exhausted"
        ]
        assert client.failures == network.delivery_failures
        assert network.injected_counts()["drop"] >= 7  # every attempt dropped

    def test_injected_counts_label_by_fault(self, fresh_obs):
        registry, _ = fresh_obs
        plan = FaultPlan(seed=3, dup_rate=0.999999)
        network, hub, _ = rig(plan, reliability=None)
        network.send("c1", "server", "choice", {}, size_bytes=10)
        network.run()
        assert network.injected_counts() == {"duplicate": 1}
        counters = registry.snapshot()["counters"]
        assert counters['chaos.injected{fault="duplicate"}'] == 1
        # Without reliability the duplicate reaches the app twice.
        assert len(hub.received) == 2


class TestWindows:
    def test_partition_cuts_frames_and_heals(self, fresh_obs):
        _, log = fresh_obs
        plan = FaultPlan()
        plan.partition({"c1"}, {"server"}, start=0.0, end=1.0)
        network, hub, _ = rig(plan, reliability=None)
        network.send("c1", "server", "choice", {"n": 1}, size_bytes=10)
        network.clock.schedule_at(
            1.5, lambda: network.send("c1", "server", "choice", {"n": 2}, size_bytes=10)
        )
        network.run()
        assert [m.payload["n"] for m in hub.received] == [2]
        assert network.injected_counts() == {PARTITION_DROP: 1}
        names = [e.name for e in log.events]
        assert "chaos.partition_open" in names
        assert "chaos.partition_close" in names

    def test_reliability_rides_out_a_partition(self):
        plan = FaultPlan()
        plan.partition({"c1"}, {"server"}, start=0.0, end=1.0)
        network, hub, _ = rig(plan)
        network.send("c1", "server", "choice", {"n": 1}, size_bytes=10)
        network.run()
        # Retransmission after the window closes delivers the frame.
        assert [m.payload["n"] for m in hub.received] == [1]
        assert network.delivery_failures == []
        assert network.injected_counts()[PARTITION_DROP] >= 1

    def test_flap_severs_both_directions(self, fresh_obs):
        _, log = fresh_obs
        plan = FaultPlan()
        plan.flap("c1", start=0.0, end=0.5)
        network, hub, client = rig(plan, reliability=None)
        network.send("c1", "server", "choice", {}, size_bytes=10)
        network.send("server", "c1", "payload", {}, size_bytes=10)
        network.run()
        assert hub.received == [] and client.received == []
        assert network.injected_counts() == {FLAP_DROP: 2}
        assert "chaos.link_flap_open" in [e.name for e in log.events]

    def test_heartbeats_are_cut_by_partitions_despite_protection(self):
        plan = FaultPlan(drop_rate=0.999999)  # heartbeat protected from this
        plan.partition({"c1"}, {"server"}, start=0.0, end=1.0)
        network, hub, _ = rig(plan, reliability=None)
        network.send("c1", "server", "heartbeat", {}, size_bytes=8)
        network.run()
        assert hub.received == []
        assert network.injected_counts() == {PARTITION_DROP: 1}
