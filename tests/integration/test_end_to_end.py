"""Integration: the full conferencing stack, end to end.

Each test drives the system the way the paper's scenarios do — clients
over the simulated network, the interaction server in the middle, the
database behind it — and asserts observable outcomes across module
boundaries.
"""

import pytest

from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import Link, SimulatedNetwork
from repro.presentation import TUNING_VARIABLE, install_bandwidth_tuning
from repro.server import InteractionServer
from repro.workloads import consultation_events, generate_record

MBPS = 1_000_000


@pytest.fixture
def rig(tmp_path):
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    doc = build_sample_medical_record()
    install_bandwidth_tuning(doc)
    store.store_document(doc)
    network = SimulatedNetwork()
    server = InteractionServer(store, network=network)
    yield store, network, server
    db.close()


def attach(network, name, mbps=50.0):
    client = ClientModule(name, network=network)
    network.attach_client(
        client,
        downlink=Link(bandwidth_bps=mbps * MBPS),
        uplink=Link(bandwidth_bps=mbps * MBPS),
    )
    return client


class TestConferenceLifecycle:
    def test_three_viewers_share_one_room(self, rig):
        store, network, server = rig
        clients = [attach(network, f"dr-{i}") for i in range(3)]
        for client in clients:
            client.join("record-17")
        network.run()
        assert len(server.room_ids) == 1
        room = server.room(server.room_ids[0])
        assert len(room.viewer_ids) == 3
        # Everyone starts from the same author-optimal view.
        displays = [client.displayed() for client in clients]
        assert displays[0] == displays[1] == displays[2]

    def test_cooperative_session_converges(self, rig):
        store, network, server = rig
        lee = attach(network, "lee")
        cho = attach(network, "cho")
        lee.join("record-17")
        cho.join("record-17")
        network.run()
        script = [
            ("imaging.ct_head", "segmented"),
            ("labs", "hidden"),
            ("consult.voice_note", "transcript"),
            ("imaging.ct_head", "icon"),
        ]
        for component, value in script:
            lee.choose(component, value)
            network.run()
        assert lee.displayed() == cho.displayed()
        assert cho.displayed()["imaging.ct_head"] == "icon"
        assert cho.displayed()["labs.ecg"] == "hidden"  # subtree hiding
        assert len(cho.peer_events) == len(script)

    def test_mixed_bandwidth_views_differ_then_align(self, rig):
        store, network, server = rig
        fast = attach(network, "fast", mbps=100.0)
        slow = attach(network, "slow", mbps=0.2)
        fast.join("record-17")
        slow.join("record-17")
        network.run()
        slow.choose(TUNING_VARIABLE, "low", scope="personal")
        network.run()
        assert fast.displayed()["imaging.ct_head"] == "flat"
        assert slow.displayed()["imaging.ct_head"] == "icon"
        # An explicit shared choice overrides the tuning preference.
        fast.choose("imaging.ct_head", "segmented")
        network.run()
        assert slow.displayed()["imaging.ct_head"] == "segmented"

    def test_operations_persist_across_sessions(self, rig):
        store, network, server = rig
        lee = attach(network, "lee")
        lee.join("record-17")
        network.run()
        lee.operate("imaging.ct_head", "measurement", global_importance=True)
        network.run()
        lee.leave()
        network.run()
        # Second consultation, different viewer: the operation is there.
        cho = attach(network, "cho")
        cho.join("record-17")
        network.run()
        assert "imaging.ct_head.measurement" in cho.displayed()

    def test_room_closes_and_reopens_cleanly(self, rig):
        store, network, server = rig
        lee = attach(network, "lee")
        lee.join("record-17")
        network.run()
        first_room = lee.room_id
        lee.leave()
        network.run()
        assert server.room_ids == ()
        lee2 = attach(network, "lee2")
        lee2.join("record-17")
        network.run()
        assert lee2.room_id is not None
        assert lee2.room_id != first_room


class TestPersistenceAcrossRestart:
    def test_full_restart_round_trip(self, tmp_path):
        path = str(tmp_path / "db")
        doc = build_sample_medical_record("restart-doc")
        with Database(path) as db:
            store = MultimediaObjectStore(db)
            store.store_document(doc)
            ct = store.store_image(b"ct-pixels" * 1000, quality=2)
            db.checkpoint()
        # Fresh process: open the same directory, conference again.
        with Database(path) as db:
            store = MultimediaObjectStore(db)
            network = SimulatedNetwork()
            InteractionServer(store, network=network)
            client = attach(network, "resumer")
            client.join("restart-doc")
            network.run()
            assert client.displayed()["imaging.ct_head"] == "flat"
            row, payload = store.fetch(ct)
            assert payload == b"ct-pixels" * 1000

    def test_scripted_session_replays_identically(self, tmp_path):
        """Determinism across the whole stack (same seed, same traffic)."""
        def run_once(tag):
            db = Database(str(tmp_path / f"db-{tag}"))
            store = MultimediaObjectStore(db)
            store.store_document(generate_record("det", sections=3, seed=5))
            network = SimulatedNetwork()
            InteractionServer(store, network=network)
            client = attach(network, "viewer")
            client.join("det")
            network.run()
            for component, value in consultation_events(
                generate_record("det", sections=3, seed=5), num_events=8, seed=3
            ):
                client.choose(component, value)
                network.run()
            result = (client.displayed(), network.stats.messages, network.stats.bytes_total)
            db.close()
            return result

        assert run_once("a") == run_once("b")


class TestErrorPaths:
    def test_unknown_document_error_reaches_client(self, rig):
        store, network, server = rig
        client = attach(network, "lost")
        client.join("no-such-record")
        network.run()
        assert client.errors
        assert client.session_id is None or client.room_id is None

    def test_freeze_conflict_over_network(self, rig):
        store, network, server = rig
        lee = attach(network, "lee")
        cho = attach(network, "cho")
        lee.join("record-17")
        cho.join("record-17")
        network.run()
        lee.freeze("imaging.ct_head")
        cho.freeze("imaging.ct_head")
        network.run()
        assert cho.errors and cho.errors[0]["error"] == "FrozenObjectError"
