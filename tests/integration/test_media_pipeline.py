"""Integration: media payloads through the database and the codec.

Exercises the path a real deployment uses: images and audio are encoded,
stored as blobs in the Fig. 7 tables, fetched back, transcoded per
bandwidth class, and analysed by the browsing tools.
"""

import pytest

from repro.db import Database, MultimediaObjectStore
from repro.media.audio import AudioSignal, ConversationBuilder, segment_audio
from repro.media.audio.synth import DEFAULT_SPEAKERS
from repro.media.image import (
    AnnotatedImage,
    EncodedImage,
    Image,
    MultiLayerCodec,
    ct_phantom,
    psnr,
)
from repro.media.image.progressive import transcode_to_budget


@pytest.fixture
def store(tmp_path):
    db = Database(str(tmp_path / "db"))
    yield MultimediaObjectStore(db)
    db.close()


class TestImagePipeline:
    def test_store_encode_fetch_decode(self, store):
        image = ct_phantom(128, seed=3)
        encoded = MultiLayerCodec().encode(image, num_layers=3)
        handle = store.store_compressed(
            encoded.to_bytes(), header=b"mlc-v1", filename="ct.mlc"
        )
        row, payload = store.fetch(handle)
        decoded = MultiLayerCodec.decode(EncodedImage.from_bytes(payload))
        assert psnr(image, decoded) > 40.0
        assert row["FLD_FILESIZE"] == len(payload)

    def test_server_side_transcoding_from_storage(self, store):
        """One stored stream serves several budgets without re-encoding."""
        image = ct_phantom(128, seed=4)
        encoded = MultiLayerCodec().encode(image, num_layers=4)
        handle = store.store_compressed(encoded.to_bytes(), header=b"mlc-v1")
        _, payload = store.fetch(handle)
        stored = EncodedImage.from_bytes(payload)
        small = transcode_to_budget(stored, stored.prefix_size(1) + 64)
        large = transcode_to_budget(stored, len(payload))
        small_quality = psnr(image, MultiLayerCodec.decode(EncodedImage.from_bytes(small)))
        large_quality = psnr(image, MultiLayerCodec.decode(EncodedImage.from_bytes(large)))
        assert len(small) < len(large)
        assert small_quality < large_quality

    def test_annotated_image_round_trip(self, store):
        base = ct_phantom(64, seed=5)
        annotated = AnnotatedImage(base)
        annotated.add_text("lesion", 10, 10)
        annotated.add_line(0, 0, 63, 63)
        rendered = annotated.render()
        texts = [
            {"kind": "text", "text": "lesion", "row": 10, "col": 10},
            {"kind": "line", "from": [0, 0], "to": [63, 63]},
        ]
        handle = store.store_image(rendered.to_bytes(), quality=2, texts=texts)
        row, payload = store.fetch(handle)
        restored = Image.from_bytes(payload)
        assert restored.shape == base.shape
        assert row["FLD_TEXTS"][0]["text"] == "lesion"

    def test_delete_reclaims_blob_space(self, store):
        image = ct_phantom(128, seed=6)
        handle = store.store_image(image.to_bytes())
        live_before = store.db.blobs.live_bytes
        store.delete(handle)
        assert store.db.blobs.live_bytes < live_before
        reclaimed = store.db.blobs.vacuum()
        assert reclaimed > 0


class TestAudioPipeline:
    def test_store_analyse_fetch(self, store):
        adams, baker, _, __ = DEFAULT_SPEAKERS
        signal, truth = (
            ConversationBuilder(seed=3)
            .pause(0.3).say(adams, "lesion").pause(0.3).say(baker, "normal").pause(0.3)
        ).build()
        segments = segment_audio(signal)
        sectors = [
            {"t0": s.start_s, "t1": s.end_s, "label": s.label} for s in segments
        ]
        handle = store.store_audio(signal.to_bytes(), filename="c.pcm", sectors=sectors)
        row, payload = store.fetch(handle)
        restored = AudioSignal.from_bytes(payload)
        assert restored.duration_s == pytest.approx(signal.duration_s, abs=1e-3)
        speech = [s for s in row["FLD_SECTORS"] if s["label"] == "speech"]
        assert len(speech) == 2

    def test_sector_annotations_queryable(self, store):
        signal = AudioSignal.silence(0.5)
        store.store_audio(signal.to_bytes(), filename="a.pcm", sectors=[{"label": "silence"}])
        store.store_audio(signal.to_bytes(), filename="b.pcm", sectors=[{"label": "speech"}])
        rows = store.list_objects("Audio")
        assert [r["FLD_FILENAME"] for r in rows] == ["a.pcm", "b.pcm"]
