"""Integration: delivery traces reconstructed across the whole cluster.

The acceptance scenario of the tracing work: one traced propagation in a
four-shard cluster yields, per subscriber, a delivery tree naming every
hop the update crossed — ``uplink → gateway_route → shard_queue →
batch_wait → … → downlink`` — with retransmit children appearing under
chaos, end-to-end latency per room in the histograms, and zero trace
residue after sessions depart and rooms close.
"""

import pytest

from repro import obs
from repro.chaos.plan import FaultPlan
from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.net import SimulatedNetwork
from repro.obs.dtrace import (
    HOP_BATCH_WAIT,
    HOP_DOWNLINK,
    HOP_GATEWAY_ROUTE,
    HOP_RETRANSMIT,
    HOP_SHARD_QUEUE,
    HOP_UPLINK,
    DeliveryTracer,
    critical_path,
    render_delivery_tree,
    use_dtrace,
)
from repro.server import InteractionServer
from repro.workloads.chaos import run_chaos_conference
from repro.workloads.cluster import run_cluster_conference


@pytest.fixture
def obs_sandbox():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry), obs.use_event_log(obs.EventLog()):
        yield registry


@pytest.fixture
def store(tmp_path):
    db = Database(str(tmp_path / "db"))
    yield MultimediaObjectStore(db)
    db.close()


def test_four_shard_cluster_reconstructs_full_delivery_trees(obs_sandbox, store):
    tracer = DeliveryTracer(sample_every=1)
    with use_dtrace(tracer):
        result = run_cluster_conference(
            store, num_shards=4, num_rooms=4, clients_per_room=3,
            events_per_room=3, batch_window_s=0.02,
        )
    assert result["errors"] == []
    assert len(tracer.store) > 0
    full_chains = 0
    for record in tracer.store:
        assert record.origin.startswith("client-")
        for delivery in record.deliveries:
            path = [s.hop for s in critical_path(record, delivery["span_id"])]
            assert path[0] == HOP_UPLINK
            assert path[-1] == HOP_DOWNLINK
            if path == [
                HOP_UPLINK, HOP_GATEWAY_ROUTE, HOP_SHARD_QUEUE,
                HOP_BATCH_WAIT, HOP_GATEWAY_ROUTE, HOP_DOWNLINK,
            ]:
                full_chains += 1
    # The canonical cross-node chain dominates a healthy batched run.
    assert full_chains > 0
    # Per-room e2e latency series materialized.
    histograms = obs_sandbox.snapshot()["histograms"]
    e2e_series = [k for k in histograms if k.startswith("dtrace.e2e.latency")]
    assert e2e_series
    assert all(histograms[k]["count"] > 0 for k in e2e_series)
    hop_series = {
        k for k in histograms if k.startswith("dtrace.hop.latency")
    }
    for hop in (
        HOP_UPLINK, HOP_GATEWAY_ROUTE, HOP_SHARD_QUEUE,
        HOP_BATCH_WAIT, HOP_DOWNLINK,
    ):
        assert f'dtrace.hop.latency{{hop="{hop}"}}' in hop_series


def test_rendered_tree_names_every_hop_per_subscriber(obs_sandbox, store):
    tracer = DeliveryTracer(sample_every=1)
    with use_dtrace(tracer):
        run_cluster_conference(
            store, num_shards=4, num_rooms=2, clients_per_room=3,
            events_per_room=2, batch_window_s=0.02,
        )
    record = next(
        r for r in tracer.store
        if len(r.deliveries) >= 2 and any(s.hop == HOP_BATCH_WAIT for s in r.spans)
    )
    text = render_delivery_tree(record)
    for needle in ("uplink", "gateway_route", "shard_queue", "batch_wait",
                   "downlink", "← delivered"):
        assert needle in text
    # One delivery marker per subscriber that displayed the update.
    assert text.count("← delivered") == len(record.deliveries)


def test_chaos_run_attaches_retransmit_children(obs_sandbox, store):
    tracer = DeliveryTracer(sample_every=1)
    with use_dtrace(tracer):
        result = run_chaos_conference(
            store,
            plan=FaultPlan(seed=3, drop_rate=0.25),
            num_shards=2, num_rooms=2, clients_per_room=2,
            events_per_room=4, failure_timeout=30.0,
        )
    assert result["errors"] == []
    retransmits = [
        span
        for record in tracer.store
        for span in record.spans
        if span.hop == HOP_RETRANSMIT
    ]
    assert retransmits, "25% drop must retransmit at least one traced frame"
    for span in retransmits:
        assert span.detail["attempt"] >= 1
        assert span.duration > 0
    histograms = obs_sandbox.snapshot()["histograms"]
    assert histograms['dtrace.hop.latency{hop="retransmit"}']["count"] == len(
        retransmits
    )


def test_departed_session_leaves_no_trace_residue(obs_sandbox, tmp_path):
    """Regression: disconnects drop per-session dtrace and monitor state."""
    from repro.document import build_sample_medical_record

    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    tracer = DeliveryTracer(sample_every=1)
    try:
        with use_dtrace(tracer):
            network = SimulatedNetwork()
            server = InteractionServer(store, network=network)
            clients = []
            for name in ("lee", "cho"):
                client = ClientModule(name, network=network)
                network.attach_client(client)
                client.join("record-17")
                clients.append(client)
            network.run()
            clients[0].choose("labs", "hidden")
            network.run()
            assert len(tracer.store) > 0
            room_id = server.room_ids[0]
            # A wire LEAVE disconnects the session server-side; the last
            # one out closes the room.
            for client in clients:
                client.leave()
                network.run()
            assert server.session_ids == ()
            assert server.room_ids == ()
    finally:
        db.close()
    # Zero TraceStore growth after departure...
    assert len(tracer.store) == 0
    histograms = obs_sandbox.snapshot()["histograms"]
    # ...and zero live labelled series for the closed room.
    assert f'dtrace.e2e.latency{{room="{room_id}"}}' not in histograms
    gauges = obs_sandbox.snapshot()["gauges"]
    assert f'interest.subscriptions{{room="{room_id}"}}' not in gauges


def test_disconnect_session_also_handles_monitor_sessions(obs_sandbox, tmp_path):
    """Regression: a monitor session disconnects through the same entry."""
    from repro.document import build_sample_medical_record

    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    try:
        server = InteractionServer(store, network=SimulatedNetwork())
        monitor = server.connect_monitor("ops")
        assert monitor.session_id in server.monitor_ids
        server.disconnect_session(monitor.session_id)
        assert monitor.session_id not in server.monitor_ids
    finally:
        db.close()
