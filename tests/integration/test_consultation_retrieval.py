"""Integration: a consultation that reaches into the §1 retrieval stack.

Physicians in a room pull similar cases by image, check stored marks from
prior reviews, and fetch supporting literature — all against the same
database the room's document lives in.
"""

import pytest

from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.media.image import ct_phantom
from repro.net import SimulatedNetwork
from repro.retrieval import AnnotationSpatialIndex, SimilarImageIndex
from repro.retrieval.text import ArticleSearchEngine
from repro.server import InteractionServer


@pytest.fixture
def clinic(tmp_path):
    db = Database(str(tmp_path / "clinic"))
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record("patient-now"))
    image_index = SimilarImageIndex(store)
    for seed in range(4):
        image_index.add_image(ct_phantom(128, seed=seed), label=f"case-{seed}")
    articles = ArticleSearchEngine(db)
    articles.add_article(
        "Ring enhancement in cerebral CT",
        "Contrast CT of cerebral lesions with ring enhancement patterns.",
    )
    articles.add_article(
        "Rural telemedicine bandwidth", "Bandwidth limits image quality remotely."
    )
    yield db, store, image_index, articles
    db.close()


class TestConsultationWithRetrieval:
    def test_full_flow(self, clinic):
        db, store, image_index, articles = clinic
        network = SimulatedNetwork()
        server = InteractionServer(store, network=network)
        viewer = ClientModule("radiologist", network=network)
        network.attach_client(viewer)
        viewer.join("patient-now")
        network.run()

        # During the room session: mark the CT and persist on close.
        viewer.annotate("imaging.ct_head", {"type": "text", "text": "ring sign", "x": 60, "y": 70})
        network.run()
        viewer.leave()
        network.run()

        # A later consultation: similar cases by the new patient's CT.
        hits = image_index.query(ct_phantom(128, seed=99), k=2)
        assert all(hit.label.startswith("case-") for hit in hits)

        # Prior marks, searched spatially.
        marks = AnnotationSpatialIndex.from_store(
            store, "patient-now", "imaging.ct_head", 256, 256
        )
        assert marks.mark_near(61, 71)["text"] == "ring sign"

        # Supporting literature for what was seen.
        papers = articles.search("cerebral ring enhancement")
        assert papers[0].title == "Ring enhancement in cerebral CT"

    def test_everything_shares_one_database(self, clinic):
        db, store, image_index, articles = clinic
        tables = set(db.table_names)
        assert {"DOCUMENT_OBJECTS_TABLE", "IMAGE_OBJECTS_TABLE",
                "IMAGE_FEATURES_TABLE", "ARTICLES_TABLE",
                "ANNOTATIONS_TABLE"} <= tables

    def test_retrieval_survives_restart(self, tmp_path):
        path = str(tmp_path / "clinic2")
        with Database(path) as db:
            store = MultimediaObjectStore(db)
            SimilarImageIndex(store).add_image(ct_phantom(128, seed=1), label="c1")
            ArticleSearchEngine(db).add_article("T", "persistent zebra body")
        with Database(path) as db:
            store = MultimediaObjectStore(db)
            assert SimilarImageIndex(store).query(ct_phantom(128, seed=1), k=1)[0].label == "c1"
            assert ArticleSearchEngine(db).search("zebra")[0].title == "T"
