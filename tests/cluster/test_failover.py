"""End-to-end failover: kill a primary mid-conference, lose nothing acked.

The acceptance run: the same conference is driven twice — once
uninterrupted, once with the primary shard fail-stopped between the two
halves of every room's choice stream. The detector promotes the replica,
the gateway re-homes the sessions, and every client's final displayed
presentation must be byte-identical across the two runs.
"""

import pytest

from repro import obs
from repro.cluster import ClusterHarness
from repro.workloads import consultation_events, generate_record
from repro.db import Database, MultimediaObjectStore

DOCS = ("case-0", "case-1", "case-2")
EVENTS_PER_ROOM = 6
HORIZON = 30.0


@pytest.fixture
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        obs.trace.clear()
        log = obs.EventLog(tracer=obs.trace)
        with obs.use_event_log(log):
            yield registry, log


def drive_conference(tmp_path, name, crash_owner_of=None):
    """One 3-room conference on a 3-shard cluster; optionally crash."""
    db = Database(str(tmp_path / name))
    store = MultimediaObjectStore(db)
    records = {}
    for index, doc_id in enumerate(DOCS):
        record = generate_record(
            doc_id, sections=2, components_per_section=3, seed=index
        )
        records[doc_id] = record
        store.store_document(record)
    harness = ClusterHarness(store, num_shards=3, failure_timeout=1.5)
    clients = {}
    for index, doc_id in enumerate(DOCS):
        pair = [harness.add_client(f"dr-{index}-{j}") for j in range(2)]
        for client in pair:
            client.join(doc_id)
        clients[doc_id] = pair
    harness.run()
    streams = {
        doc_id: consultation_events(
            records[doc_id], num_events=EVENTS_PER_ROOM, seed=21 + index
        )
        for index, doc_id in enumerate(DOCS)
    }
    for doc_id, events in streams.items():
        for path, value in events[: EVENTS_PER_ROOM // 2]:
            clients[doc_id][0].choose(path, value)
    harness.run()
    harness.start(until=HORIZON)
    victim = harness.owner_of(crash_owner_of) if crash_owner_of else None
    if victim is not None:
        harness.run_until(3.0)
        harness.crash(victim)
        harness.run_until(10.0)
    harness.run()
    for doc_id, events in streams.items():
        for path, value in events[EVENTS_PER_ROOM // 2 :]:
            clients[doc_id][1].choose(path, value)
    harness.run()
    out = {
        "harness": harness,
        "victim": victim,
        "final": {
            client.viewer_id: client.displayed()
            for pair in clients.values()
            for client in pair
        },
        "errors": [
            error
            for pair in clients.values()
            for client in pair
            for error in client.errors
        ],
        "clients": clients,
    }
    db.close()
    return out


class TestFailover:
    def test_acked_state_survives_primary_death(self, tmp_path, fresh_obs):
        control = drive_conference(tmp_path, "control")
        assert control["errors"] == []

        failed = drive_conference(tmp_path, "failover", crash_owner_of="case-0")
        assert failed["errors"] == []
        harness = failed["harness"]

        # The failover actually happened...
        assert failed["victim"] in harness.gateway.dead_shards
        assert len(harness.gateway.failovers) == 1
        failover = harness.gateway.failovers[0]
        assert failover["primary"] == failed["victim"]
        assert failover["completed"] > failover["started"]

        # ...the survivor serves the victim's rooms...
        promoted = harness.shards[failover["promoted"]]
        assert failed["victim"] in promoted.promoted_primaries

        # ...and no client can tell: every final displayed presentation is
        # byte-identical to the uninterrupted run.
        assert failed["final"] == control["final"]

    def test_sessions_rehomed_to_the_promoted_shard(self, tmp_path, fresh_obs):
        failed = drive_conference(tmp_path, "rehome", crash_owner_of="case-0")
        harness = failed["harness"]
        promoted_to = harness.gateway.failovers[0]["promoted"]
        for client in failed["clients"]["case-0"]:
            assert harness.gateway.shard_of_session(client.session_id) == promoted_to

    def test_replication_lag_zero_before_crash(self, tmp_path, fresh_obs):
        """Quiescence means fully acked logs — the precondition that makes
        the no-loss guarantee hold for every op a client saw acked."""
        control = drive_conference(tmp_path, "lagcheck")
        for shard in control["harness"].shards.values():
            for replica_id in list(shard._ship):
                assert shard.replication_lag(replica_id) == 0

    def test_failover_duration_is_observed(self, tmp_path, fresh_obs):
        registry, _ = fresh_obs
        drive_conference(tmp_path, "metrics", crash_owner_of="case-0")
        histograms = registry.snapshot()["histograms"]
        assert histograms["cluster.failover_duration_s"]["count"] == 1
        counters = registry.snapshot()["counters"]
        assert counters["cluster.promotions"] == 1

    def test_failover_is_deterministic(self, tmp_path, fresh_obs):
        first = drive_conference(tmp_path, "det1", crash_owner_of="case-0")
        second = drive_conference(tmp_path, "det2", crash_owner_of="case-0")
        assert first["victim"] == second["victim"]
        assert first["final"] == second["final"]
        assert (
            first["harness"].gateway.failovers[0]["completed"]
            == second["harness"].gateway.failovers[0]["completed"]
        )

    def test_post_failover_rooms_keep_replicating(self, tmp_path, fresh_obs):
        """The promoted shard becomes a primary in its own right: taken-over
        rooms are bootstrapped to a fresh replica named by the new ring."""
        failed = drive_conference(tmp_path, "rereplicate", crash_owner_of="case-0")
        harness = failed["harness"]
        promoted = harness.shards[harness.gateway.failovers[0]["promoted"]]
        survivors = [
            shard_id
            for shard_id, shard in harness.shards.items()
            if shard.alive and shard_id != promoted.node_id
        ]
        assert survivors  # 3-shard cluster: someone is left to mirror
        replicated_to = [s for s in survivors if promoted.replication_lag(s) == 0
                         and s in promoted._ship]
        assert replicated_to, "taken-over rooms found no new replica"
