"""Gateway routing: clients speak the single-server protocol, unchanged."""

import pytest

from repro import obs
from repro.cluster import ClusterHarness
from repro.db import Database, MultimediaObjectStore
from repro.net.message import Message
from repro.server.protocol import MessageKind
from repro.workloads import generate_record


@pytest.fixture
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        obs.trace.clear()
        log = obs.EventLog(tracer=obs.trace)
        with obs.use_event_log(log):
            yield registry, log


@pytest.fixture
def rig(tmp_path, fresh_obs):
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    docs = [f"case-{i}" for i in range(6)]
    records = {}
    for index, doc_id in enumerate(docs):
        record = generate_record(
            doc_id, sections=2, components_per_section=3, seed=index
        )
        records[doc_id] = record
        store.store_document(record)
    harness = ClusterHarness(store, num_shards=3)
    yield harness, docs, records, fresh_obs[0]
    db.close()


class TestJoinRouting:
    def test_join_lands_on_the_ring_owner(self, rig):
        harness, docs, _, _ = rig
        clients = {}
        for doc_id in docs:
            client = harness.add_client(f"viewer-{doc_id}")
            client.join(doc_id)
            clients[doc_id] = client
        harness.run()
        for doc_id, client in clients.items():
            assert client.session_id is not None
            owner = harness.owner_of(doc_id)
            # The session id is namespaced by the shard that minted it.
            assert client.session_id.startswith(f"{owner}:")
            assert harness.gateway.shard_of_session(client.session_id) == owner
            assert harness.shards[owner].server.has_session(client.session_id)

    def test_ids_from_different_shards_never_collide(self, rig):
        harness, docs, _, _ = rig
        clients = [harness.add_client(f"viewer-{i}") for i in range(len(docs))]
        for client, doc_id in zip(clients, docs):
            client.join(doc_id)
        harness.run()
        session_ids = [c.session_id for c in clients]
        assert len(set(session_ids)) == len(session_ids)
        assert len({harness.owner_of(d) for d in docs}) > 1  # really sharded


class TestSessionRouting:
    def test_choice_propagates_through_the_gateway(self, rig):
        harness, docs, records, _ = rig
        doc_id = docs[0]
        alice = harness.add_client("alice")
        bob = harness.add_client("bob")
        alice.join(doc_id)
        bob.join(doc_id)
        harness.run()
        component = records[doc_id].component_paths()[1]
        domain = records[doc_id].component(component).domain
        target = next(v for v in domain if v != alice.displayed()[component])
        alice.choose(component, target)
        harness.run()
        assert alice.errors == [] and bob.errors == []
        assert alice.displayed()[component] == target
        assert bob.displayed() == alice.displayed()

    def test_leave_clears_the_route(self, rig):
        harness, docs, _, _ = rig
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        session_id = client.session_id
        client.leave()
        harness.run()
        assert harness.gateway.shard_of_session(session_id) is None

    def test_unknown_session_is_an_error_not_a_crash(self, rig):
        harness, docs, _, _ = rig
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        # Forge a choice for a session the gateway never saw.
        harness.network.send(
            "client-alice", harness.gateway.node_id, MessageKind.CHOICE,
            payload={"session_id": "nowhere:session-9", "component": "x", "value": "y"},
            size_bytes=10,
        )
        harness.run()
        assert any(e["error"] == "ClusterError" for e in client.errors)

    def test_monitor_sessions_are_gateway_local(self, rig):
        harness, _, _, _ = rig
        monitor = harness.add_monitor("ops")
        harness.run()
        assert monitor.session_id is not None
        assert monitor.session_id in harness.gateway.monitor_ids
        # Monitors talk to the cluster tier, not to any one shard.
        assert harness.gateway.shard_of_session(monitor.session_id) is None


class TestRoutingAccounting:
    def test_routed_bytes_metrics_cover_both_directions(self, rig):
        harness, docs, _, registry = rig
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        owner = harness.owner_of(docs[0])
        snapshot = registry.snapshot()["counters"]
        to_shard = snapshot[
            f'gateway.routed_bytes{{shard="{owner}",direction="to_shard"}}'
        ]
        to_client = snapshot[
            f'gateway.routed_bytes{{shard="{owner}",direction="to_client"}}'
        ]
        assert to_shard > 0 and to_client > 0
        assert snapshot["gateway.routed_messages"] >= 2  # join in, ack+state out

    def test_route_envelopes_charge_declared_inner_size(self, rig):
        """Honest wire accounting: backbone ROUTE traffic is charged the
        envelope header plus the inner message's declared size."""
        harness, docs, _, registry = rig
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        owner = harness.owner_of(docs[0])
        counters = registry.snapshot()["counters"]
        # Gateway->shard ROUTE traffic rides the shard's downlink; the
        # gateway's own accounting must agree byte-for-byte with what the
        # network charged that link (joins are the only downlink traffic
        # here — replication flows on backbone peer links instead).
        link_bytes = counters[f"net.link.{owner}.down.bytes"]
        routed = counters[f'gateway.routed_bytes{{shard="{owner}",direction="to_shard"}}']
        assert routed > 0
        assert routed == link_bytes


class TestGatewayGuards:
    def test_dead_shard_routing_is_refused(self, rig):
        harness, docs, _, _ = rig
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        owner = harness.owner_of(docs[0])
        harness.crash(owner)
        # No detector running: the route still points at the dead shard,
        # so the gateway refuses loudly instead of black-holing the op.
        client.choose("anything", "anything")
        harness.run()
        assert any(e["error"] == "ClusterError" for e in client.errors)
