"""Subscription state through the cluster: routing, replication, failover.

SUBSCRIBE/UNSUBSCRIBE are session-addressed client kinds, so the gateway
routes them like any other op; they ride the replication log, so a
promoted replica filters fan-out exactly where the dead primary left
off — including what each member had explicitly narrowed to.
"""

import pytest

from repro import obs
from repro.cluster import ClusterHarness
from repro.db import Database, MultimediaObjectStore
from repro.document.component import PrimitiveMultimediaComponent
from repro.workloads import consultation_events, generate_record

DOC = "case-0"
HORIZON = 30.0


@pytest.fixture
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


def build_cluster(tmp_path, name, interest_mode="off"):
    db = Database(str(tmp_path / name))
    store = MultimediaObjectStore(db)
    record = generate_record(DOC, sections=2, components_per_section=3, seed=7)
    store.store_document(record)
    harness = ClusterHarness(
        store, num_shards=3, failure_timeout=1.5, interest_mode=interest_mode
    )
    return db, record, harness


def primitives_of(record):
    return sorted(
        path
        for path, node in record.components().items()
        if isinstance(node, PrimitiveMultimediaComponent)
    )


def alt_value(record, path, current):
    """A valid non-hidden presentation label different from *current*."""
    labels = [p.label for p in record.component(path).presentations]
    return next(label for label in labels if label != current and label != "hidden")


class TestGatewayRouting:
    def test_subscribe_routes_to_owning_shard(self, tmp_path, fresh_obs):
        db, record, harness = build_cluster(tmp_path, "route")
        try:
            a = harness.add_client("dr-a")
            b = harness.add_client("dr-b")
            a.join(DOC)
            b.join(DOC)
            harness.run()
            paths = primitives_of(record)
            b.subscribe(paths[:2], replace=True)
            harness.run()
            # The ack came back through the ROUTE path, and the serving
            # shard's registry narrowed.
            assert b.subscriptions == tuple(paths[:2])
            server = harness.serving_server_of(DOC)
            room = server.room(server.room_ids[0])
            assert room.interest.subscriptions(b.session_id) == tuple(paths[:2])
            assert b.errors == []
        finally:
            db.close()

    def test_filtering_works_through_gateway(self, tmp_path, fresh_obs):
        db, record, harness = build_cluster(tmp_path, "filter")
        try:
            a = harness.add_client("dr-a")
            b = harness.add_client("dr-b")
            a.join(DOC)
            b.join(DOC)
            harness.run()
            paths = primitives_of(record)
            watched, ignored = paths[0], paths[-1]
            b.subscribe([watched], replace=True)
            harness.run()
            before = b.updates_received
            # A change b does not watch never reaches b's wire.
            a.choose(ignored, alt_value(record, ignored, a.displayed()[ignored]))
            harness.run()
            assert b.updates_received == before
            # A watched change still does.
            want = alt_value(record, watched, a.displayed()[watched])
            a.choose(watched, want)
            harness.run()
            assert b.updates_received == before + 1
            assert b.displayed()[watched] == want
        finally:
            db.close()


class TestFailover:
    def test_subscriptions_survive_promotion(self, tmp_path, fresh_obs):
        db, record, harness = build_cluster(tmp_path, "failover")
        try:
            a = harness.add_client("dr-a")
            b = harness.add_client("dr-b")
            a.join(DOC)
            b.join(DOC)
            harness.run()
            paths = primitives_of(record)
            watched, ignored = paths[0], paths[-1]
            b.subscribe([watched], replace=True)
            harness.run()

            victim = harness.owner_of(DOC)
            harness.start(until=HORIZON)
            harness.run_until(2.0)
            harness.crash(victim)
            harness.run_until(10.0)
            harness.run()
            assert harness.gateway.failovers  # promotion actually happened

            # The promoted replica inherited the narrowed interest set...
            server = harness.serving_server_of(DOC)
            room = server.room(server.room_ids[0])
            assert room.interest.subscriptions(b.session_id) == (watched,)

            # ...and keeps filtering with it.
            before = b.updates_received
            a.choose(ignored, alt_value(record, ignored, a.displayed()[ignored]))
            harness.run()
            assert b.updates_received == before
            want = alt_value(record, watched, a.displayed()[watched])
            a.choose(watched, want)
            harness.run()
            assert b.displayed()[watched] == want
            assert a.errors == [] and b.errors == []
        finally:
            db.close()

    def test_unsubscribe_replicates_too(self, tmp_path, fresh_obs):
        db, record, harness = build_cluster(tmp_path, "unsub")
        try:
            a = harness.add_client("dr-a")
            b = harness.add_client("dr-b")
            a.join(DOC)
            b.join(DOC)
            harness.run()
            paths = primitives_of(record)
            b.subscribe(paths[:2], replace=True)
            b.unsubscribe([paths[0]])
            harness.run()

            victim = harness.owner_of(DOC)
            harness.start(until=HORIZON)
            harness.run_until(2.0)
            harness.crash(victim)
            harness.run_until(10.0)
            harness.run()

            server = harness.serving_server_of(DOC)
            room = server.room(server.room_ids[0])
            assert room.interest.subscriptions(b.session_id) == (paths[1],)
        finally:
            db.close()

    def test_cpnet_seed_replays_identically(self, tmp_path, fresh_obs):
        db, record, harness = build_cluster(tmp_path, "seeded", interest_mode="cpnet")
        try:
            a = harness.add_client("dr-a")
            a.join(DOC)
            harness.run()
            primary = harness.shards[harness.owner_of(DOC)]
            server = harness.serving_server_of(DOC)
            room = server.room(server.room_ids[0])
            seeded = room.interest.subscriptions(a.session_id)
            assert seeded is not None  # cpnet mode seeds, never implicit ALL

            # Find the standby mirroring this primary and compare.
            for shard in harness.shards.values():
                state = shard.standby_for(primary.node_id)
                if state is not None and state.server.room_ids:
                    mirror = state.server.room(state.server.room_ids[0])
                    assert mirror.interest.subscriptions(a.session_id) == seeded
                    break
            else:
                pytest.fail("no standby replica mirrored the room")
        finally:
            db.close()
