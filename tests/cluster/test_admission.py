"""Admission control: lanes, deferral, shedding, and overload safety.

The contract under test: control-plane traffic is *never* shed (a shed
heartbeat would fake a death), JOINs defer FIFO before data ops drop,
the shed floor keeps the per-session dedup fence gap-free, bounced
clients retry off the typed ``RETRY_AFTER`` hint, and ``admission=None``
leaves the cluster exactly as it was.
"""

import pytest

from repro import obs
from repro.cluster import AdmissionConfig, ClusterConfig, ClusterHarness, lane_of
from repro.cluster.admission import (
    ACCEPT,
    DEFER,
    LANE_CONTROL,
    LANE_DATA,
    LANE_JOIN,
    SHED,
    AdmissionController,
    retry_after_body,
)
from repro.cluster.shard import ServiceQueue
from repro.db import Database, MultimediaObjectStore
from repro.net.simclock import SimClock
from repro.server.protocol import MessageKind
from repro.util.backoff import seeded_jitter
from repro.workloads import consultation_events, generate_record


@pytest.fixture(autouse=True)
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


def build_store(tmp_path, name, docs=("case-0",)):
    db = Database(str(tmp_path / name))
    store = MultimediaObjectStore(db)
    records = {}
    for index, doc_id in enumerate(docs):
        record = generate_record(
            doc_id, sections=2, components_per_section=3, seed=index
        )
        records[doc_id] = record
        store.store_document(record)
    return store, records


def make_controller(rate=1.0, resume=None, **cfg):
    """A controller on a real rated ServiceQueue and its own clock."""
    clock = SimClock()
    queue = ServiceQueue(clock, rate=rate)
    resumed = []
    controller = AdmissionController(
        "shard-t",
        queue,
        AdmissionConfig(**cfg),
        resume if resume is not None else (lambda item, at: resumed.append(item)),
    )
    queue.on_drain = controller.pump
    return clock, queue, controller, resumed


def fill(queue, n):
    for _ in range(n):
        queue.submit(lambda: None)


class TestLanes:
    def test_lane_assignment(self):
        assert lane_of(MessageKind.JOIN) == LANE_JOIN
        for kind in (
            MessageKind.CHOICE,
            MessageKind.OPERATION,
            MessageKind.ANNOTATE,
            MessageKind.FREEZE,
            MessageKind.RELEASE,
            MessageKind.FETCH_PAYLOAD,
            MessageKind.SUBSCRIBE,
            MessageKind.UNSUBSCRIBE,
        ):
            assert lane_of(kind) == LANE_DATA
        # Everything else is control plane — including LEAVE (dropping a
        # leave leaks the session) and the cluster internals.
        for kind in (
            MessageKind.HEARTBEAT,
            MessageKind.PROMOTE,
            MessageKind.ACK,
            MessageKind.LEAVE,
            MessageKind.ROUTE,
            MessageKind.MONITOR,
        ):
            assert lane_of(kind) == LANE_CONTROL

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(depth_defer=0)
        with pytest.raises(ValueError):
            AdmissionConfig(depth_defer=8, depth_shed=4)
        with pytest.raises(ValueError):
            AdmissionConfig(defer_limit=0)
        with pytest.raises(ValueError):
            AdmissionConfig(retry_after_s=0)
        with pytest.raises(ValueError):
            AdmissionConfig(wait_defer_s=-1.0)


class TestController:
    def test_control_always_admitted_at_any_depth(self):
        clock, queue, controller, _ = make_controller(depth_defer=1, depth_shed=2)
        fill(queue, 50)  # far past every threshold
        for kind in (
            MessageKind.HEARTBEAT,
            MessageKind.PROMOTE,
            MessageKind.ACK,
            MessageKind.LEAVE,
        ):
            assert controller.admit(kind).action == ACCEPT
        assert controller.shed == 0
        assert controller.shed_by_lane.get(LANE_CONTROL, 0) == 0

    def test_join_defers_then_sheds_past_defer_limit(self):
        clock, queue, controller, _ = make_controller(
            depth_defer=2, depth_shed=100, defer_limit=2
        )
        assert controller.admit(MessageKind.JOIN).action == ACCEPT
        fill(queue, 3)
        first = controller.admit(MessageKind.JOIN)
        assert first.action == DEFER
        assert first.retry_after_s > 0
        controller.park("j1")
        controller.park("j2")
        bounced = controller.admit(MessageKind.JOIN)
        assert bounced.action == SHED  # the parking lot is bounded too

    def test_data_sheds_past_depth_with_drain_hint(self):
        clock, queue, controller, _ = make_controller(
            rate=2.0, depth_defer=1, depth_shed=3, retry_after_s=0.25
        )
        fill(queue, 4)
        decision = controller.admit(
            MessageKind.CHOICE, session_id="s", op_seq=1
        )
        assert decision.action == SHED
        # The hint is the deterministic drain time back under the defer
        # threshold: (depth - threshold + 1) / rate = 4/2 = 2 s.
        assert decision.retry_after_s == pytest.approx(2.0)

    def test_pump_resumes_fifo_as_queue_drains(self):
        clock, queue, controller, resumed = make_controller(
            rate=10.0, depth_defer=1, depth_shed=100
        )
        fill(queue, 1)
        for i in range(4):
            assert controller.admit(MessageKind.JOIN).action == DEFER
            controller.park(f"j{i}")
        assert controller.parked_count == 4
        clock.run()
        # Every resume re-opened capacity without re-submitting (the test
        # resume callback doesn't enqueue), so one drain pumps them all.
        assert resumed == ["j0", "j1", "j2", "j3"]
        assert controller.parked_count == 0
        assert controller.resumed == 4

    def test_wait_watermark_trips_independently_of_depth(self):
        clock, queue, controller, _ = make_controller(
            rate=0.5, depth_defer=100, depth_shed=200, wait_defer_s=1.0
        )
        fill(queue, 2)  # depth 2 << 100, but backlog is 2/0.5 = 4 s
        assert queue.wait_s > 1.0
        assert controller.admit(MessageKind.JOIN).action == DEFER


class TestShedFloor:
    def test_later_seqs_shed_until_floor_returns(self):
        clock, queue, controller, _ = make_controller(
            rate=1.0, depth_defer=1, depth_shed=2
        )
        fill(queue, 3)
        assert (
            controller.admit(MessageKind.CHOICE, session_id="s", op_seq=5).action
            == SHED
        )
        assert controller.shed_floor("s") == 5
        clock.run()  # fully drain: plenty of capacity now
        assert queue.pending == 0
        # op 6 must still shed — admitting it would advance the dedup
        # fence past the hole and the retried op 5 would look duplicate.
        assert (
            controller.admit(MessageKind.CHOICE, session_id="s", op_seq=6).action
            == SHED
        )
        # the floor op returns: accepted, hole plugged, fence gap-free
        assert (
            controller.admit(MessageKind.CHOICE, session_id="s", op_seq=5).action
            == ACCEPT
        )
        assert controller.shed_floor("s") is None
        assert (
            controller.admit(MessageKind.CHOICE, session_id="s", op_seq=6).action
            == ACCEPT
        )

    def test_floor_is_per_session_and_forgettable(self):
        clock, queue, controller, _ = make_controller(
            rate=1.0, depth_defer=1, depth_shed=2
        )
        fill(queue, 3)
        controller.admit(MessageKind.CHOICE, session_id="a", op_seq=3)
        clock.run()
        assert (
            controller.admit(MessageKind.CHOICE, session_id="b", op_seq=9).action
            == ACCEPT
        )
        controller.forget_session("a")
        assert (
            controller.admit(MessageKind.CHOICE, session_id="a", op_seq=4).action
            == ACCEPT
        )


class TestRetryAfterBody:
    def test_join_bounce_carries_doc_identity(self):
        body = retry_after_body(
            MessageKind.JOIN,
            {"viewer_id": "v", "doc_id": "case-0"},
            0.5,
            "shard-1",
        )
        assert body["kind"] == MessageKind.JOIN
        assert body["doc_id"] == "case-0"
        assert body["after_s"] == 0.5
        assert body["node"] == "shard-1"
        assert "data" not in body  # a JOIN retries by doc, not by echo

    def test_seqless_read_echoes_whole_payload(self):
        payload = {"session_id": "s", "component": "c", "value": "v"}
        body = retry_after_body(MessageKind.FETCH_PAYLOAD, payload, 0.25, "gw-1")
        assert body["data"] == payload  # verbatim re-dispatch material

    def test_parked_op_retries_by_op_seq(self):
        body = retry_after_body(
            MessageKind.CHOICE, {"session_id": "s", "op_seq": 7}, 0.25, "shard-2"
        )
        assert body["op_seq"] == 7
        assert "data" not in body  # the client's own op log replays it


class TestRouteRetryBackoff:
    """Satellite: capped exponential backoff + deterministic jitter."""

    def test_delay_is_capped_and_jittered(self, tmp_path):
        store, _ = build_store(tmp_path, "backoff")
        harness = ClusterHarness(store, ClusterConfig(shards=2))
        gw = harness.gateway
        uncapped = [gw._route_retry_delay("n-1", "choice", a) for a in range(10)]
        # jitter adds at most +50% on top of the capped base
        assert max(uncapped) <= gw.route_retry_max_s * 1.5
        # early attempts still grow exponentially
        assert uncapped[1] > uncapped[0]

    def test_delay_is_deterministic_but_decorrelated(self, tmp_path):
        store, _ = build_store(tmp_path, "jitter")
        harness = ClusterHarness(store, ClusterConfig(shards=2))
        gw = harness.gateway
        a = gw._route_retry_delay("n-1", "choice", 3)
        assert a == gw._route_retry_delay("n-1", "choice", 3)  # seeded, stable
        # different senders / attempts retry at different moments — no
        # synchronized stampede after a failover
        assert a != gw._route_retry_delay("n-2", "choice", 3)
        assert a != gw._route_retry_delay("n-1", "choice", 4)

    def test_seeded_jitter_range(self):
        values = [seeded_jitter("x", i) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) > 100  # actually spreads


def saturated_cluster(tmp_path, name, *, admission, clients=8, service_rate=4.0):
    """A tiered cluster with one slow room being flooded by joins+ops."""
    store, records = build_store(tmp_path, name)
    config = ClusterConfig(
        shards=2,
        gateways=2,
        service_rate=service_rate,
        failure_timeout=2.0,
        admission=admission,
    )
    harness = ClusterHarness(store, config)
    viewers = [harness.add_client(f"ad-{i}") for i in range(clients)]
    clock = harness.clock
    for i, client in enumerate(viewers):
        clock.schedule_at(0.01 * i, lambda c=client: c.join("case-0"))
    events = consultation_events(records["case-0"], num_events=12, seed=7)

    def chatter():
        speaker = viewers[0]
        for i, (path, value) in enumerate(events):
            clock.schedule_at(
                1.0 + 0.05 * i,
                lambda p=path, v=value: (
                    speaker.choose(p, v) if speaker.session_id else None
                ),
            )

    chatter()
    return harness, viewers


class TestOverloadIntegration:
    def test_control_plane_survives_saturation_without_failover(self, tmp_path):
        """Satellite: saturated queues must not fake a death.

        Heartbeats, PROMOTE and ACK ride the control lane past full
        queues: zero control-lane sheds, zero deferrals of control
        kinds, and — the observable stake — no spurious failover.
        """
        harness, viewers = saturated_cluster(
            tmp_path,
            "ctrl",
            admission=AdmissionConfig(depth_defer=1, depth_shed=2, defer_limit=64),
            service_rate=2.0,  # brutally slow: everything queues
        )
        harness.start(until=20.0)
        harness.run()
        totals_control_shed = 0
        for node in list(harness.shards.values()) + list(harness.gateways.values()):
            if node.admission is None:
                continue
            stats = node.admission.stats()
            totals_control_shed += stats["shed_by_lane"].get(LANE_CONTROL, 0)
        assert totals_control_shed == 0
        assert harness.failovers == []
        assert harness.gateway_failovers == []
        # overload really happened — this was not a trivial pass
        assert any(
            s.admission.deferred > 0 or s.admission.shed > 0
            for s in harness.shards.values()
        )

    def test_bounced_joins_rejoin_and_land(self, tmp_path):
        """RETRY_AFTER joins re-enter via the jittered rejoin loop."""
        harness, viewers = saturated_cluster(
            tmp_path,
            "rejoin",
            admission=AdmissionConfig(
                depth_defer=1, depth_shed=4, defer_limit=1, retry_after_s=0.25
            ),
            service_rate=4.0,
        )
        harness.run()
        bounced = [c for c in viewers if c.retry_afters]
        assert bounced, "defer_limit=1 under a join flood must bounce someone"
        assert all(c.session_id is not None for c in viewers), (
            "every bounced client must eventually rejoin"
        )
        assert not any(c.errors for c in viewers)

    def test_deferred_joins_resume_fifo_preserving_arrival_order(self, tmp_path):
        """Satellite: saturation keeps the service queue order FIFO."""
        harness, viewers = saturated_cluster(
            tmp_path,
            "fifo",
            admission=AdmissionConfig(depth_defer=1, depth_shed=64, defer_limit=64),
            service_rate=4.0,
        )
        harness.run()
        # Clients joined in schedule order: their sessions must have been
        # created in the same order even though most joins were deferred.
        joined = sorted(
            (c.join_latency + 0.01 * i, c.viewer_id)
            for i, c in enumerate(viewers)
            if c.join_latency is not None
        )
        assert len(joined) == len(viewers)
        assert [v for _, v in joined] == [c.viewer_id for c in viewers]
        total_deferred = sum(s.admission.deferred for s in harness.shards.values())
        assert total_deferred > 0
        assert all(
            s.admission.parked_count == 0 for s in harness.shards.values()
        )

    def test_departed_client_deferred_join_dropped_with_zero_residue(self, tmp_path):
        """Satellite: a parked JOIN whose client died never materializes."""
        store, _ = build_store(tmp_path, "residue")
        config = ClusterConfig(
            shards=1,
            gateways=1,
            service_rate=2.0,
            admission=AdmissionConfig(depth_defer=1, depth_shed=64, defer_limit=64),
        )
        harness = ClusterHarness(store, config)
        stayer = harness.add_client("stay")
        leaver = harness.add_client("gone")
        clock = harness.clock
        clock.schedule_at(0.0, lambda: stayer.join("case-0"))
        clock.schedule_at(0.01, lambda: leaver.join("case-0"))
        # The leaver vanishes while its JOIN is still parked behind the
        # 2 ops/s queue (the stayer's join alone takes 0.5 s to serve).
        clock.schedule_at(0.1, lambda: harness.network.detach_client(leaver.node_id))
        harness.run()
        shard = next(iter(harness.shards.values()))
        assert shard.admission.dropped_dead == 1
        assert shard.admission.parked_count == 0
        assert leaver.session_id is None
        # zero residue: no session, no room membership for the departed
        viewers_in_rooms = {
            server.session(sid).viewer_id
            for server in shard.serving_servers()
            for sid in server.session_ids
        }
        assert "gone" not in viewers_in_rooms
        assert "stay" in viewers_in_rooms

    def test_shed_data_ops_replay_exactly_once(self, tmp_path):
        """Shed choices come back via the op-log retry and apply once."""
        store, records = build_store(tmp_path, "sheddata")
        config = ClusterConfig(
            shards=1,
            gateways=1,
            service_rate=3.0,
            admission=AdmissionConfig(
                depth_defer=1, depth_shed=2, defer_limit=64, retry_after_s=0.25
            ),
        )
        harness = ClusterHarness(store, config)
        a = harness.add_client("sd-0")
        b = harness.add_client("sd-1")
        a.join("case-0")
        b.join("case-0")
        harness.run()
        events = consultation_events(records["case-0"], num_events=10, seed=3)
        for path, value in events:
            a.choose(path, value)  # a burst far past depth_shed=2
        harness.run()
        shard = next(iter(harness.shards.values()))
        assert shard.admission.shed_by_lane.get(LANE_DATA, 0) > 0
        assert a.retry_afters, "the burst must have bounced something"
        assert not a.errors and not b.errors
        # exactly-once effect: both members display the final scripted
        # state — nothing lost to the shed, nothing double-applied
        assert a.displayed() == b.displayed()
        final = dict(events[-1:])
        for path, value in final.items():
            assert a.displayed()[path] == value


class TestAdmissionOff:
    def test_admission_none_builds_no_controllers(self, tmp_path):
        store, _ = build_store(tmp_path, "off")
        harness = ClusterHarness(store, ClusterConfig(shards=2, gateways=2))
        assert all(s.admission is None for s in harness.shards.values())
        assert all(g.admission is None for g in harness.gateways.values())

    def test_admission_none_is_bit_reproducible(self, tmp_path):
        """The off path stays deterministic — the byte-identity anchor.

        ``admission=None`` constructs no controller, installs no drain
        hook and sends no RETRY_AFTER (verified against the metrics
        registry), so the PR 8 cluster is untouched by construction;
        this pins the observable half: two identical runs, identical
        bytes, and zero admission metrics emitted.
        """
        totals = []
        for run in range(2):
            registry = obs.MetricsRegistry()
            with obs.use_registry(registry):
                store, records = build_store(tmp_path, f"bit-{run}")
                harness = ClusterHarness(store, ClusterConfig(shards=2, gateways=2))
                room = [harness.add_client(f"bit-{j}") for j in range(2)]
                for client in room:
                    client.join("case-0")
                harness.run()
                for path, value in consultation_events(
                    records["case-0"], num_events=6, seed=5
                ):
                    room[0].choose(path, value)
                harness.run()
                snapshot = registry.snapshot()
                assert not any(
                    name.startswith("admission.")
                    for family in ("counters", "gauges")
                    for name in snapshot.get(family, {})
                ), "admission=None must emit no admission metrics"
                assert room[0].retry_afters == []
                totals.append(
                    (
                        harness.network.stats.messages,
                        harness.network.stats.bytes_total,
                        {c.viewer_id: c.displayed() for c in room},
                    )
                )
        assert totals[0] == totals[1]
