"""Failpoint-driven crashes in the replication path.

The ``cluster.replicate`` / ``cluster.ack`` failpoints fail-stop a
primary at the worst moments a real process can die: immediately before
a REPLICATE batch leaves (the replica misses the tail), immediately
after (the batch is on the wire but the ship was never recorded), and on
ack apply. The cluster runs over the reliable transport, so choices in
flight to the corpse surface as ``DeliveryFailed`` and the gateway
re-routes them to the promoted shard once failover completes.

``crash_after`` and the ack crash must end byte-identical to the
crash-free control: everything the clients saw acked had reached the
replica. ``crash_before`` is the honest exception — asynchronous
replication has a one-op durability window between the client ack and
the ship, and the test pins its size to exactly that one op.
"""

import pytest

from repro import obs
from repro.chaos import use_failpoints
from repro.cluster import ClusterHarness
from repro.db import Database, MultimediaObjectStore
from repro.workloads import consultation_events, generate_record

DOCS = ("case-0", "case-1", "case-2")
EVENTS = 6
HORIZON = 30.0


@pytest.fixture
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


def drive(tmp_path, name, arm=None):
    """One 3-room conference; *arm(fp, victim)* arms failpoints mid-run."""
    with use_failpoints() as fp:
        db = Database(str(tmp_path / name))
        store = MultimediaObjectStore(db)
        records = {}
        for index, doc_id in enumerate(DOCS):
            record = generate_record(
                doc_id, sections=2, components_per_section=3, seed=index
            )
            records[doc_id] = record
            store.store_document(record)
        harness = ClusterHarness(
            store, num_shards=3, failure_timeout=1.5, reliability=True
        )
        clients = {}
        for index, doc_id in enumerate(DOCS):
            pair = [harness.add_client(f"cp-{index}-{j}") for j in range(2)]
            for client in pair:
                client.join(doc_id)
            clients[doc_id] = pair
        harness.run()
        streams = {
            doc_id: consultation_events(records[doc_id], num_events=EVENTS, seed=21 + i)
            for i, doc_id in enumerate(DOCS)
        }
        for doc_id, events in streams.items():
            for path, value in events[: EVENTS // 2]:
                clients[doc_id][0].choose(path, value)
        harness.run()
        harness.start(until=HORIZON)
        victim = harness.owner_of("case-0")
        owners = {doc_id: harness.owner_of(doc_id) for doc_id in DOCS}
        if arm is not None:
            arm(fp, victim)
        for doc_id, events in streams.items():
            for path, value in events[EVENTS // 2 :]:
                clients[doc_id][1].choose(path, value)
        harness.run()
        out = {
            "harness": harness,
            "fp": fp,
            "victim": victim,
            "owners": owners,  # pre-crash ring ownership
            "final": {
                client.viewer_id: client.displayed()
                for pair in clients.values()
                for client in pair
            },
            "final_by_room": {
                doc_id: [client.displayed() for client in pair]
                for doc_id, pair in clients.items()
            },
            "errors": [
                e for pair in clients.values() for c in pair for e in c.errors
            ],
        }
        db.close()
        return out


def assert_failed_over(crashed):
    harness = crashed["harness"]
    assert not harness.shards[crashed["victim"]].alive
    assert crashed["victim"] in harness.gateway.dead_shards
    assert len(harness.gateway.failovers) == 1
    assert crashed["errors"] == []


class TestReplicationCrashPoints:
    def test_crash_points_sit_on_the_hot_path(self, tmp_path, fresh_obs):
        control = drive(tmp_path, "control")
        fp = control["fp"]
        assert fp.hits.get("cluster.replicate", 0) > 0
        assert fp.hits.get("cluster.ack", 0) > 0
        assert fp.fired == []  # nothing armed: pure pass-through

    def test_crash_after_ship_loses_nothing_acked(self, tmp_path, fresh_obs):
        control = drive(tmp_path, "control")
        crashed = drive(
            tmp_path,
            "crash-after",
            arm=lambda fp, victim: fp.arm(
                "cluster.replicate", mode="crash_after", match={"shard": victim}
            ),
        )
        assert crashed["fp"].fired == [("cluster.replicate", "crash_after")]
        assert_failed_over(crashed)
        # The batch left the wire before death: nothing acked was lost.
        assert crashed["final"] == control["final"]

    def test_crash_on_ack_apply_loses_nothing_acked(self, tmp_path, fresh_obs):
        control = drive(tmp_path, "control")
        crashed = drive(
            tmp_path,
            "crash-ack",
            arm=lambda fp, victim: fp.arm(
                "cluster.ack", mode="crash", match={"shard": victim}
            ),
        )
        assert crashed["fp"].fired == [("cluster.ack", "crash")]
        assert_failed_over(crashed)
        assert crashed["final"] == control["final"]

    def test_crash_before_ship_has_a_one_op_durability_window(
        self, tmp_path, fresh_obs
    ):
        control = drive(tmp_path, "control")
        crashed = drive(
            tmp_path,
            "crash-before",
            arm=lambda fp, victim: fp.arm(
                "cluster.replicate", mode="crash_before", match={"shard": victim}
            ),
        )
        assert crashed["fp"].fired == [("cluster.replicate", "crash_before")]
        assert_failed_over(crashed)
        # Rooms not owned (pre-crash) by the victim are untouched.
        owners = crashed["owners"]
        lost = 0
        for doc_id in DOCS:
            if owners[doc_id] != crashed["victim"]:
                assert (
                    crashed["final_by_room"][doc_id]
                    == control["final_by_room"][doc_id]
                )
                continue
            # In the victim's rooms the clients still agree with each
            # other — the system converges internally — but the op whose
            # ship the crash pre-empted was acked without ever reaching
            # the replica. That window is exactly one op wide.
            a, b = crashed["final_by_room"][doc_id]
            assert a == b
            want = control["final_by_room"][doc_id][0]
            divergent = {k for k in want if a.get(k) != want[k]}
            if divergent:
                lost += 1
                assert len(divergent) <= 2  # one choice + its reconfig fallout
        assert lost <= 1  # at most the single pre-empted op
