"""Unit tests for the consistent-hash ring."""

import pytest

from repro.cluster import HashRing, ring_hash
from repro.errors import ClusterError

KEYS = [f"case-{i}" for i in range(400)]
NODES = ("shard-1", "shard-2", "shard-3", "shard-4")


class TestDeterminism:
    def test_ring_hash_is_stable(self):
        # SHA-1-based, not Python's salted hash(): positions must be the
        # same in every process or two gateways would disagree on owners.
        assert ring_hash("case-0") == ring_hash("case-0")
        assert ring_hash("case-0") != ring_hash("case-1")

    def test_identical_mapping_across_instances(self):
        first = HashRing(NODES)
        second = HashRing(NODES)
        assert first.assignment(KEYS) == second.assignment(KEYS)

    def test_insertion_order_is_irrelevant(self):
        forward = HashRing(NODES)
        backward = HashRing(tuple(reversed(NODES)))
        assert forward.assignment(KEYS) == backward.assignment(KEYS)


class TestBoundedMovement:
    def test_add_node_moves_roughly_its_share(self):
        ring = HashRing(NODES[:3])
        before = ring.assignment(KEYS)
        ring.add_node("shard-4")
        after = ring.assignment(KEYS)
        moved = sum(1 for key in KEYS if before[key] != after[key])
        # The new node should take about 1/4 of the keys; far less than a
        # rehash-everything scheme (which would move ~3/4 of them).
        assert 0 < moved < len(KEYS) / 2
        # Every moved key moved *to* the new node, nowhere else.
        assert all(after[key] == "shard-4" for key in KEYS if before[key] != after[key])

    def test_remove_node_moves_only_its_keys(self):
        ring = HashRing(NODES)
        before = ring.assignment(KEYS)
        ring.remove_node("shard-2")
        after = ring.assignment(KEYS)
        for key in KEYS:
            if before[key] == "shard-2":
                assert after[key] != "shard-2"
            else:
                assert after[key] == before[key]  # untouched keys stay put

    def test_removal_promotes_the_old_second_owner(self):
        # The invariant failover relies on: the ring's new owner of a dead
        # node's key is exactly the old preference-list runner-up.
        ring = HashRing(NODES)
        expected = {
            key: ring.owners(key, 2)[1]
            for key in KEYS
            if ring.owner(key) == "shard-3"
        }
        ring.remove_node("shard-3")
        for key, runner_up in expected.items():
            assert ring.owner(key) == runner_up


class TestPreferenceList:
    def test_owners_are_distinct(self):
        ring = HashRing(NODES)
        for key in KEYS[:50]:
            owners = ring.owners(key, 3)
            assert len(owners) == len(set(owners)) == 3

    def test_owners_clipped_to_ring_size(self):
        ring = HashRing(NODES[:2])
        assert len(ring.owners("case-0", 5)) == 2

    def test_every_node_owns_something(self):
        ring = HashRing(NODES)
        assert set(ring.assignment(KEYS).values()) == set(NODES)


class TestErrors:
    def test_duplicate_node_rejected(self):
        ring = HashRing(("a",))
        with pytest.raises(ClusterError, match="already on the ring"):
            ring.add_node("a")

    def test_unknown_node_rejected(self):
        ring = HashRing(("a",))
        with pytest.raises(ClusterError, match="not on the ring"):
            ring.remove_node("b")

    def test_empty_ring_has_no_owner(self):
        with pytest.raises(ClusterError, match="no nodes"):
            HashRing().owner("case-0")

    def test_bad_vnodes(self):
        with pytest.raises(ClusterError, match="vnodes"):
            HashRing(vnodes=0)

    def test_bad_count(self):
        with pytest.raises(ClusterError, match="count"):
            HashRing(("a",)).owners("k", 0)

    def test_membership_introspection(self):
        ring = HashRing(("a", "b"))
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2
        assert ring.nodes == ("a", "b")
