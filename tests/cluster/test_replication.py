"""Unit tests for op-log shipping and replica replay."""

import pytest

from repro.cluster import LogEntry, ReplicaState, ShipLog
from repro.db import Database, MultimediaObjectStore
from repro.errors import ClusterError
from repro.server import InteractionServer
from repro.workloads import consultation_events, generate_record


class TestShipLog:
    def test_sequences_are_contiguous(self):
        log = ShipLog()
        first = log.append(0.0, "doc", "join", {})
        second = log.append(0.1, "doc", "choice", {})
        assert (first.seq, second.seq) == (1, 2)

    def test_ack_trims_at_watermark(self):
        log = ShipLog()
        for i in range(5):
            log.append(float(i), "doc", "choice", {"i": i})
        log.mark_shipped(5)
        log.mark_acked(3)
        assert log.acked_seq == 3
        assert log.pending == 2
        assert [e.seq for e in log.unacked()] == [4, 5]

    def test_lag_is_shipped_minus_acked(self):
        log = ShipLog()
        for i in range(4):
            log.append(float(i), "doc", "choice", {})
        log.mark_shipped(4)
        assert log.lag == 4
        log.mark_acked(4)
        assert log.lag == 0

    def test_stale_ack_does_not_regress(self):
        log = ShipLog()
        log.append(0.0, "doc", "join", {})
        log.mark_shipped(1)
        log.mark_acked(1)
        log.mark_acked(0)  # duplicate/stale ack from a reordered batch
        assert log.acked_seq == 1

    def test_unshipped_tracks_the_tail(self):
        log = ShipLog()
        log.append(0.0, "doc", "join", {})
        log.append(0.1, "doc", "choice", {})
        log.mark_shipped(1)
        assert [e.seq for e in log.unshipped()] == [2]


class TestLogEntryWire:
    def test_round_trip(self):
        entry = LogEntry(seq=3, at=1.5, room_key="case-0", op="choice", data={"a": 1})
        assert LogEntry.from_wire(entry.to_wire()) == entry


@pytest.fixture
def store(tmp_path):
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    yield store
    db.close()


def record_for(store, doc_id="case-0", seed=0):
    record = generate_record(doc_id, sections=2, components_per_section=3, seed=seed)
    store.store_document(record)
    return record


class TestReplicaReplay:
    def _entries(self, record, num_events=5):
        """A join + scripted choices, as a primary would log them."""
        entries = [
            LogEntry(
                seq=1, at=0.0, room_key=record.doc_id, op="join",
                data={
                    "session_id": "primary:session-1",
                    "room_id": "primary:room-1",
                    "viewer_id": "lee",
                    "node_id": "client-lee",
                },
            )
        ]
        for index, (path, value) in enumerate(
            consultation_events(record, num_events=num_events, seed=5)
        ):
            entries.append(
                LogEntry(
                    seq=index + 2, at=0.1 * index, room_key=record.doc_id,
                    op="choice",
                    data={
                        "session_id": "primary:session-1",
                        "component": path, "value": value, "scope": "shared",
                    },
                )
            )
        return entries

    def test_replay_matches_directly_driven_server(self, store):
        record = record_for(store)
        entries = self._entries(record)

        # Ground truth: the same ops applied straight to a server.
        direct = InteractionServer(store, node_id="primary")
        direct.open_room(record.doc_id, room_id="primary:room-1")
        direct.connect_session(
            "lee", node_id="client-lee", session_id="primary:session-1"
        )
        direct.join_room("primary:session-1", record.doc_id)
        for entry in entries[1:]:
            direct.handle_choice(
                entry.data["session_id"], entry.data["component"],
                entry.data["value"], scope=entry.data["scope"],
            )

        state = ReplicaState("primary", store)
        for entry in entries:
            state.offer(entry)
        assert state.applied_seq == len(entries)

        replica_room = state.server.room(state.server.room_ids[0])
        direct_room = direct.room(direct.room_ids[0])
        assert replica_room.room_id == direct_room.room_id
        assert (
            replica_room.presentation_for("lee").outcome
            == direct_room.presentation_for("lee").outcome
        )

    def test_out_of_order_entries_are_buffered(self, store):
        record = record_for(store)
        first, second, third = self._entries(record, num_events=2)
        state = ReplicaState("primary", store)
        assert state.offer(third) == 0      # gap: buffered, nothing applied
        assert state.applied_seq == 0
        assert state.offer(first) == 1      # applies just the join
        assert state.offer(second) == 2     # fills the gap, drains the buffer
        assert state.applied_seq == 3

    def test_duplicates_are_ignored(self, store):
        record = record_for(store)
        entries = self._entries(record, num_events=2)
        state = ReplicaState("primary", store)
        for entry in entries:
            state.offer(entry)
        applied = state.applied_seq
        assert state.offer(entries[1]) == 0  # redelivered batch fragment
        assert state.applied_seq == applied

    def test_applied_log_records_replay_order(self, store):
        record = record_for(store)
        entries = self._entries(record, num_events=3)
        state = ReplicaState("primary", store)
        for entry in reversed(entries):  # worst-case arrival order
            state.offer(entry)
        assert [e.seq for e in state.applied_log] == [e.seq for e in entries]

    def test_promote_drops_gapped_tail(self, store):
        record = record_for(store)
        entries = self._entries(record, num_events=3)
        gaps = []
        state = ReplicaState(
            "primary", store, on_gap=lambda seq, dropped: gaps.append((seq, dropped))
        )
        state.offer(entries[0])
        state.offer(entries[1])
        state.offer(entries[3])  # seq 3 never arrives
        server = state.promote()
        assert state.promoted
        assert gaps == [(2, 1)]
        # The acked prefix survived: session exists, un-acked tail dropped.
        assert server.has_session("primary:session-1")

    def test_unknown_op_rejected(self, store):
        record_for(store)
        state = ReplicaState("primary", store)
        with pytest.raises(ClusterError, match="unknown replicated op"):
            state.offer(
                LogEntry(seq=1, at=0.0, room_key="case-0", op="compact", data={})
            )
