"""Gateway robustness: duplicate/stale JOIN_ACKs, zombie fencing, retries.

The gateway learns its session→shard routing table by sniffing
``JOIN_ACK`` envelopes. Under the chaos layer those envelopes can be
duplicated or arrive late — including *after* the shard that sent them
has been declared dead. These tests pin the properties that keep the
routing table sane: sniffing is idempotent, dead shards are fenced, and
a temporarily unroutable op is parked and retried rather than lost.
"""

import pytest

from repro import obs
from repro.chaos import FaultPlan
from repro.cluster import ClusterHarness
from repro.db import Database, MultimediaObjectStore
from repro.net.message import Message
from repro.server.protocol import MessageKind
from repro.workloads import consultation_events, generate_record


@pytest.fixture
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


def build(tmp_path, name="db", num_docs=3, **harness_kwargs):
    db = Database(str(tmp_path / name))
    store = MultimediaObjectStore(db)
    docs = [f"case-{i}" for i in range(num_docs)]
    records = {}
    for index, doc_id in enumerate(docs):
        record = generate_record(
            doc_id, sections=2, components_per_section=3, seed=index
        )
        records[doc_id] = record
        store.store_document(record)
    harness = ClusterHarness(store, num_shards=3, **harness_kwargs)
    return harness, docs, records, db


def join_ack_envelope(harness, client, doc_id):
    """Reconstruct the ROUTE/JOIN_ACK wrapper the owner shard sent."""
    owner = harness.gateway.shard_of_session(client.session_id)
    inner = {
        "session_id": client.session_id,
        "doc_id": doc_id,
        "room_id": "forged-room",
    }
    wrapper = {
        "to": client.node_id,
        "kind": MessageKind.JOIN_ACK,
        "payload": inner,
        "size": 64,
    }
    return owner, Message(
        sender=owner, recipient=harness.gateway.node_id,
        kind=MessageKind.ROUTE, payload=wrapper, size_bytes=64,
    )


class TestJoinAckSniffing:
    def test_duplicated_join_ack_is_idempotent(self, tmp_path, fresh_obs):
        harness, docs, _, db = build(tmp_path)
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        owner = harness.gateway.shard_of_session(client.session_id)
        assert owner == harness.owner_of(docs[0])
        # A duplicated JOIN_ACK envelope arrives from the live owner.
        _, dup = join_ack_envelope(harness, client, docs[0])
        harness.gateway.receive(dup)
        harness.run()
        assert harness.gateway.shard_of_session(client.session_id) == owner
        assert client.errors == []
        db.close()

    def test_stale_join_ack_from_dead_shard_is_fenced(self, tmp_path, fresh_obs):
        registry, log = fresh_obs
        harness, docs, _, db = build(tmp_path, failure_timeout=1.0)
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        owner, stale = join_ack_envelope(harness, client, docs[0])
        # The owner dies and the detector declares it; the session is
        # re-homed to the ring's new owner of the document.
        harness.start(until=10.0)
        harness.schedule_crash(owner, at=1.0)
        harness.run()
        assert owner in harness.gateway.dead_shards
        rehomed = harness.gateway.shard_of_session(client.session_id)
        assert rehomed is not None and rehomed != owner
        # A JOIN_ACK the dead shard sent before dying limps in late. It
        # must NOT re-point the session at the corpse.
        harness.gateway.receive(stale)
        harness.run()
        assert harness.gateway.shard_of_session(client.session_id) == rehomed
        counters = registry.snapshot()["counters"]
        assert counters["gateway.zombies_fenced"] >= 1
        assert any(e.name == "gateway.zombie_fenced" for e in log.events)
        db.close()

    def test_zombie_heartbeat_cannot_resurrect_a_dead_shard(
        self, tmp_path, fresh_obs
    ):
        harness, docs, _, db = build(tmp_path, failure_timeout=1.0)
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        owner = harness.owner_of(docs[0])
        harness.start(until=8.0)
        harness.schedule_crash(owner, at=1.0)
        harness.run()
        assert owner in harness.gateway.dead_shards
        # A partitioned twin of the shard beats again: fenced, not revived.
        beat = Message(
            sender=owner, recipient=harness.gateway.node_id,
            kind=MessageKind.HEARTBEAT,
            payload={"node": owner, "at": harness.clock.now}, size_bytes=16,
        )
        harness.gateway.receive(beat)
        assert owner in harness.gateway.dead_shards
        assert owner not in harness.gateway.live_shards
        assert owner not in harness.gateway.detector.watched
        db.close()


class TestChaosJoins:
    def test_joins_survive_duplicated_and_reordered_route_envelopes(
        self, tmp_path, fresh_obs
    ):
        # End-to-end version of the sniffing tests: every ROUTE envelope
        # (JOIN in, JOIN_ACK out) is subject to duplication/reordering.
        plan = FaultPlan(
            seed=9, dup_rate=0.3, reorder_rate=0.3, kinds=(MessageKind.ROUTE,)
        )
        harness, docs, records, db = build(
            tmp_path, reliability=True, plan=plan
        )
        clients = []
        for index, doc_id in enumerate(docs):
            client = harness.add_client(f"viewer-{index}")
            client.join(doc_id)
            clients.append(client)
        harness.run()
        assert sum(harness.network.injected_counts().values()) > 0
        for client, doc_id in zip(clients, docs):
            assert client.errors == []
            assert client.session_id is not None
            owner = harness.owner_of(doc_id)
            assert harness.gateway.shard_of_session(client.session_id) == owner
        # The conference still works end to end afterwards.
        events = consultation_events(records[docs[0]], num_events=2, seed=5)
        for path, value in events:
            clients[0].choose(path, value)
        harness.run()
        assert clients[0].errors == []
        db.close()


class TestRouteRetry:
    def test_parked_op_recovers_after_failover(self, tmp_path, fresh_obs):
        registry, _ = fresh_obs
        harness, docs, records, db = build(
            tmp_path, failure_timeout=1.0, reliability=True
        )
        client = harness.add_client("alice")
        partner = harness.add_client("bob")
        client.join(docs[0])
        partner.join(docs[0])
        harness.run()
        owner = harness.owner_of(docs[0])
        harness.start(until=20.0)
        # The owner dies; before the detector notices, the client sends a
        # choice. The route still points at the corpse, so the op parks
        # in the retry loop and lands on the promoted shard.
        harness.crash(owner)
        events = consultation_events(records[docs[0]], num_events=1, seed=3)
        path, value = events[0]
        client.choose(path, value)
        harness.run()
        assert client.errors == [] and partner.errors == []
        assert len(harness.gateway.failovers) == 1
        assert client.displayed()[path] == value
        assert partner.displayed()[path] == value
        counters = registry.snapshot()["counters"]
        assert counters.get("gateway.route_retries", 0) >= 1
        db.close()

    def test_route_retry_budget_exhaustion_is_a_typed_error(
        self, tmp_path, fresh_obs
    ):
        # No detector running: the dead shard is never swept, failover
        # never happens, and the retry budget must terminate with an
        # ERROR frame instead of parking the op forever.
        harness, docs, _, db = build(tmp_path, reliability=True)
        client = harness.add_client("alice")
        client.join(docs[0])
        harness.run()
        harness.crash(harness.owner_of(docs[0]))
        client.choose("anything", "anything")
        harness.run()
        assert any(e["error"] == "ClusterError" for e in client.errors)
        db.close()
