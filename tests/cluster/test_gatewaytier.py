"""The sharded gateway tier: homing, route caches, gateway failover.

Steady state: clients spread across N gateways by consistent hash, JOINs
route by the room ring, and every post-join op rides the gateway's route
cache — zero directory hops on the data plane. Failure: a dead gateway's
clients re-home onto the ring's survivor and replay their parked ops
(exactly-once via the shard-side op_seq fence); a dead shard broadcasts
ROUTE_INVALIDATE so stale cache entries die with it.
"""

import pytest

from repro import obs
from repro.cluster import ClusterConfig, ClusterHarness
from repro.errors import ClusterError
from repro.db import Database, MultimediaObjectStore
from repro.workloads import consultation_events, generate_record

DOCS = ("case-0", "case-1", "case-2")
EVENTS_PER_ROOM = 6
HORIZON = 30.0


@pytest.fixture
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


def build_store(tmp_path, name):
    db = Database(str(tmp_path / name))
    store = MultimediaObjectStore(db)
    records = {}
    for index, doc_id in enumerate(DOCS):
        record = generate_record(
            doc_id, sections=2, components_per_section=3, seed=index
        )
        records[doc_id] = record
        store.store_document(record)
    return store, records


def drive_tier(tmp_path, name, gateways=2, crash_gateway_of=None, monitor=False):
    """One 3-room conference through the tier; optionally kill a gateway.

    ``crash_gateway_of`` names a viewer whose *home gateway* fail-stops
    between the two halves of every room's choice stream — the worst
    case: parked ops, a warm route cache, live sessions.
    """
    store, records = build_store(tmp_path, name)
    config = ClusterConfig(shards=3, gateways=gateways, failure_timeout=1.5)
    harness = ClusterHarness(store, config)
    clients = {}
    for index, doc_id in enumerate(DOCS):
        pair = [harness.add_client(f"dr-{index}-{j}") for j in range(2)]
        for client in pair:
            client.join(doc_id)
        clients[doc_id] = pair
    mon = harness.add_monitor() if monitor else None
    harness.run()
    streams = {
        doc_id: consultation_events(
            records[doc_id], num_events=EVENTS_PER_ROOM, seed=21 + index
        )
        for index, doc_id in enumerate(DOCS)
    }
    for doc_id, events in streams.items():
        for path, value in events[: EVENTS_PER_ROOM // 2]:
            clients[doc_id][0].choose(path, value)
    harness.run()
    harness.start(until=HORIZON)
    victim = harness.home_of(crash_gateway_of) if crash_gateway_of else None
    if victim is not None:
        harness.run_until(3.0)
        harness.crash(victim)
        harness.run_until(10.0)
    harness.run()
    for doc_id, events in streams.items():
        for path, value in events[EVENTS_PER_ROOM // 2 :]:
            clients[doc_id][1].choose(path, value)
    harness.run()
    return {
        "harness": harness,
        "victim": victim,
        "monitor": mon,
        "clients": clients,
        "final": {
            client.viewer_id: client.displayed()
            for pair in clients.values()
            for client in pair
        },
        "errors": [
            {"viewer": client.viewer_id, **error}
            for pair in clients.values()
            for client in pair
            for error in client.errors
        ],
    }


class TestTierRouting:
    def test_clients_spread_across_gateways(self, fresh_obs, tmp_path):
        result = drive_tier(tmp_path, "spread", gateways=2)
        harness = result["harness"]
        assert result["errors"] == []
        homes = {
            harness.home_of(client.viewer_id)
            for pair in result["clients"].values()
            for client in pair
        }
        # Six clients over two ring members: both gateways terminate links.
        assert homes == set(harness.gateways)

    def test_route_cache_serves_steady_state(self, fresh_obs, tmp_path):
        result = drive_tier(tmp_path, "steady", gateways=2)
        harness = result["harness"]
        cache = harness.route_cache_stats()
        # Every post-join op hits the cache the JOIN_ACK sniff filled:
        # the directory never fields a data-plane lookup.
        assert cache["hits"] > 0
        assert cache["misses"] == 0
        assert cache["hit_rate"] == 1.0
        assert harness.directory.stats()["sessions_known"] == len(DOCS) * 2

    def test_route_cache_metric_families(self, fresh_obs, tmp_path):
        registry, _ = fresh_obs
        drive_tier(tmp_path, "families", gateways=2)
        counters = registry.snapshot()["counters"]
        for gateway_id in ("gw-1", "gw-2"):
            for family in ("hits", "misses", "invalidations"):
                name = f'gateway.route_cache.{family}{{gateway="{gateway_id}"}}'
                assert name in counters, name
        total_hits = sum(
            value
            for name, value in counters.items()
            if name.startswith("gateway.route_cache.hits{")
        )
        assert total_hits > 0

    def test_route_cache_families_reach_the_dashboard(self, fresh_obs, tmp_path):
        registry, _ = fresh_obs
        drive_tier(tmp_path, "dash", gateways=2)
        panel = obs.render_dashboard(registry.snapshot())
        assert 'gateway.route_cache.hits{gateway="gw-1"}' in panel
        assert 'gateway.route_cache.misses{gateway="gw-2"}' in panel


class TestGatewayFailover:
    def test_crash_rehomes_and_converges(self, fresh_obs, tmp_path):
        control = drive_tier(tmp_path, "control", gateways=2)
        crashed = drive_tier(
            tmp_path, "crashed", gateways=2, crash_gateway_of="dr-0-0"
        )
        assert crashed["errors"] == []
        harness = crashed["harness"]
        victim = crashed["victim"]
        # The failover completed and moved every stranded client.
        assert len(harness.gateway_failovers) == 1
        record = harness.gateway_failovers[0]
        assert record["gateway"] == victim
        assert record["clients"] > 0
        # Everybody now terminates on the survivor.
        survivor = next(g for g in harness.gateways if g != victim)
        for pair in crashed["clients"].values():
            for client in pair:
                assert harness.home_of(client.viewer_id) == survivor
        # And the conference ends byte-identical to the unkilled run.
        assert crashed["final"] == control["final"]

    def test_replay_is_exactly_once(self, fresh_obs, tmp_path):
        registry, _ = fresh_obs
        crashed = drive_tier(
            tmp_path, "replayed", gateways=2, crash_gateway_of="dr-0-0"
        )
        moved = [
            client
            for pair in crashed["clients"].values()
            for client in pair
            if client.gateway_failovers
        ]
        assert moved, "the victim homed at least one client"
        # Writers replay their parked ops; a viewer that had not sent a
        # mutating op yet legitimately replays zero.
        assert any(entry["replayed"] > 0 for c in moved for entry in c.gateway_failovers)
        # The replay re-sent ops the shard had already applied; the
        # op_seq fence dropped them instead of double-applying.
        counters = registry.snapshot()["counters"]
        assert counters.get("cluster.shard.dup_ops_dropped", 0) > 0

    def test_monitor_rehomes_after_crash(self, fresh_obs, tmp_path):
        result = drive_tier(
            tmp_path, "monitored", gateways=2, crash_gateway_of="dr-0-0",
            monitor=True,
        )
        harness = result["harness"]
        mon = result["monitor"]
        # Wherever it started, the monitor ends on a live gateway with a
        # live telemetry session (re-connected by its failover hook if
        # its home was the victim).
        assert harness.network.home_of(mon.node_id) != result["victim"]
        assert mon.session_id is not None


class TestShardFailureInTier:
    def test_shard_crash_invalidates_route_caches(self, fresh_obs, tmp_path):
        store, records = build_store(tmp_path, "inval")
        config = ClusterConfig(shards=3, gateways=2, failure_timeout=1.5)
        harness = ClusterHarness(store, config)
        clients = {}
        for index, doc_id in enumerate(DOCS):
            pair = [harness.add_client(f"dr-{index}-{j}") for j in range(2)]
            for client in pair:
                client.join(doc_id)
            clients[doc_id] = pair
        harness.run()
        streams = {
            doc_id: consultation_events(
                records[doc_id], num_events=EVENTS_PER_ROOM, seed=21 + index
            )
            for index, doc_id in enumerate(DOCS)
        }
        for doc_id, events in streams.items():
            for path, value in events[: EVENTS_PER_ROOM // 2]:
                clients[doc_id][0].choose(path, value)
        harness.run()
        harness.start(until=HORIZON)
        victim = harness.owner_of(DOCS[0])
        harness.run_until(3.0)
        harness.crash(victim)
        harness.run_until(10.0)
        harness.run()
        # The directory broadcast ROUTE_INVALIDATE: entries pointing at
        # the dead shard were dropped from every gateway's cache...
        cache = harness.route_cache_stats()
        assert cache["invalidations"] > 0
        assert victim not in harness.directory.live_shards
        # ...and the next ops took the miss path to the promoted owner.
        for doc_id, events in streams.items():
            for path, value in events[EVENTS_PER_ROOM // 2 :]:
                clients[doc_id][1].choose(path, value)
        harness.run()
        assert len(harness.failovers) >= 1
        errors = [e for pair in clients.values() for c in pair for e in c.errors]
        assert errors == []


class TestClusterConfig:
    def test_legacy_kwargs_build_equivalent_config(self, fresh_obs, tmp_path):
        store, _ = build_store(tmp_path, "legacy")
        legacy = ClusterHarness(store, num_shards=3, failure_timeout=1.5)
        assert legacy.config == ClusterConfig(shards=3, failure_timeout=1.5)
        assert not legacy.config.tiered
        assert legacy.directory is None
        assert legacy.gateways == {}
        # Positional int still means num_shards (the pre-config shape).
        positional = ClusterHarness(store, 4)
        assert positional.config.shards == 4

    def test_validation(self):
        with pytest.raises(ClusterError):
            ClusterConfig(shards=0)
        with pytest.raises(ClusterError):
            ClusterConfig(gateways=-1)
        with pytest.raises(ClusterError):
            ClusterConfig(route_rate=0.0)

    def test_tiered_flag(self):
        assert not ClusterConfig().tiered
        assert ClusterConfig(gateways=1).tiered
