"""Unit and property tests for the subscription registry (PR 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoomError
from repro.interest import ALL, InterestRegistry

UNIVERSE = (
    "imaging0",
    "imaging0.item0",
    "imaging0.item1",
    "imaging0.item2",
    "labs",
    "labs.item0",
    "tuning.bandwidth",
)


@pytest.fixture
def registry():
    reg = InterestRegistry(UNIVERSE)
    reg.join("s-1")
    return reg


class TestMembership:
    def test_join_defaults_to_all(self, registry):
        assert registry.is_all("s-1")
        assert registry.subscriptions("s-1") is None

    def test_forget_removes_entry(self, registry):
        registry.forget("s-1")
        assert "s-1" not in registry.session_ids
        with pytest.raises(RoomError, match="no interest entry"):
            registry.subscribe("s-1", ["labs"])

    def test_forget_is_idempotent(self, registry):
        registry.forget("s-1")
        registry.forget("s-1")  # no raise

    def test_seed_installs_defaults(self, registry):
        got = registry.seed("s-1", ["labs.item0", "imaging0.item1"])
        assert got == ("imaging0.item1", "labs.item0")
        assert not registry.is_all("s-1")


class TestSubscribe:
    def test_first_subscribe_narrows_from_all(self, registry):
        got = registry.subscribe("s-1", ["labs"])
        assert got == ("labs",)
        assert not registry.covers("s-1", "imaging0.item0")

    def test_subscribe_accumulates(self, registry):
        registry.subscribe("s-1", ["labs"])
        got = registry.subscribe("s-1", ["imaging0.item0"])
        assert got == ("imaging0.item0", "labs")

    def test_replace_substitutes(self, registry):
        registry.subscribe("s-1", ["labs"])
        got = registry.subscribe("s-1", ["imaging0.item0"], replace=True)
        assert got == ("imaging0.item0",)
        assert not registry.covers("s-1", "labs.item0")

    def test_duplicate_subscribe_is_idempotent(self, registry):
        once = registry.subscribe("s-1", ["labs"])
        twice = registry.subscribe("s-1", ["labs", "labs"])
        assert once == twice == ("labs",)


class TestUnsubscribe:
    def test_unsubscribe_all_empties(self, registry):
        registry.subscribe("s-1", ["labs", "imaging0"])
        assert registry.unsubscribe("s-1", all_components=True) == ()
        assert not registry.covers("s-1", "labs")

    def test_unsubscribe_from_all_materializes_universe(self, registry):
        got = registry.unsubscribe("s-1", ["imaging0"])
        # imaging0 and everything under it gone; the rest stays explicit.
        assert got == ("labs", "labs.item0", "tuning.bandwidth")

    def test_unsubscribe_drops_descendants(self, registry):
        registry.subscribe("s-1", ["imaging0.item0", "imaging0.item1", "labs"])
        got = registry.unsubscribe("s-1", ["imaging0"])
        assert got == ("labs",)

    def test_unsubscribe_unknown_path_is_noop(self, registry):
        registry.subscribe("s-1", ["labs"])
        assert registry.unsubscribe("s-1", ["imaging0.item2"]) == ("labs",)


class TestCoverage:
    def test_all_covers_everything(self, registry):
        for path in UNIVERSE:
            assert registry.covers("s-1", path)

    def test_child_subscription_covers_ancestors(self, registry):
        registry.subscribe("s-1", ["imaging0.item1"])
        assert registry.covers("s-1", "imaging0")  # section visibility
        assert not registry.covers("s-1", "imaging0.item2")  # sibling

    def test_section_subscription_covers_descendants(self, registry):
        registry.subscribe("s-1", ["imaging0"])
        assert registry.covers("s-1", "imaging0.item2")
        assert not registry.covers("s-1", "labs")

    def test_prefix_is_dotted_not_textual(self, registry):
        registry.subscribe("s-1", ["imaging0.item1"])
        assert not registry.covers("s-1", "imaging0.item10")

    def test_tuning_always_covered(self, registry):
        registry.unsubscribe("s-1", all_components=True)
        assert registry.covers("s-1", "tuning.bandwidth")

    def test_filter_delta_returns_same_dict_for_all(self, registry):
        delta = {"labs": "full"}
        assert registry.filter_delta("s-1", delta) is delta

    def test_filter_delta_narrows(self, registry):
        registry.subscribe("s-1", ["labs"])
        delta = {"labs.item0": "full", "imaging0.item0": "icon"}
        assert registry.filter_delta("s-1", delta) == {"labs.item0": "full"}

    def test_explicit_subscriptions_counts_only_explicit(self, registry):
        registry.join("s-2")  # ALL: contributes zero
        registry.subscribe("s-1", ["labs", "imaging0"])
        assert registry.explicit_subscriptions() == 2


paths = st.lists(
    st.sampled_from(UNIVERSE), min_size=0, max_size=len(UNIVERSE), unique=True
)


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(subs=paths, dropped=paths)
    def test_unsubscribe_never_widens(self, subs, dropped):
        reg = InterestRegistry(UNIVERSE)
        reg.join("s")
        reg.subscribe("s", subs, replace=True)
        before = {p for p in UNIVERSE if reg.covers("s", p)}
        reg.unsubscribe("s", dropped)
        after = {p for p in UNIVERSE if reg.covers("s", p)}
        assert after <= before | {"tuning.bandwidth"}

    @settings(max_examples=100, deadline=None)
    @given(subs=paths)
    def test_subscribed_paths_are_covered(self, subs):
        reg = InterestRegistry(UNIVERSE)
        reg.join("s")
        got = reg.subscribe("s", subs, replace=True)
        assert got == tuple(sorted(set(subs)))
        for path in subs:
            assert reg.covers("s", path)

    @settings(max_examples=100, deadline=None)
    @given(subs=paths, delta_paths=paths)
    def test_filter_delta_matches_covers(self, subs, delta_paths):
        reg = InterestRegistry(UNIVERSE)
        reg.join("s")
        reg.subscribe("s", subs, replace=True)
        delta = {p: "v" for p in delta_paths}
        filtered = reg.filter_delta("s", delta)
        assert filtered == {p: "v" for p in delta_paths if reg.covers("s", p)}


def test_all_sentinel_is_none():
    # Documented contract: ALL is None so `subs is ALL` reads naturally.
    assert ALL is None
