"""Unit tests for the simulcast layer-prefix size model (PR 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.interest import (
    NUM_LAYERS,
    SIMULCAST_FLOOR,
    layer_prefix_size,
    layer_sizes,
    layers_for_encoded,
    layers_for_level,
)
from repro.media.image.codec import MultiLayerCodec
from repro.media.image.synthetic import ct_phantom
from repro.presentation.tuning import (
    BANDWIDTH_HIGH,
    BANDWIDTH_LOW,
    BANDWIDTH_MEDIUM,
)


class TestLevelMapping:
    def test_levels_map_to_layer_counts(self):
        assert layers_for_level(BANDWIDTH_HIGH) == 3
        assert layers_for_level(BANDWIDTH_MEDIUM) == 2
        assert layers_for_level(BANDWIDTH_LOW) == 1

    def test_unknown_level_gets_everything(self):
        assert layers_for_level("turbo") == NUM_LAYERS


class TestPrefixSizes:
    def test_full_prefix_is_total(self):
        assert layer_prefix_size(1_000_000, NUM_LAYERS) == 1_000_000

    def test_prefixes_are_monotonic(self):
        total = 500_000
        sizes = [layer_prefix_size(total, n) for n in (1, 2, 3)]
        assert sizes[0] < sizes[1] < sizes[2] == total

    def test_step_decay_geometry(self):
        # 1:4:16 weights — one layer ~5%, two layers ~24% of the stream.
        total = 21_000
        assert layer_prefix_size(total, 1) == 1_000
        assert layer_prefix_size(total, 2) == 5_000

    def test_out_of_range_raises(self):
        for bad in (0, 4, -1):
            with pytest.raises(CodecError, match="layer prefix"):
                layer_prefix_size(1000, bad)

    def test_zero_and_negative_totals(self):
        assert layer_prefix_size(0, 1) == 0
        assert layer_prefix_size(-5, 2) == 0

    def test_tiny_total_still_ships_a_byte(self):
        assert layer_prefix_size(3, 1) == 1

    @settings(max_examples=200, deadline=None)
    @given(total=st.integers(min_value=1, max_value=2**32))
    def test_layer_sizes_partition_total(self, total):
        sizes = layer_sizes(total)
        assert len(sizes) == NUM_LAYERS
        assert sum(sizes) == total
        assert all(size >= 0 for size in sizes)


class TestAgainstRealCodec:
    def test_layers_for_encoded_uses_actual_layer_table(self):
        encoded = MultiLayerCodec().encode(ct_phantom(size=64))
        for level, expected in (
            (BANDWIDTH_HIGH, encoded.num_layers),
            (BANDWIDTH_LOW, 1),
        ):
            num, prefix = layers_for_encoded(encoded, level)
            assert num == min(expected, encoded.num_layers)
            assert prefix == encoded.prefix_size(num)
        # The low prefix really is smaller than the full stream.
        _, low_prefix = layers_for_encoded(encoded, BANDWIDTH_LOW)
        _, high_prefix = layers_for_encoded(encoded, BANDWIDTH_HIGH)
        assert low_prefix < high_prefix

    def test_floor_is_sane(self):
        # Icons (4-12KB in the workload generator) must ship whole.
        assert SIMULCAST_FLOOR > 12 * 1024
