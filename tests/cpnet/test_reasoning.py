"""Unit tests for optimal-outcome and best-completion queries."""

import pytest

from repro.cpnet import (
    best_completion,
    figure2_network,
    iter_outcomes,
    optimal_outcome,
    outcome_rank_vector,
)
from repro.cpnet.examples import FIGURE2_OPTIMAL, random_dag_network, random_tree_network
from repro.cpnet.reasoning import is_optimal
from repro.errors import UnknownValueError, UnknownVariableError


class TestFigure2:
    """The paper's own worked example is the ground truth here."""

    def test_optimal_outcome_matches_paper(self):
        assert optimal_outcome(figure2_network()) == FIGURE2_OPTIMAL

    def test_optimal_outcome_is_optimal(self):
        net = figure2_network()
        assert is_optimal(net, optimal_outcome(net))

    def test_no_other_outcome_is_rank_zero(self):
        net = figure2_network()
        zero = [o for o in iter_outcomes(net) if is_optimal(net, o)]
        assert zero == [FIGURE2_OPTIMAL]

    def test_completion_with_forced_c3(self):
        # Forcing c3 to its dispreferred side flips c4 and c5 with it.
        best = best_completion(figure2_network(), {"c3": "c3_1"})
        assert best == {"c1": "c1_1", "c2": "c2_2", "c3": "c3_1", "c4": "c4_1", "c5": "c5_1"}

    def test_completion_with_forced_roots(self):
        best = best_completion(figure2_network(), {"c1": "c1_2", "c2": "c2_2"})
        # Matching indices -> c3_1 preferred -> c4_1, c5_1.
        assert best == {"c1": "c1_2", "c2": "c2_2", "c3": "c3_1", "c4": "c4_1", "c5": "c5_1"}

    def test_completion_respects_all_evidence(self):
        evidence = {"c1": "c1_2", "c4": "c4_1", "c5": "c5_2"}
        best = best_completion(figure2_network(), evidence)
        for name, value in evidence.items():
            assert best[name] == value

    def test_empty_evidence_equals_optimal(self):
        net = figure2_network()
        assert best_completion(net, {}) == optimal_outcome(net)


class TestEvidenceValidation:
    def test_unknown_variable_rejected(self):
        with pytest.raises(UnknownVariableError):
            best_completion(figure2_network(), {"zz": "c1_1"})

    def test_unknown_value_rejected(self):
        with pytest.raises(UnknownValueError):
            best_completion(figure2_network(), {"c1": "bogus"})


class TestRankVector:
    def test_optimal_is_all_zero(self):
        net = figure2_network()
        assert outcome_rank_vector(net, FIGURE2_OPTIMAL) == (0, 0, 0, 0, 0)

    def test_single_flip_has_one_nonzero(self):
        net = figure2_network()
        worse = dict(FIGURE2_OPTIMAL, c4="c4_1")
        vector = outcome_rank_vector(net, worse)
        assert sum(vector) == 1

    def test_requires_complete_outcome(self):
        with pytest.raises(UnknownVariableError):
            outcome_rank_vector(figure2_network(), {"c1": "c1_1"})


class TestIterOutcomes:
    def test_counts(self):
        net = figure2_network()
        assert sum(1 for _ in iter_outcomes(net)) == 32

    def test_limit(self):
        assert sum(1 for _ in iter_outcomes(figure2_network(), limit=5)) == 5


class TestGeneratedNetworks:
    @pytest.mark.parametrize("size", [1, 10, 100])
    def test_tree_sweep_completes(self, size):
        net = random_tree_network(size, seed=1)
        outcome = optimal_outcome(net)
        assert len(outcome) == size
        assert is_optimal(net, outcome)

    @pytest.mark.parametrize("size", [1, 10, 100])
    def test_dag_sweep_completes(self, size):
        net = random_dag_network(size, seed=2)
        outcome = optimal_outcome(net)
        assert len(outcome) == size
        assert is_optimal(net, outcome)

    def test_dag_completion_respects_evidence(self):
        net = random_dag_network(50, seed=4)
        evidence = {"v10": net.variable("v10").domain[-1]}
        assert best_completion(net, evidence)["v10"] == evidence["v10"]

    def test_generators_are_deterministic(self):
        a = random_dag_network(30, seed=7)
        b = random_dag_network(30, seed=7)
        assert optimal_outcome(a) == optimal_outcome(b)

    def test_generator_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            random_tree_network(0)
        with pytest.raises(ValueError):
            random_tree_network(3, domain_size=1)
        with pytest.raises(ValueError):
            random_dag_network(0)
