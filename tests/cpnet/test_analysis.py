"""Unit tests for the authoring audit."""


from repro.cpnet import CPNet, figure2_network
from repro.cpnet.analysis import audit_network
from repro.document import build_sample_medical_record


def chain_net() -> CPNet:
    net = CPNet("chain")
    net.add_variable("a", ("a1", "a2"))
    net.add_rule("a", {}, ("a1", "a2"))
    net.add_variable("b", ("b1", "b2"), parents=("a",))
    return net


class TestBlockingFindings:
    def test_hole_detected(self):
        net = chain_net()
        net.add_rule("b", {"a": "a1"}, ("b1", "b2"))  # a=a2 unanswered
        report = audit_network(net)
        holes = report.by_kind("hole")
        assert len(holes) == 1 and holes[0].variable == "b"
        assert not report.ok

    def test_ambiguity_detected(self):
        net = CPNet()
        net.add_variable("p", ("p1", "p2"))
        net.add_rule("p", {}, ("p1", "p2"))
        net.add_variable("q", ("q1", "q2"))
        net.add_rule("q", {}, ("q1", "q2"))
        net.add_variable("v", ("v1", "v2"), parents=("p", "q"))
        net.add_rule("v", {"p": "p1"}, ("v1", "v2"))
        net.add_rule("v", {"q": "q1"}, ("v2", "v1"))
        report = audit_network(net)
        assert report.by_kind("ambiguity")
        # The hole findings are also present (p2/q2 combination unanswered).
        assert not report.ok


class TestAdvisoryFindings:
    def test_unreachable_rule(self):
        net = chain_net()
        net.add_rule("b", {"a": "a1"}, ("b1", "b2"))
        net.add_rule("b", {"a": "a2"}, ("b2", "b1"))
        net.add_rule("b", {}, ("b1", "b2"))  # catch-all shadowed everywhere
        report = audit_network(net)
        unreachable = report.by_kind("unreachable-rule")
        assert len(unreachable) == 1
        assert "shadowed" in unreachable[0].detail
        assert report.ok  # advisory only

    def test_never_default_value(self):
        net = CPNet()
        net.add_variable("x", ("show", "shrink", "hide"))
        net.add_rule("x", {}, ("show", "shrink", "hide"))
        report = audit_network(net)
        kinds = {f.detail.split("'")[1] for f in report.by_kind("never-default")}
        assert kinds == {"shrink", "hide"}

    def test_isolated_variable(self):
        net = CPNet()
        net.add_variable("lonely", ("a", "b"))
        net.add_rule("lonely", {}, ("a", "b"))
        report = audit_network(net)
        assert report.by_kind("isolated")

    def test_large_space_skipped(self):
        net = CPNet()
        for index in range(14):
            net.add_variable(f"p{index}", ("x", "y"))
            net.add_rule(f"p{index}", {}, ("x", "y"))
        net.add_variable("big", ("a", "b"), parents=tuple(f"p{i}" for i in range(14)))
        net.add_rule("big", {}, ("a", "b"))
        report = audit_network(net, max_space=4096)
        assert "big" in report.skipped_variables


class TestRealNetworks:
    def test_figure2_is_clean(self):
        report = audit_network(figure2_network())
        assert report.ok
        assert not report.by_kind("unreachable-rule")
        # The roots' dispreferred values are correctly flagged as
        # never-default (their single unconditional row decides alone);
        # the conditioned variables each top both values somewhere.
        flagged = {f.variable for f in report.by_kind("never-default")}
        assert flagged == {"c1", "c2"}

    def test_sample_record_audit(self):
        report = audit_network(build_sample_medical_record().network)
        assert report.ok
        assert report.checked_assignments > 0

    def test_summary_renders(self):
        net = chain_net()
        net.add_rule("b", {"a": "a1"}, ("b1", "b2"))
        text = audit_network(net).summary()
        assert "hole" in text and "chain" in text
