"""Unit tests for the Section 4.2 online-update policies."""

import pytest

from repro.cpnet import (
    CPNet,
    ViewerExtension,
    add_component_variable,
    apply_operation,
    best_completion,
    figure2_network,
    optimal_outcome,
    remove_component_variable,
)
from repro.cpnet.updates import OPERATION_APPLIED, OPERATION_PLAIN, operation_variable_name
from repro.errors import CPNetError, UnknownValueError, UnknownVariableError


@pytest.fixture
def net():
    return figure2_network()


class TestAddComponent:
    def test_adds_with_default_order(self, net):
        add_component_variable(net, "notes", ("shown", "hidden"))
        assert net.cpt("notes").best_value({}) == "shown"
        assert optimal_outcome(net)["notes"] == "shown"

    def test_explicit_order(self, net):
        add_component_variable(net, "notes", ("shown", "hidden"), preferred_order=("hidden", "shown"))
        assert optimal_outcome(net)["notes"] == "hidden"

    def test_with_parents(self, net):
        add_component_variable(net, "notes", ("shown", "hidden"), parents=("c1",))
        assert net.parents("notes") == ("c1",)
        # The catch-all default still answers for every parent value.
        net.validate()


class TestRemoveComponent:
    def test_remove_leaf(self, net):
        remove_component_variable(net, "c4")
        assert "c4" not in net
        assert len(optimal_outcome(net)) == 4

    def test_remove_internal_projects_children(self, net):
        remove_component_variable(net, "c3")
        assert "c3" not in net
        assert net.parents("c4") == ()
        assert net.parents("c5") == ()


class TestApplyOperation:
    """The paper's X-ray segmentation example, literally."""

    @pytest.fixture
    def xray_net(self):
        net = CPNet("xray")
        net.add_variable("xray", ("res1", "res2", "res3"))
        net.add_rule("xray", {}, ("res2", "res1", "res3"))
        return net

    def test_variable_created_with_component_parent(self, xray_net):
        record = apply_operation(xray_net, "xray", "segmentation", active_value="res2")
        assert record.name == "xray.segmentation"
        assert xray_net.parents("xray.segmentation") == ("xray",)

    def test_applied_preferred_only_at_active_value(self, xray_net):
        apply_operation(xray_net, "xray", "segmentation", active_value="res2")
        cpt = xray_net.cpt("xray.segmentation")
        assert cpt.best_value({"xray": "res2"}) == OPERATION_APPLIED
        assert cpt.best_value({"xray": "res1"}) == OPERATION_PLAIN
        assert cpt.best_value({"xray": "res3"}) == OPERATION_PLAIN

    def test_component_domain_unchanged(self, xray_net):
        before = xray_net.variable("xray").domain
        apply_operation(xray_net, "xray", "segmentation", active_value="res2")
        assert xray_net.variable("xray").domain == before

    def test_existing_cpts_untouched(self, net):
        rules_before = {name: list(net.cpt(name).rules) for name in net.variable_names}
        apply_operation(net, "c3", "zoom", active_value="c3_2")
        for name, rules in rules_before.items():
            assert net.cpt(name).rules == rules

    def test_optimal_outcome_extends(self, net):
        apply_operation(net, "c3", "zoom", active_value="c3_2")
        outcome = optimal_outcome(net)
        # Optimal has c3=c3_2, the active value, so the zoom is applied.
        assert outcome["c3.zoom"] == OPERATION_APPLIED

    def test_operation_follows_component_under_evidence(self, net):
        apply_operation(net, "c3", "zoom", active_value="c3_2")
        outcome = best_completion(net, {"c3": "c3_1"})
        assert outcome["c3.zoom"] == OPERATION_PLAIN

    def test_prefer_applied_false(self, xray_net):
        apply_operation(xray_net, "xray", "segmentation", "res2", prefer_applied=False)
        cpt = xray_net.cpt("xray.segmentation")
        assert cpt.best_value({"xray": "res2"}) == OPERATION_PLAIN

    def test_duplicate_operation_rejected(self, net):
        apply_operation(net, "c3", "zoom", active_value="c3_2")
        with pytest.raises(CPNetError, match="already exists"):
            apply_operation(net, "c3", "zoom", active_value="c3_1")

    def test_unknown_component_rejected(self, net):
        with pytest.raises(UnknownVariableError):
            apply_operation(net, "ghost", "zoom", active_value="x")

    def test_bad_active_value_rejected(self, net):
        with pytest.raises(UnknownValueError):
            apply_operation(net, "c3", "zoom", active_value="nope")

    def test_name_helper(self):
        assert operation_variable_name("ct", "segmentation") == "ct.segmentation"


class TestViewerExtension:
    def test_base_not_duplicated(self, net):
        ext = ViewerExtension(net, "dr-lee")
        ext.apply_operation("c3", "segmentation", active_value="c3_2")
        assert ext.size() == 1  # only the new variable is stored
        assert "c3.segmentation" not in net  # base untouched

    def test_extension_reasoning_includes_base(self, net):
        ext = ViewerExtension(net, "dr-lee")
        ext.apply_operation("c3", "segmentation", active_value="c3_2")
        outcome = ext.optimal_outcome()
        assert outcome["c3"] == "c3_2"
        assert outcome["c3.segmentation"] == OPERATION_APPLIED
        assert len(outcome) == 6

    def test_extension_respects_evidence_on_base_and_extra(self, net):
        ext = ViewerExtension(net, "dr-lee")
        ext.apply_operation("c3", "segmentation", active_value="c3_2")
        outcome = ext.best_completion(
            {"c3": "c3_1", "c3.segmentation": OPERATION_APPLIED}
        )
        assert outcome["c3"] == "c3_1"
        assert outcome["c3.segmentation"] == OPERATION_APPLIED

    def test_two_viewers_do_not_interact(self, net):
        lee = ViewerExtension(net, "dr-lee")
        cho = ViewerExtension(net, "dr-cho")
        lee.apply_operation("c3", "segmentation", active_value="c3_2")
        assert "c3.segmentation" in lee
        assert "c3.segmentation" not in cho
        assert len(cho.optimal_outcome()) == 5

    def test_duplicate_against_base_rejected(self, net):
        ext = ViewerExtension(net, "dr-lee")
        with pytest.raises(ValueError):
            ext.add_variable("c1", ("x", "y"))

    def test_rules_only_on_local_variables(self, net):
        ext = ViewerExtension(net, "dr-lee")
        with pytest.raises(UnknownVariableError):
            ext.add_rule("c1", {}, ("c1_2", "c1_1"))

    def test_promote_to_base(self, net):
        ext = ViewerExtension(net, "dr-lee")
        ext.apply_operation("c3", "segmentation", active_value="c3_2")
        ext.promote_to_base()
        assert "c3.segmentation" in net
        assert ext.size() == 0
        assert optimal_outcome(net)["c3.segmentation"] == OPERATION_APPLIED

    def test_chained_extension_variables(self, net):
        ext = ViewerExtension(net, "dr-lee")
        ext.apply_operation("c3", "segmentation", active_value="c3_2")
        # An operation on the operation variable itself (e.g. recolor the
        # segmentation) chains off the first extension variable.
        ext.apply_operation("c3.segmentation", "fill", active_value=OPERATION_APPLIED)
        outcome = ext.optimal_outcome()
        assert outcome["c3.segmentation.fill"] == OPERATION_APPLIED
