"""Unit tests for the author-side CP-net builder."""

import pytest

from repro.cpnet import CPNetBuilder, optimal_outcome
from repro.errors import CPNetError, IncompleteTableError, UnknownVariableError


class TestBuilder:
    def test_fluent_chain(self):
        net = (
            CPNetBuilder("doc")
            .component("ct", ["flat", "segmented", "hidden"])
            .prefer("ct", ["flat", "segmented", "hidden"])
            .binary_component("xray", parents=["ct"])
            .prefer_when("xray", {"ct": "hidden"}, ["shown", "hidden"])
            .prefer_when("xray", {}, ["hidden", "shown"])
            .build()
        )
        best = optimal_outcome(net)
        assert best == {"ct": "flat", "xray": "hidden"}

    def test_binary_component_defaults(self):
        net = (
            CPNetBuilder()
            .binary_component("notes")
            .prefer("notes", ["shown", "hidden"])
            .build()
        )
        assert net.variable("notes").domain == ("shown", "hidden")

    def test_binary_component_custom_labels(self):
        net = (
            CPNetBuilder()
            .binary_component("audio", shown="play", hidden="mute")
            .prefer("audio", ["mute", "play"])
            .build()
        )
        assert net.variable("audio").domain == ("play", "mute")

    def test_parent_must_be_declared_first(self):
        builder = CPNetBuilder()
        with pytest.raises(UnknownVariableError):
            builder.component("b", ["b1", "b2"], parents=["a"])

    def test_build_validates_by_default(self):
        builder = CPNetBuilder().component("a", ["a1", "a2"])
        with pytest.raises(IncompleteTableError):
            builder.build()

    def test_build_can_skip_validation(self):
        net = CPNetBuilder().component("a", ["a1", "a2"]).build(validate=False)
        assert "a" in net

    def test_builder_single_use(self):
        builder = CPNetBuilder().component("a", ["a1", "a2"]).prefer("a", ["a1", "a2"])
        builder.build()
        with pytest.raises(CPNetError, match="already produced"):
            builder.component("b", ["b1", "b2"])
        with pytest.raises(CPNetError):
            builder.build()
