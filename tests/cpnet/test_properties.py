"""Property-based tests (hypothesis) for the CP-net engine's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpnet import (
    best_completion,
    dominates,
    improving_flips,
    network_from_json,
    network_to_json,
    optimal_outcome,
    outcome_rank_vector,
)
from repro.cpnet.dominance import DOMINATES
from repro.cpnet.examples import random_dag_network, random_tree_network
from repro.cpnet.reasoning import is_optimal


nets = st.builds(
    random_dag_network,
    num_variables=st.integers(min_value=1, max_value=12),
    domain_size=st.integers(min_value=2, max_value=4),
    max_parents=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)

tree_nets = st.builds(
    random_tree_network,
    num_variables=st.integers(min_value=1, max_value=12),
    domain_size=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)


small_nets = st.builds(
    random_dag_network,
    num_variables=st.integers(min_value=1, max_value=9),
    domain_size=st.integers(min_value=2, max_value=3),
    max_parents=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
)


@st.composite
def net_and_outcome(draw, source=nets):
    net = draw(source)
    outcome = {
        name: draw(st.sampled_from(net.variable(name).domain))
        for name in net.variable_names
    }
    return net, outcome


@given(nets)
@settings(max_examples=50, deadline=None)
def test_optimal_outcome_has_no_improving_flip(net):
    """The sweep result admits no improving flip — it is a local (hence,
    for acyclic nets, the global) optimum."""
    best = optimal_outcome(net)
    assert list(improving_flips(net, best)) == []
    assert is_optimal(net, best)


@given(net_and_outcome())
@settings(max_examples=50, deadline=None)
def test_completion_preserves_evidence(net_outcome):
    """best_completion never overrides a viewer's explicit choice."""
    net, outcome = net_outcome
    evidence = dict(list(outcome.items())[::2])  # every other variable
    completed = best_completion(net, evidence)
    for name, value in evidence.items():
        assert completed[name] == value


@given(net_and_outcome())
@settings(max_examples=50, deadline=None)
def test_full_evidence_is_identity(net_outcome):
    """With every variable forced, the completion is the evidence itself."""
    net, outcome = net_outcome
    assert best_completion(net, outcome) == outcome


@given(net_and_outcome(source=small_nets))
@settings(max_examples=30, deadline=None)
def test_optimal_dominates_or_equals_any_outcome(net_outcome):
    """For small nets we can afford the flip search: the swept optimum
    dominates every distinct outcome. (Outcome spaces are capped at 3**9
    so the BFS budget always suffices — dominance is NP-hard in general.)"""
    net, outcome = net_outcome
    best = optimal_outcome(net)
    if outcome != best:
        assert dominates(net, best, outcome, max_visited=200_000) == DOMINATES


@given(net_and_outcome())
@settings(max_examples=50, deadline=None)
def test_improving_flip_lowers_rank_vector_somewhere(net_outcome):
    """An improving flip strictly improves the flipped variable's rank."""
    net, outcome = net_outcome
    before = outcome_rank_vector(net, outcome)
    order = net.topological_order()
    for flipped in improving_flips(net, outcome):
        changed = [name for name in outcome if flipped[name] != outcome[name]]
        assert len(changed) == 1
        index = order.index(changed[0])
        after = outcome_rank_vector(net, flipped)
        assert after[index] < before[index]


@given(tree_nets)
@settings(max_examples=50, deadline=None)
def test_serialization_round_trip(net):
    """to_json → from_json preserves structure and optimal outcome."""
    clone = network_from_json(network_to_json(net))
    assert set(clone.edges()) == set(net.edges())
    assert optimal_outcome(clone) == optimal_outcome(net)


@given(nets)
@settings(max_examples=30, deadline=None)
def test_validation_passes_for_generated_nets(net):
    """Generators always produce structurally valid, complete networks."""
    net.validate()
