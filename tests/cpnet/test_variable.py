"""Unit tests for CP-net variables and domains."""

import pytest

from repro.cpnet import Variable
from repro.errors import UnknownValueError


class TestVariableConstruction:
    def test_basic(self):
        var = Variable("ct_image", ("flat", "segmented", "hidden"))
        assert var.name == "ct_image"
        assert var.domain == ("flat", "segmented", "hidden")

    def test_list_domain_coerced_to_tuple(self):
        var = Variable("x", ["a", "b"])
        assert var.domain == ("a", "b")

    def test_description_not_in_equality(self):
        assert Variable("x", ("a", "b"), "one") == Variable("x", ("a", "b"), "two")

    def test_singleton_domain_rejected(self):
        with pytest.raises(ValueError, match=">= 2"):
            Variable("x", ("only",))

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Variable("x", ("a", "a"))

    def test_empty_value_rejected(self):
        with pytest.raises(ValueError):
            Variable("x", ("a", ""))

    def test_non_string_value_rejected(self):
        with pytest.raises(ValueError):
            Variable("x", ("a", 2))

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="invalid"):
            Variable("bad name!", ("a", "b"))

    def test_non_string_name_rejected(self):
        with pytest.raises(TypeError):
            Variable(42, ("a", "b"))

    def test_dotted_name_allowed(self):
        # Operation variables are named "<component>.<operation>" (§4.2).
        assert Variable("xray.segmentation", ("applied", "plain")).name == "xray.segmentation"


class TestVariableBehaviour:
    def test_check_value_accepts_member(self):
        var = Variable("x", ("a", "b"))
        assert var.check_value("a") == "a"

    def test_check_value_rejects_foreign(self):
        var = Variable("x", ("a", "b"))
        with pytest.raises(UnknownValueError):
            var.check_value("c")

    def test_is_binary(self):
        assert Variable("x", ("a", "b")).is_binary
        assert not Variable("x", ("a", "b", "c")).is_binary

    def test_str(self):
        assert str(Variable("x", ("a", "b"))) == "x{a, b}"

    def test_hashable(self):
        assert len({Variable("x", ("a", "b")), Variable("x", ("a", "b"))}) == 1
