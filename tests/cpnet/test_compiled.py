"""Compiled CP-net evaluation: exactness, invalidation, and the shared cache.

The headline property (ISSUE satellite): the compiled engine is
**byte-identical** to the interpreted reference — same values, same dict
insertion order, same errors — including after §4.2 update sequences and
through per-viewer extensions. Byte-identity is asserted via
``json.dumps`` (which preserves dict order), not set equality.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IncompleteTableError
from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.cpnet import (
    CPNet,
    CompletionCache,
    apply_operation,
    best_completion,
    compile_cpnet,
    compile_extension,
    compiled_enabled,
    completion_key,
    figure2_network,
    interpreted_mode,
    optimal_outcome,
)
from repro.cpnet.examples import FIGURE2_OPTIMAL, random_dag_network
from repro.cpnet.updates import ViewerExtension, add_component_variable


def dumps(outcome):
    return json.dumps(outcome)  # insertion order preserved = sweep order


# ----- exactness on the paper's network ------------------------------------------


class TestCompiledExactness:
    def test_figure2_optimal(self):
        net = figure2_network()
        assert compile_cpnet(net).optimal_outcome() == FIGURE2_OPTIMAL

    def test_matches_interpreted_byte_for_byte(self):
        net = figure2_network()
        compiled = compile_cpnet(net)
        for evidence in ({}, {"c2": "c2_1"}, {"c1": "c1_2", "c5": "c5_1"}):
            with interpreted_mode():
                reference = best_completion(net, evidence)
            assert dumps(compiled.best_completion(evidence)) == dumps(reference)

    def test_order_for_matches_cpt(self):
        net = figure2_network()
        compiled = compile_cpnet(net)
        outcome = optimal_outcome(net)
        for name in net.variable_names:
            assert compiled.order_for(name, outcome) == net.cpt(name).order_for(outcome)

    def test_bad_evidence_raises_like_interpreter(self):
        net = figure2_network()
        compiled = compile_cpnet(net)
        with pytest.raises(Exception) as compiled_err:
            compiled.best_completion({"c1": "nonsense"})
        with pytest.raises(Exception) as interpreted_err:
            best_completion(net, {"c1": "nonsense"})
        assert type(compiled_err.value) is type(interpreted_err.value)

    def test_incomplete_table_raises_lazily(self):
        """Missing CPT cells must raise on *query*, not at compile time."""
        net = CPNet("incomplete")
        net.add_variable("a", ("a1", "a2"))
        net.add_rule("a", {}, ("a1", "a2"))
        net.add_variable("b", ("b1", "b2"), parents=("a",))
        net.add_rule("b", {"a": "a1"}, ("b1", "b2"))  # no rule for a=a2
        compiled = compile_cpnet(net)  # must not raise
        assert compiled.best_completion({})["b"] == "b1"
        with pytest.raises(IncompleteTableError):
            compiled.best_completion({"a": "a2"})

    def test_oversized_cpt_flattens_lazily(self):
        """A parent space over FLAT_SPACE_LIMIT is resolved per query."""
        from repro.cpnet import compiled as compiled_mod

        net = figure2_network()
        old_limit = compiled_mod.FLAT_SPACE_LIMIT
        compiled_mod.FLAT_SPACE_LIMIT = 0
        try:
            lazy = compile_cpnet(net.copy("lazy"))
        finally:
            compiled_mod.FLAT_SPACE_LIMIT = old_limit
        assert all(not t.orders for t in lazy._sweep)  # nothing eager
        assert lazy.optimal_outcome() == FIGURE2_OPTIMAL
        # The first query memoized the visited cells.
        assert any(t.orders for t in lazy._sweep)


# ----- compilation memo + invalidation --------------------------------------------


class TestCompilationInvalidation:
    def test_compile_is_memoized(self):
        net = figure2_network()
        assert compile_cpnet(net) is compile_cpnet(net)

    def test_structural_mutations_bump_version_and_recompile(self):
        net = figure2_network()
        first = compile_cpnet(net)
        v0 = net.structure_version
        apply_operation(net, "c2", "segment", "c2_2")
        assert net.structure_version > v0
        assert first.stale
        second = compile_cpnet(net)
        assert second is not first
        assert "c2.segment" in second.order

    def test_remove_variable_invalidates(self):
        net = figure2_network()
        apply_operation(net, "c2", "segment", "c2_2")
        first = compile_cpnet(net)
        net.remove_variable("c2.segment")
        assert first.stale
        assert "c2.segment" not in compile_cpnet(net).order

    def test_compile_counter_counts_real_compiles_only(self):
        with use_registry(MetricsRegistry()):
            net = figure2_network()
            compile_cpnet(net)
            compile_cpnet(net)
            compile_cpnet(net)
            assert get_registry().counter("cpnet.compile").value == 1
            add_component_variable(net, "extra", ("on", "off"))
            compile_cpnet(net)
            assert get_registry().counter("cpnet.compile").value == 2

    def test_extension_overlay_shares_base_compilation(self):
        net = figure2_network()
        base = compile_cpnet(net)
        ext = ViewerExtension(net, "ines")
        ext.apply_operation("c2", "segment", "c2_2")
        overlay = compile_extension(ext)
        assert overlay.base is base  # §4.2: the base is never duplicated
        # A viewer-local mutation recompiles only the overlay.
        ext.add_variable("note", ("shown", "hidden"))
        ext.add_rule("note", {}, ("shown", "hidden"))
        overlay2 = compile_extension(ext)
        assert overlay2 is not overlay
        assert overlay2.base is base

    def test_extension_overlay_matches_interpreted(self):
        net = figure2_network()
        ext = ViewerExtension(net, "ines")
        ext.apply_operation("c2", "segment", "c2_2")
        for evidence in ({}, {"c2": "c2_2"}, {"c2.segment": "applied"}):
            assert dumps(compile_extension(ext).best_completion(evidence)) == dumps(
                ext.interpreted_best_completion(evidence)
            )


# ----- global switch ----------------------------------------------------------------


class TestEngineSwitch:
    def test_interpreted_mode_restores(self):
        assert compiled_enabled()
        with interpreted_mode():
            assert not compiled_enabled()
            with interpreted_mode():
                assert not compiled_enabled()
            assert not compiled_enabled()
        assert compiled_enabled()

    def test_extension_best_completion_routes_by_switch(self):
        net = figure2_network()
        ext = ViewerExtension(net, "ines")
        with interpreted_mode():
            reference = ext.best_completion({})
        assert not hasattr(ext, "_compiled") or ext._compiled is None
        compiled = ext.best_completion({})
        assert dumps(compiled) == dumps(reference)


# ----- completion cache -----------------------------------------------------------


class TestCompletionCache:
    def test_hit_miss_accounting(self):
        with use_registry(MetricsRegistry()):
            cache = CompletionCache()
            key = completion_key("doc", 0, (), {"c1": "c1_1"})
            assert cache.lookup(key) is None
            cache.store(key, {"c1": "c1_1", "c2": "c2_2"})
            assert cache.lookup(key) == {"c1": "c1_1", "c2": "c2_2"}
            assert cache.stats() == {
                "entries": 1,
                "hits": 1,
                "misses": 1,
                "evictions": 0,
                "invalidations": 0,
            }
            registry = get_registry()
            assert registry.counter("cpnet.completion_cache.hits").value == 1
            assert registry.counter("cpnet.completion_cache.misses").value == 1
            assert registry.gauge("cpnet.completion_cache.size").value == 1

    def test_lookup_returns_copies(self):
        cache = CompletionCache()
        key = completion_key("doc", 0, (), {})
        cache.store(key, {"a": "1"})
        first = cache.lookup(key)
        first["a"] = "mutated"  # subtree hiding mutates outcomes in place
        assert cache.lookup(key) == {"a": "1"}

    def test_lru_eviction(self):
        cache = CompletionCache(max_entries=2)
        k1, k2, k3 = (completion_key("doc", 0, (), {"x": str(i)}) for i in range(3))
        cache.store(k1, {"a": "1"})
        cache.store(k2, {"a": "2"})
        cache.lookup(k1)  # k1 is now most-recent
        cache.store(k3, {"a": "3"})
        assert cache.lookup(k2) is None  # the LRU entry went
        assert cache.lookup(k1) is not None
        assert cache.evictions == 1

    def test_invalidate_per_document(self):
        cache = CompletionCache()
        cache.store(completion_key("doc-a", 0, (), {}), {"a": "1"})
        cache.store(completion_key("doc-a", 0, (), {"x": "1"}), {"a": "2"})
        cache.store(completion_key("doc-b", 0, (), {}), {"b": "1"})
        assert cache.invalidate("doc-a") == 2
        assert len(cache) == 1
        assert cache.lookup(completion_key("doc-b", 0, (), {})) is not None
        assert cache.invalidations == 2
        assert cache.invalidate() == 1  # drop everything
        assert len(cache) == 0

    def test_version_in_key_isolates_stale_entries(self):
        net = figure2_network()
        cache = CompletionCache()
        old = completion_key("doc", net.version_token, (), {})
        cache.store(old, compile_cpnet(net).best_completion({}))
        apply_operation(net, "c2", "segment", "c2_2")
        fresh = completion_key("doc", net.version_token, (), {})
        assert fresh != old
        assert cache.lookup(fresh) is None

    def test_version_token_unique_across_net_instances(self):
        """Regression: a persisted document re-fetched into a fresh CPNet
        restarts structure_version at 0 and can re-accumulate the same
        count with different content, while the shard cache keeps the old
        entries — the instance salt in version_token keeps the two
        instances' keys disjoint."""
        first, second = figure2_network(), figure2_network()
        assert first.structure_version == second.structure_version
        assert first.version_token != second.version_token
        cache = CompletionCache()
        cache.store(
            completion_key("doc", first.version_token, (), {}), {"c1": "stale"}
        )
        assert cache.lookup(completion_key("doc", second.version_token, (), {})) is None


# ----- the headline property: compiled == interpreted, byte for byte ---------------

nets = st.builds(
    random_dag_network,
    num_variables=st.integers(min_value=1, max_value=12),
    domain_size=st.integers(min_value=2, max_value=4),
    max_parents=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)


@st.composite
def net_and_evidence(draw):
    net = draw(nets)
    names = list(net.variable_names)
    chosen = draw(
        st.lists(st.sampled_from(names), unique=True, max_size=len(names))
        if names
        else st.just([])
    )
    evidence = {
        name: draw(st.sampled_from(net.variable(name).domain)) for name in chosen
    }
    return net, evidence


@given(net_and_evidence())
@settings(max_examples=60, deadline=None)
def test_compiled_byte_identical_to_interpreted(net_evidence):
    net, evidence = net_evidence
    with interpreted_mode():
        reference = best_completion(net, evidence)
    assert dumps(compile_cpnet(net).best_completion(evidence)) == dumps(reference)


@given(net_and_evidence(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_compiled_byte_identical_after_update_sequences(net_evidence, seed):
    """§4.2 update policies between queries: recompilations stay exact."""
    import random

    net, evidence = net_evidence
    rng = random.Random(seed)
    compiled = compile_cpnet(net)  # compile *before* mutating
    # A short §4.2 sequence: an operation, a component add, a removal.
    target = rng.choice(net.variable_names)
    apply_operation(net, target, "zoom", rng.choice(net.variable(target).domain))
    add_component_variable(net, "added.one", ("on", "off"))
    net.remove_variable(f"{target}.zoom")
    assert compiled.stale
    with interpreted_mode():
        reference = best_completion(net, evidence)
    assert dumps(compile_cpnet(net).best_completion(evidence)) == dumps(reference)


@given(net_and_evidence(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_compiled_byte_identical_through_extensions(net_evidence, seed):
    """Viewer overlays: compiled overlay == interpreted extension sweep."""
    import random

    net, evidence = net_evidence
    rng = random.Random(seed)
    ext = ViewerExtension(net, "viewer")
    target = rng.choice(net.variable_names)
    ext.apply_operation(target, "crop", rng.choice(net.variable(target).domain))
    ext.add_variable("local.note", ("shown", "hidden"), parents=(target,))
    ext.add_rule("local.note", {}, ("hidden", "shown"))
    reference = ext.interpreted_best_completion(evidence)
    assert dumps(compile_extension(ext).best_completion(evidence)) == dumps(reference)
    # ...and with evidence on an extension variable too.
    evidence2 = {**evidence, f"{target}.crop": "applied"}
    assert dumps(compile_extension(ext).best_completion(evidence2)) == dumps(
        ext.interpreted_best_completion(evidence2)
    )
