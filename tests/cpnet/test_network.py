"""Unit tests for the CP-network structure."""

import pytest

from repro.cpnet import CPNet, figure2_network
from repro.errors import CyclicNetworkError, UnknownVariableError


@pytest.fixture
def chain():
    """a -> b -> c, all binary, preferences following the parent."""
    net = CPNet("chain")
    net.add_variable("a", ("a1", "a2"))
    net.add_rule("a", {}, ("a1", "a2"))
    net.add_variable("b", ("b1", "b2"), parents=("a",))
    net.add_rule("b", {"a": "a1"}, ("b1", "b2"))
    net.add_rule("b", {"a": "a2"}, ("b2", "b1"))
    net.add_variable("c", ("c1", "c2"), parents=("b",))
    net.add_rule("c", {}, ("c1", "c2"))
    return net


class TestStructure:
    def test_len_contains_iter(self, chain):
        assert len(chain) == 3
        assert "a" in chain and "z" not in chain
        assert [v.name for v in chain] == ["a", "b", "c"]

    def test_parents_children(self, chain):
        assert chain.parents("b") == ("a",)
        assert chain.children("a") == ("b",)
        assert chain.children("c") == ()

    def test_roots(self, chain):
        assert chain.roots() == ("a",)

    def test_edges(self, chain):
        assert set(chain.edges()) == {("a", "b"), ("b", "c")}

    def test_unknown_variable(self, chain):
        with pytest.raises(UnknownVariableError):
            chain.variable("nope")
        with pytest.raises(UnknownVariableError):
            chain.parents("nope")

    def test_duplicate_variable_rejected(self, chain):
        with pytest.raises(ValueError, match="already exists"):
            chain.add_variable("a", ("x", "y"))

    def test_parent_must_exist_first(self):
        net = CPNet()
        with pytest.raises(UnknownVariableError):
            net.add_variable("child", ("x", "y"), parents=("ghost",))

    def test_topological_order(self, chain):
        order = chain.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_outcome_space_size(self, chain):
        assert chain.outcome_space_size() == 8

    def test_repr(self, chain):
        assert "3 variables" in repr(chain)


class TestReparenting:
    def test_set_parents_clears_rules(self, chain):
        chain.set_parents("c", ("a",))
        assert chain.parents("c") == ("a",)
        assert chain.cpt("c").rules == []
        assert chain.children("b") == ()

    def test_cycle_rejected_and_rolled_back(self, chain):
        with pytest.raises(CyclicNetworkError):
            chain.set_parents("a", ("c",))
        # Unchanged after the failed mutation.
        assert chain.parents("a") == ()
        assert chain.children("c") == ()
        assert chain.cpt("a").rules  # original rule survived

    def test_self_cycle_rejected(self, chain):
        with pytest.raises(Exception):
            chain.set_parents("a", ("a",))


class TestRemoval:
    def test_remove_leaf(self, chain):
        chain.remove_variable("c")
        assert "c" not in chain
        assert chain.children("b") == ()

    def test_remove_with_dependents_requires_flag(self, chain):
        with pytest.raises(ValueError, match="condition on it"):
            chain.remove_variable("b")

    def test_remove_with_projection(self, chain):
        chain.remove_variable("b", reparent_children=True)
        assert "b" not in chain
        assert chain.parents("c") == ()
        # c's catch-all rule survived the projection.
        assert chain.cpt("c").best_value({}) == "c1"

    def test_projection_drops_conditions_on_removed(self):
        net = CPNet()
        net.add_variable("a", ("a1", "a2"))
        net.add_rule("a", {}, ("a1", "a2"))
        net.add_variable("b", ("b1", "b2"), parents=("a",))
        net.add_rule("b", {"a": "a1"}, ("b1", "b2"))
        net.add_rule("b", {"a": "a2"}, ("b2", "b1"))
        net.remove_variable("a", reparent_children=True)
        # Both rules project to unconditional rules; the duplicate-free
        # projection keeps both, making lookups ambiguous — which is the
        # documented, surfaced behaviour (authors must re-elicit).
        assert len(net.cpt("b").rules) == 2


class TestOutcomeChecks:
    def test_check_outcome_complete(self, chain):
        outcome = {"a": "a1", "b": "b1", "c": "c2"}
        assert chain.check_outcome(outcome) == outcome

    def test_check_outcome_missing(self, chain):
        with pytest.raises(UnknownVariableError, match="missing"):
            chain.check_outcome({"a": "a1"})

    def test_check_outcome_extra(self, chain):
        with pytest.raises(UnknownVariableError, match="unknown"):
            chain.check_outcome({"a": "a1", "b": "b1", "c": "c1", "z": "z1"})

    def test_check_partial(self, chain):
        assert chain.check_partial({"b": "b2"}) == {"b": "b2"}
        with pytest.raises(UnknownVariableError):
            chain.check_partial({"zz": "b2"})


class TestCopyAndValidate:
    def test_copy_is_deep(self, chain):
        clone = chain.copy("clone")
        clone.add_variable("d", ("d1", "d2"), parents=("c",))
        assert "d" not in chain
        assert clone.name == "clone"

    def test_copy_preserves_semantics(self):
        net = figure2_network()
        clone = net.copy()
        assert set(clone.edges()) == set(net.edges())
        for name in net.variable_names:
            assert clone.variable(name).domain == net.variable(name).domain

    def test_validate_ok(self, chain):
        chain.validate()

    def test_preference_over(self, chain):
        outcome = {"a": "a2", "b": "b1", "c": "c1"}
        assert chain.preference_over("b", outcome, "b2", "b1")
