"""Unit tests for CP-net JSON round-tripping."""

import json

import pytest

from repro.cpnet import (
    figure2_network,
    network_from_dict,
    network_from_json,
    network_to_dict,
    network_to_json,
    optimal_outcome,
)
from repro.cpnet.examples import random_dag_network
from repro.errors import CPNetError


class TestRoundTrip:
    def test_figure2_round_trips(self):
        net = figure2_network()
        clone = network_from_json(network_to_json(net))
        assert clone.name == net.name
        assert set(clone.edges()) == set(net.edges())
        assert optimal_outcome(clone) == optimal_outcome(net)

    def test_random_dag_round_trips(self):
        net = random_dag_network(40, seed=9)
        clone = network_from_dict(network_to_dict(net))
        assert optimal_outcome(clone) == optimal_outcome(net)

    def test_rules_preserved_exactly(self):
        net = figure2_network()
        clone = network_from_json(network_to_json(net))
        for name in net.variable_names:
            assert clone.cpt(name).rules == net.cpt(name).rules

    def test_json_is_valid_and_versioned(self):
        data = json.loads(network_to_json(figure2_network(), indent=2))
        assert data["format"] == 1
        assert len(data["variables"]) == 5

    def test_variables_serialized_in_topological_order(self):
        data = network_to_dict(figure2_network())
        names = [v["name"] for v in data["variables"]]
        assert names.index("c1") < names.index("c3") < names.index("c4")


class TestErrorHandling:
    def test_bad_json(self):
        with pytest.raises(CPNetError, match="invalid"):
            network_from_json("{not json")

    def test_wrong_version(self):
        with pytest.raises(CPNetError, match="version"):
            network_from_dict({"format": 99, "variables": []})

    def test_non_dict(self):
        with pytest.raises(CPNetError):
            network_from_dict([1, 2])

    def test_missing_variables(self):
        with pytest.raises(CPNetError, match="variables"):
            network_from_dict({"format": 1})

    def test_malformed_variable_entry(self):
        with pytest.raises(CPNetError, match="malformed"):
            network_from_dict({"format": 1, "variables": [{"domain": ["a", "b"]}]})
