"""Unit tests for conditional preference tables."""

import pytest

from repro.cpnet import CPT, PreferenceRule, Variable
from repro.errors import IncompleteTableError, UnknownValueError, UnknownVariableError


@pytest.fixture
def parents():
    return (Variable("p", ("p1", "p2")), Variable("q", ("q1", "q2")))


@pytest.fixture
def cpt(parents):
    return CPT(variable=Variable("v", ("v1", "v2")), parents=parents)


class TestRuleConstruction:
    def test_make_sorts_condition(self):
        rule = PreferenceRule.make({"q": "q1", "p": "p1"}, ["v1", "v2"])
        assert rule.condition == (("p", "p1"), ("q", "q1"))

    def test_specificity(self):
        assert PreferenceRule.make({}, ["v1", "v2"]).specificity == 0
        assert PreferenceRule.make({"p": "p1"}, ["v1", "v2"]).specificity == 1

    def test_applies_to(self):
        rule = PreferenceRule.make({"p": "p1"}, ["v1", "v2"])
        assert rule.applies_to({"p": "p1", "q": "q2"})
        assert not rule.applies_to({"p": "p2", "q": "q1"})

    def test_str_unconditional(self):
        rule = PreferenceRule.make({}, ["v1", "v2"])
        assert str(rule) == "[true] : v1 > v2"


class TestCPTValidation:
    def test_rule_with_unknown_parent_rejected(self, cpt):
        with pytest.raises(UnknownVariableError):
            cpt.add_rule({"zz": "p1"}, ["v1", "v2"])

    def test_rule_with_bad_parent_value_rejected(self, cpt):
        with pytest.raises(UnknownValueError):
            cpt.add_rule({"p": "nope"}, ["v1", "v2"])

    def test_order_must_be_permutation(self, cpt):
        with pytest.raises(UnknownValueError):
            cpt.add_rule({}, ["v1"])
        with pytest.raises(UnknownValueError):
            cpt.add_rule({}, ["v1", "v1"])
        with pytest.raises(UnknownValueError):
            cpt.add_rule({}, ["v1", "other"])

    def test_self_parent_rejected(self):
        v = Variable("v", ("v1", "v2"))
        with pytest.raises(ValueError, match="own parent"):
            CPT(variable=v, parents=(v,))

    def test_duplicate_parents_rejected(self, parents):
        with pytest.raises(ValueError, match="duplicate"):
            CPT(variable=Variable("v", ("v1", "v2")), parents=(parents[0], parents[0]))

    def test_validate_empty_table(self, cpt):
        with pytest.raises(IncompleteTableError, match="no rules"):
            cpt.validate()

    def test_validate_complete_via_catchall(self, cpt):
        cpt.add_rule({}, ["v1", "v2"])
        cpt.validate()

    def test_validate_detects_hole(self, cpt):
        cpt.add_rule({"p": "p1"}, ["v1", "v2"])
        with pytest.raises(IncompleteTableError, match="no rule"):
            cpt.validate()

    def test_validate_refuses_huge_space(self, cpt):
        cpt.add_rule({}, ["v1", "v2"])
        with pytest.raises(IncompleteTableError, match="exceeds"):
            cpt.validate(max_space=1)


class TestCPTLookup:
    def test_specific_rule_overrides_catchall(self, cpt):
        cpt.add_rule({}, ["v1", "v2"])
        cpt.add_rule({"p": "p2"}, ["v2", "v1"])
        assert cpt.best_value({"p": "p1", "q": "q1"}) == "v1"
        assert cpt.best_value({"p": "p2", "q": "q1"}) == "v2"

    def test_most_specific_wins(self, cpt):
        cpt.add_rule({}, ["v1", "v2"])
        cpt.add_rule({"p": "p2"}, ["v2", "v1"])
        cpt.add_rule({"p": "p2", "q": "q2"}, ["v1", "v2"])
        assert cpt.best_value({"p": "p2", "q": "q2"}) == "v1"
        assert cpt.best_value({"p": "p2", "q": "q1"}) == "v2"

    def test_ambiguous_tie_raises(self, cpt):
        cpt.add_rule({"p": "p1"}, ["v1", "v2"])
        cpt.add_rule({"q": "q1"}, ["v2", "v1"])
        with pytest.raises(IncompleteTableError, match="ambiguous"):
            cpt.order_for({"p": "p1", "q": "q1"})

    def test_equal_rules_do_not_tie_on_distinct_assignments(self, cpt):
        cpt.add_rule({"p": "p1"}, ["v1", "v2"])
        cpt.add_rule({"q": "q1"}, ["v2", "v1"])
        # Where only one of them applies, lookup succeeds.
        assert cpt.best_value({"p": "p1", "q": "q2"}) == "v1"
        assert cpt.best_value({"p": "p2", "q": "q1"}) == "v2"

    def test_prefers(self, cpt):
        cpt.add_rule({}, ["v1", "v2"])
        assert cpt.prefers({"p": "p1", "q": "q1"}, "v1", "v2")
        assert not cpt.prefers({"p": "p1", "q": "q1"}, "v2", "v1")

    def test_prefers_checks_values(self, cpt):
        cpt.add_rule({}, ["v1", "v2"])
        with pytest.raises(UnknownValueError):
            cpt.prefers({"p": "p1", "q": "q1"}, "bogus", "v1")

    def test_improvements(self):
        cpt = CPT(variable=Variable("v", ("a", "b", "c")), parents=())
        cpt.add_rule({}, ["b", "c", "a"])
        assert cpt.improvements({}, "a") == ("b", "c")
        assert cpt.improvements({}, "c") == ("b",)
        assert cpt.improvements({}, "b") == ()

    def test_parent_space_size(self, cpt):
        assert cpt.parent_space_size() == 4

    def test_iter_parent_assignments(self, cpt):
        assignments = list(cpt.iter_parent_assignments())
        assert len(assignments) == 4
        assert {"p": "p1", "q": "q2"} in assignments
