"""Unit tests for dominance (improving-flip) queries."""

import pytest

from repro.cpnet import compare, dominates, figure2_network, improving_flips, optimal_outcome
from repro.cpnet.dominance import (
    BETTER,
    DOMINATES,
    EQUAL,
    INCOMPARABLE,
    NOT_DOMINATES,
    UNKNOWN,
    WORSE,
    flipping_sequence,
    worsening_flips,
)
from repro.cpnet.examples import FIGURE2_OPTIMAL


@pytest.fixture
def net():
    return figure2_network()


@pytest.fixture
def worst(net):
    """An outcome with every variable on its dispreferred side."""
    return {"c1": "c1_2", "c2": "c2_1", "c3": "c3_1", "c4": "c4_2", "c5": "c5_2"}


class TestImprovingFlips:
    def test_optimal_has_no_improving_flips(self, net):
        assert list(improving_flips(net, FIGURE2_OPTIMAL)) == []

    def test_flip_count_matches_rank_vector(self, net, worst):
        flips = list(improving_flips(net, worst))
        # c1, c2 are improvable; c3 given (c1_2,c2_1) prefers c3_2 so c3 is
        # improvable; c4,c5 given c3_1 prefer *_1 so both improvable.
        assert len(flips) == 5

    def test_each_flip_changes_one_variable(self, net, worst):
        for flip in improving_flips(net, worst):
            diff = [k for k in worst if flip[k] != worst[k]]
            assert len(diff) == 1

    def test_worsening_flips_are_inverse(self, net):
        worse = list(worsening_flips(net, FIGURE2_OPTIMAL))
        assert len(worse) == 5  # every variable can only get worse at the top
        for outcome in worse:
            assert FIGURE2_OPTIMAL in list(improving_flips(net, outcome))


class TestDominates:
    def test_optimal_dominates_everything_else(self, net, worst):
        assert dominates(net, FIGURE2_OPTIMAL, worst) == DOMINATES

    def test_no_outcome_dominates_optimal(self, net, worst):
        assert dominates(net, worst, FIGURE2_OPTIMAL) == NOT_DOMINATES

    def test_equal_outcomes_do_not_dominate(self, net):
        assert dominates(net, FIGURE2_OPTIMAL, FIGURE2_OPTIMAL) == NOT_DOMINATES

    def test_single_improving_flip_dominates(self, net):
        worse = dict(FIGURE2_OPTIMAL, c4="c4_1")
        assert dominates(net, FIGURE2_OPTIMAL, worse) == DOMINATES

    def test_budget_exhaustion_reports_unknown(self, net, worst):
        assert dominates(net, FIGURE2_OPTIMAL, worst, max_visited=1) == UNKNOWN

    def test_incomparable_pair(self, net):
        # Two single-flip-from-optimal outcomes on independent variables
        # are incomparable: each has exactly one improving flip, to optimal.
        left = dict(FIGURE2_OPTIMAL, c4="c4_1")
        right = dict(FIGURE2_OPTIMAL, c5="c5_1")
        assert dominates(net, left, right) == NOT_DOMINATES
        assert dominates(net, right, left) == NOT_DOMINATES


class TestFlippingSequence:
    def test_sequence_endpoints(self, net, worst):
        path = flipping_sequence(net, FIGURE2_OPTIMAL, worst)
        assert path is not None
        assert path[0] == worst
        assert path[-1] == FIGURE2_OPTIMAL

    def test_sequence_steps_are_single_improving_flips(self, net, worst):
        path = flipping_sequence(net, FIGURE2_OPTIMAL, worst)
        for before, after in zip(path, path[1:]):
            assert after in list(improving_flips(net, before))

    def test_no_sequence_when_not_dominated(self, net, worst):
        assert flipping_sequence(net, worst, FIGURE2_OPTIMAL) is None

    def test_no_sequence_for_equal(self, net):
        assert flipping_sequence(net, FIGURE2_OPTIMAL, FIGURE2_OPTIMAL) is None


class TestCompare:
    def test_better_and_worse(self, net, worst):
        assert compare(net, FIGURE2_OPTIMAL, worst) == BETTER
        assert compare(net, worst, FIGURE2_OPTIMAL) == WORSE

    def test_equal(self, net):
        assert compare(net, FIGURE2_OPTIMAL, dict(FIGURE2_OPTIMAL)) == EQUAL

    def test_incomparable(self, net):
        left = dict(FIGURE2_OPTIMAL, c4="c4_1")
        right = dict(FIGURE2_OPTIMAL, c5="c5_1")
        assert compare(net, left, right) == INCOMPARABLE

    def test_unknown_on_budget_exhaustion(self, net, worst):
        assert compare(net, FIGURE2_OPTIMAL, worst, max_visited=1) == UNKNOWN


class TestDominanceAgainstOptimality:
    def test_optimal_outcome_dominates_random_sample(self, net):
        from repro.cpnet import iter_outcomes

        best = optimal_outcome(net)
        for outcome in iter_outcomes(net, limit=16):
            if outcome == best:
                continue
            assert dominates(net, best, outcome) == DOMINATES
