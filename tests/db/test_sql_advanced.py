"""Unit tests for SQL aggregates, GROUP BY, and joins."""

import pytest

from repro.db import Database
from repro.db.sql import SqlError, execute


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "db"))
    execute(
        database,
        "CREATE TABLE pts (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "name TEXT NOT NULL, ward TEXT, age INTEGER)",
    )
    for name, ward, age in [
        ("alice", "icu", 40),
        ("bob", "icu", 30),
        ("carol", "er", 58),
        ("dave", "er", 8),
        ("eve", None, 25),
    ]:
        execute(database, "INSERT INTO pts (name, ward, age) VALUES (?, ?, ?)", [name, ward, age])
    execute(
        database,
        "CREATE TABLE scans (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "pid INTEGER NOT NULL, kind TEXT)",
    )
    for pid, kind in [(1, "ct"), (1, "xray"), (3, "ct"), (4, "us"), (99, "mri")]:
        execute(database, "INSERT INTO scans (pid, kind) VALUES (?, ?)", [pid, kind])
    yield database
    database.close()


class TestAggregates:
    def test_count_star(self, db):
        assert execute(db, "SELECT COUNT(*) FROM pts").rows == [{"COUNT(*)": 5}]

    def test_count_column_skips_nulls(self, db):
        assert execute(db, "SELECT COUNT(ward) FROM pts").rows == [{"COUNT(ward)": 4}]

    def test_sum_avg_min_max(self, db):
        row = execute(db, "SELECT SUM(age), AVG(age), MIN(age), MAX(age) FROM pts").rows[0]
        assert row["SUM(age)"] == 161
        assert row["AVG(age)"] == pytest.approx(32.2)
        assert (row["MIN(age)"], row["MAX(age)"]) == (8, 58)

    def test_aggregate_with_where(self, db):
        row = execute(db, "SELECT COUNT(*) FROM pts WHERE ward = 'icu'").rows[0]
        assert row["COUNT(*)"] == 1 + 1

    def test_aggregate_over_empty_set(self, db):
        row = execute(db, "SELECT COUNT(*), SUM(age) FROM pts WHERE age > 1000").rows[0]
        assert row["COUNT(*)"] == 0
        assert row["SUM(age)"] is None

    def test_star_aggregate_only_count(self, db):
        with pytest.raises(SqlError, match="name a column"):
            execute(db, "SELECT SUM(*) FROM pts")

    def test_bare_column_with_aggregate_rejected(self, db):
        with pytest.raises(SqlError, match="GROUP BY"):
            execute(db, "SELECT name, COUNT(*) FROM pts")

    def test_unknown_aggregate_column(self, db):
        with pytest.raises(SqlError, match="unknown column"):
            execute(db, "SELECT SUM(ghost) FROM pts")


class TestGroupBy:
    def test_counts_per_group(self, db):
        rows = execute(db, "SELECT ward, COUNT(*) FROM pts GROUP BY ward").rows
        by_ward = {row["ward"]: row["COUNT(*)"] for row in rows}
        assert by_ward == {"icu": 2, "er": 2, None: 1}

    def test_group_aggregates(self, db):
        rows = execute(
            db, "SELECT ward, AVG(age), MAX(age) FROM pts WHERE ward IS NOT NULL GROUP BY ward"
        ).rows
        by_ward = {row["ward"]: (row["AVG(age)"], row["MAX(age)"]) for row in rows}
        assert by_ward["icu"] == (35, 40)
        assert by_ward["er"] == (33, 58)

    def test_order_by_aggregate_label(self, db):
        rows = execute(
            db,
            "SELECT ward, COUNT(*) FROM pts WHERE ward IS NOT NULL "
            "GROUP BY ward ORDER BY ward",
        ).rows
        assert [row["ward"] for row in rows] == ["er", "icu"]

    def test_group_by_unknown_column(self, db):
        with pytest.raises(SqlError, match="unknown column"):
            execute(db, "SELECT ghost, COUNT(*) FROM pts GROUP BY ghost")

    def test_limit_applies_after_grouping(self, db):
        rows = execute(
            db, "SELECT ward, COUNT(*) FROM pts GROUP BY ward ORDER BY ward LIMIT 1"
        ).rows
        assert len(rows) == 1


class TestJoins:
    def test_inner_join(self, db):
        rows = execute(
            db,
            "SELECT p.name, s.kind FROM pts p JOIN scans s ON p.id = s.pid "
            "ORDER BY p.name",
        ).rows
        assert rows == [
            {"p.name": "alice", "s.kind": "ct"},
            {"p.name": "alice", "s.kind": "xray"},
            {"p.name": "carol", "s.kind": "ct"},
            {"p.name": "dave", "s.kind": "us"},
        ]

    def test_join_on_either_order(self, db):
        forward = execute(
            db, "SELECT p.name FROM pts p JOIN scans s ON p.id = s.pid"
        ).rowcount
        reverse = execute(
            db, "SELECT p.name FROM pts p JOIN scans s ON s.pid = p.id"
        ).rowcount
        assert forward == reverse == 4

    def test_join_with_where(self, db):
        rows = execute(
            db,
            "SELECT p.name FROM pts p JOIN scans s ON p.id = s.pid "
            "WHERE s.kind = 'ct' ORDER BY p.name",
        ).rows
        assert [row["p.name"] for row in rows] == ["alice", "carol"]

    def test_join_star_qualifies_columns(self, db):
        result = execute(db, "SELECT * FROM pts p JOIN scans s ON p.id = s.pid")
        assert "p.name" in result.columns and "s.kind" in result.columns

    def test_join_with_aggregates(self, db):
        rows = execute(
            db,
            "SELECT p.name, COUNT(s.id) FROM pts p JOIN scans s ON p.id = s.pid "
            "GROUP BY p.name ORDER BY p.name",
        ).rows
        assert rows[0] == {"p.name": "alice", "COUNT(s.id)": 2}

    def test_unmatched_rows_excluded(self, db):
        # scan with pid=99 has no patient; eve has no scans.
        names = {
            row["p.name"]
            for row in execute(
                db, "SELECT p.name FROM pts p JOIN scans s ON p.id = s.pid"
            ).rows
        }
        assert "eve" not in names

    def test_as_keyword_alias(self, db):
        rows = execute(
            db, "SELECT a.name FROM pts AS a JOIN scans AS b ON a.id = b.pid"
        ).rows
        assert len(rows) == 4

    def test_unqualified_on_rejected(self, db):
        with pytest.raises(SqlError, match="alias-qualified"):
            execute(db, "SELECT p.name FROM pts p JOIN scans s ON id = pid")

    def test_wrong_alias_in_on(self, db):
        with pytest.raises(SqlError, match="aliased"):
            execute(db, "SELECT p.name FROM pts p JOIN scans s ON x.id = s.pid")

    def test_fig7_catalog_join(self, tmp_path):
        """The schema's own natural join: catalog row -> object table."""
        from repro.db import MultimediaObjectStore

        database = Database(str(tmp_path / "db-fig7"))
        store = MultimediaObjectStore(database)
        store.store_image(b"pixels", quality=3)
        rows = execute(
            database,
            "SELECT c.FLD_NAME, i.FLD_QUALITY FROM MULTIMEDIA_OBJECTS_TABLE c "
            "JOIN IMAGE_OBJECTS_TABLE i ON c.ID = i.ID WHERE c.FLD_NAME = 'Image'",
        ).rows
        assert rows == [{"c.FLD_NAME": "Image", "i.FLD_QUALITY": 3}]
        database.close()
