"""Unit tests for indexes and heap tables."""

import pytest

from repro.db import Column, Eq, Gt, INTEGER, TEXT, TableSchema
from repro.db.index import HashIndex, OrderedIndex, make_index
from repro.db.table import Table
from repro.errors import DatabaseError, DuplicateKeyError, SchemaError


def make_table() -> Table:
    return Table(
        TableSchema(
            "pts",
            (
                Column("id", INTEGER, primary_key=True, autoincrement=True),
                Column("name", TEXT, nullable=False),
                Column("ward", TEXT),
                Column("age", INTEGER),
            ),
        )
    )


class TestHashIndex:
    def test_insert_lookup_delete(self):
        ix = HashIndex("ix", "ward")
        ix.insert("a", 1)
        ix.insert("a", 2)
        ix.insert("b", 3)
        assert ix.lookup("a") == (1, 2)
        ix.delete("a", 1)
        assert ix.lookup("a") == (2,)
        assert len(ix) == 2

    def test_nulls_not_indexed(self):
        ix = HashIndex("ix", "ward")
        ix.insert(None, 1)
        assert len(ix) == 0
        ix.delete(None, 1)  # no-op, no error

    def test_unique_violation(self):
        ix = HashIndex("ix", "ward", unique=True)
        ix.insert("a", 1)
        with pytest.raises(DuplicateKeyError):
            ix.insert("a", 2)


class TestOrderedIndex:
    def test_point_lookup(self):
        ix = OrderedIndex("ix", "age")
        for age, pk in [(30, 1), (40, 2), (30, 3)]:
            ix.insert(age, pk)
        assert ix.lookup(30) == (1, 3)
        assert ix.lookup(99) == ()

    def test_range(self):
        ix = OrderedIndex("ix", "age")
        for age, pk in [(10, 1), (20, 2), (30, 3), (40, 4)]:
            ix.insert(age, pk)
        assert list(ix.range(15, 35)) == [2, 3]
        assert list(ix.range(None, 20)) == [1, 2]
        assert list(ix.range(30, None)) == [3, 4]
        assert list(ix.range(10, 30, include_low=False, include_high=False)) == [2]

    def test_delete_compacts_keys(self):
        ix = OrderedIndex("ix", "age")
        ix.insert(10, 1)
        ix.delete(10, 1)
        assert list(ix.range()) == []
        assert len(ix) == 0

    def test_unique(self):
        ix = OrderedIndex("ix", "age", unique=True)
        ix.insert(10, 1)
        with pytest.raises(DuplicateKeyError):
            ix.insert(10, 2)

    def test_factory(self):
        assert make_index("hash", "n", "c").kind == "hash"
        assert make_index("ordered", "n", "c").kind == "ordered"
        with pytest.raises(DatabaseError):
            make_index("btree", "n", "c")


class TestTableCrud:
    def test_autoincrement(self):
        table = make_table()
        first = table.insert({"name": "a"})
        second = table.insert({"name": "b"})
        assert (first["id"], second["id"]) == (1, 2)

    def test_explicit_pk_advances_counter(self):
        table = make_table()
        table.insert({"id": 10, "name": "a"})
        assert table.insert({"name": "b"})["id"] == 11

    def test_duplicate_pk(self):
        table = make_table()
        table.insert({"id": 1, "name": "a"})
        with pytest.raises(DuplicateKeyError):
            table.insert({"id": 1, "name": "b"})

    def test_get_returns_copy(self):
        table = make_table()
        pk = table.insert({"name": "a"})["id"]
        row = table.get(pk)
        row["name"] = "mutated"
        assert table.get(pk)["name"] == "a"

    def test_update(self):
        table = make_table()
        pk = table.insert({"name": "a", "age": 30})["id"]
        after = table.update(pk, {"age": 31})
        assert after["age"] == 31
        assert table.get(pk)["name"] == "a"

    def test_update_pk_immutable(self):
        table = make_table()
        pk = table.insert({"name": "a"})["id"]
        with pytest.raises(SchemaError, match="immutable"):
            table.update(pk, {"id": pk + 1})

    def test_update_missing_row(self):
        with pytest.raises(DatabaseError, match="no row"):
            make_table().update(99, {"age": 1})

    def test_delete(self):
        table = make_table()
        pk = table.insert({"name": "a"})["id"]
        table.delete(pk)
        assert table.get(pk) is None
        assert len(table) == 0

    def test_select_and_count(self):
        table = make_table()
        for name, age in [("a", 30), ("b", 40), ("c", 50)]:
            table.insert({"name": name, "age": age})
        assert [r["name"] for r in table.select(Gt("age", 35))] == ["b", "c"]
        assert table.count(Gt("age", 35)) == 2
        assert len(table.select()) == 3


class TestTableIndexing:
    def test_index_backfill(self):
        table = make_table()
        table.insert({"name": "a", "ward": "w1"})
        table.insert({"name": "b", "ward": "w2"})
        table.create_index("ward")
        assert [r["name"] for r in table.select(Eq("ward", "w2"))] == ["b"]

    def test_index_maintained_on_update(self):
        table = make_table()
        pk = table.insert({"name": "a", "ward": "w1"})["id"]
        table.create_index("ward")
        table.update(pk, {"ward": "w2"})
        assert table.index_on("ward").lookup("w1") == ()
        assert table.index_on("ward").lookup("w2") == (pk,)

    def test_index_maintained_on_delete(self):
        table = make_table()
        pk = table.insert({"name": "a", "ward": "w1"})["id"]
        table.create_index("ward")
        table.delete(pk)
        assert table.index_on("ward").lookup("w1") == ()

    def test_unique_index_blocks_insert_and_update(self):
        table = make_table()
        table.create_index("name", unique=True)
        table.insert({"name": "a"})
        with pytest.raises(DuplicateKeyError):
            table.insert({"name": "a"})
        pk = table.insert({"name": "b"})["id"]
        with pytest.raises(DuplicateKeyError):
            table.update(pk, {"name": "a"})

    def test_unique_violation_leaves_state_clean(self):
        table = make_table()
        table.create_index("name", unique=True)
        table.insert({"name": "a"})
        before = len(table)
        with pytest.raises(DuplicateKeyError):
            table.insert({"name": "a"})
        assert len(table) == before
        assert len(table.index_on("name").lookup("a")) == 1

    def test_duplicate_index_rejected(self):
        table = make_table()
        table.create_index("ward")
        with pytest.raises(DatabaseError, match="already exists"):
            table.create_index("ward")

    def test_index_on_unknown_column(self):
        with pytest.raises(SchemaError):
            make_table().create_index("ghost")

    def test_range_select_requires_ordered_index(self):
        table = make_table()
        with pytest.raises(DatabaseError, match="ordered index"):
            table.range_select("age", 0, 100)
        table.create_index("age", kind="ordered")
        for name, age in [("a", 30), ("b", 40), ("c", 50)]:
            table.insert({"name": name, "age": age})
        assert [r["name"] for r in table.range_select("age", 35, 55)] == ["b", "c"]

    def test_hash_preferred_over_ordered_for_points(self):
        table = make_table()
        table.create_index("ward", kind="ordered")
        table.create_index("ward", kind="hash")
        assert table.index_on("ward").kind == "hash"

    def test_rebuild_indexes(self):
        table = make_table()
        table.create_index("ward")
        table.insert({"name": "a", "ward": "w1"})
        table.index_on("ward").clear()
        table.rebuild_indexes()
        assert len(table.index_on("ward").lookup("w1")) == 1


class TestRangeScanRouting:
    """Comparison predicates route through ordered indexes (PR 5)."""

    def _populated(self):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            table = make_table()
            table.create_index("age", kind="ordered")
            for i in range(20):
                table.insert({"name": f"p{i}", "age": i})
        return table, registry

    def test_range_predicate_uses_ordered_index(self):
        from repro.db import And, Ge, Lt

        table, registry = self._populated()
        rows = table.select(And(Ge("age", 5), Lt("age", 8)))
        assert sorted(r["age"] for r in rows) == [5, 6, 7]
        counters = registry.snapshot()["counters"]
        assert counters["db.access.range_scan"] == 1
        assert counters["db.access.full_scan"] == 0
        # Only the k in-range rows were examined, not all 20.
        assert counters["db.rows_scanned"] == 3

    def test_between_uses_ordered_index(self):
        from repro.db import Between

        table, registry = self._populated()
        rows = table.select(Between("age", 17, 25))
        assert sorted(r["age"] for r in rows) == [17, 18, 19]
        counters = registry.snapshot()["counters"]
        assert counters["db.access.range_scan"] == 1
        assert counters["db.rows_scanned"] == 3

    def test_equality_hint_still_preferred(self):
        from repro.db import And, Eq, Gt

        table, registry = self._populated()
        table.select(And(Eq("id", 3), Gt("age", 0)))
        counters = registry.snapshot()["counters"]
        assert counters["db.access.pk_lookup"] == 1
        assert counters["db.access.range_scan"] == 0

    def test_no_ordered_index_falls_back_to_full_scan(self):
        from repro.db import Gt
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            table = make_table()  # no index on age at all
            for i in range(10):
                table.insert({"name": f"p{i}", "age": i})
        rows = table.select(Gt("age", 7))
        assert sorted(r["age"] for r in rows) == [8, 9]
        counters = registry.snapshot()["counters"]
        assert counters["db.access.full_scan"] == 1
        assert counters["db.access.range_scan"] == 0

    def test_explain_reports_range_path(self):
        from repro.db import Gt
        from repro.db.query import ALL

        table, _ = self._populated()
        assert table.explain(Gt("age", 5)) == "range:pts_age_ordered"
        assert table.explain(ALL) == "full-scan"

    def test_exclusive_bounds_respected(self):
        from repro.db import And, Gt, Le

        table, _ = self._populated()
        rows = table.select(And(Gt("age", 5), Le("age", 7)))
        assert sorted(r["age"] for r in rows) == [6, 7]
