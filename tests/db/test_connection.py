"""Unit tests for the JDBC-like connection facade."""

import pytest

from repro.db import connect
from repro.errors import DatabaseError


@pytest.fixture
def conn(tmp_path):
    connection = connect(str(tmp_path / "db"))
    connection.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)"
    )
    yield connection
    connection.close()


class TestCursor:
    def test_fetchone_exhausts(self, conn):
        conn.execute("INSERT INTO t (v) VALUES ('a')")
        cur = conn.execute("SELECT v FROM t")
        assert cur.fetchone() == {"v": "a"}
        assert cur.fetchone() is None

    def test_fetchall_after_fetchone(self, conn):
        for v in "abc":
            conn.execute("INSERT INTO t (v) VALUES (?)", [v])
        cur = conn.execute("SELECT v FROM t ORDER BY v")
        cur.fetchone()
        assert [r["v"] for r in cur.fetchall()] == ["b", "c"]
        assert cur.fetchall() == []

    def test_fetchmany(self, conn):
        for v in "abcd":
            conn.execute("INSERT INTO t (v) VALUES (?)", [v])
        cur = conn.execute("SELECT v FROM t ORDER BY v")
        assert len(cur.fetchmany(3)) == 3
        assert len(cur.fetchmany(3)) == 1

    def test_iteration(self, conn):
        for v in "ab":
            conn.execute("INSERT INTO t (v) VALUES (?)", [v])
        cur = conn.execute("SELECT v FROM t ORDER BY v")
        assert [row["v"] for row in cur] == ["a", "b"]

    def test_rowcount_and_description(self, conn):
        cur = conn.cursor()
        assert cur.rowcount == -1
        cur.execute("INSERT INTO t (v) VALUES ('a')")
        assert cur.rowcount == 1
        cur.execute("SELECT v FROM t")
        assert cur.description == (("v", None),)

    def test_fetch_before_execute(self, conn):
        cur = conn.cursor()
        with pytest.raises(DatabaseError):
            cur.fetchone()
        with pytest.raises(DatabaseError):
            cur.fetchall()

    def test_executemany(self, conn):
        conn.cursor().executemany("INSERT INTO t (v) VALUES (?)", [["a"], ["b"]])
        assert conn.execute("SELECT * FROM t").rowcount == 2


class TestTransactionControl:
    def test_manual_commit(self, tmp_path):
        conn = connect(str(tmp_path / "db"), autocommit=False)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        conn.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
        conn.commit()
        conn.execute("INSERT INTO t (id, v) VALUES (2, 'b')")
        conn.rollback()
        assert conn.execute("SELECT * FROM t").rowcount == 1
        conn.close()

    def test_context_manager_commits(self, tmp_path):
        with connect(str(tmp_path / "db"), autocommit=False) as conn:
            conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            conn.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
        with connect(str(tmp_path / "db")) as conn:
            assert conn.execute("SELECT * FROM t").rowcount == 1

    def test_context_manager_rolls_back_on_error(self, tmp_path):
        with connect(str(tmp_path / "db")) as conn:
            conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        with pytest.raises(RuntimeError):
            with connect(str(tmp_path / "db"), autocommit=False) as conn:
                conn.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
                raise RuntimeError("boom")
        with connect(str(tmp_path / "db")) as conn:
            assert conn.execute("SELECT * FROM t").rowcount == 0

    def test_closed_connection_rejects_everything(self, conn):
        conn.close()
        with pytest.raises(DatabaseError, match="closed"):
            conn.cursor()
        with pytest.raises(DatabaseError):
            conn.execute("SELECT * FROM t")
        with pytest.raises(DatabaseError):
            conn.commit()

    def test_double_close_is_safe(self, conn):
        conn.close()
        conn.close()
