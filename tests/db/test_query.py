"""Unit tests for query predicates."""

import pytest

from repro.db import And, Between, Eq, Ge, Gt, In, Le, Like, Lt, Ne, Not, Or
from repro.db.query import ALL, IsNull

ROW = {"id": 3, "name": "alice", "age": 41, "note": None}


class TestComparisons:
    def test_eq(self):
        assert Eq("name", "alice").matches(ROW)
        assert not Eq("name", "bob").matches(ROW)

    def test_eq_null_never_matches(self):
        assert not Eq("note", None).matches(ROW)

    def test_ne(self):
        assert Ne("name", "bob").matches(ROW)
        assert not Ne("note", "x").matches(ROW)  # NULL != x is not TRUE (SQL-ish)

    def test_ordering(self):
        assert Lt("age", 50).matches(ROW)
        assert Le("age", 41).matches(ROW)
        assert Gt("age", 40).matches(ROW)
        assert Ge("age", 41).matches(ROW)
        assert not Lt("age", 41).matches(ROW)

    def test_cross_type_comparison_is_false(self):
        assert not Lt("name", 10).matches(ROW)
        assert not Gt("age", "x").matches(ROW)

    def test_between(self):
        assert Between("age", 40, 42).matches(ROW)
        assert not Between("age", 42, 50).matches(ROW)

    def test_missing_column(self):
        assert not Eq("ghost", 1).matches(ROW)
        assert not Lt("ghost", 1).matches(ROW)


class TestSetAndPattern:
    def test_in(self):
        assert In("age", [40, 41]).matches(ROW)
        assert not In("age", [1, 2]).matches(ROW)

    def test_in_single_value_hint(self):
        assert In("age", [41]).equality_hints() == {"age": 41}
        assert In("age", [40, 41]).equality_hints() == {}

    def test_like_percent(self):
        assert Like("name", "al%").matches(ROW)
        assert Like("name", "%ice").matches(ROW)
        assert not Like("name", "bob%").matches(ROW)

    def test_like_underscore(self):
        assert Like("name", "_lice").matches(ROW)
        assert not Like("name", "_ice").matches(ROW)

    def test_like_escapes_regex_chars(self):
        assert Like("name", "alice").matches(ROW)
        assert not Like("name", "a.ice").matches(ROW)

    def test_like_non_string(self):
        assert not Like("age", "4%").matches(ROW)

    def test_is_null(self):
        assert IsNull("note").matches(ROW)
        assert not IsNull("age").matches(ROW)


class TestCombinators:
    def test_and_or_not(self):
        pred = And(Eq("name", "alice"), Gt("age", 40))
        assert pred.matches(ROW)
        assert Or(Eq("name", "bob"), Eq("id", 3)).matches(ROW)
        assert Not(Eq("name", "bob")).matches(ROW)

    def test_operator_sugar(self):
        assert (Eq("name", "alice") & Gt("age", 40)).matches(ROW)
        assert (Eq("name", "bob") | Eq("id", 3)).matches(ROW)
        assert (~Eq("name", "bob")).matches(ROW)

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()

    def test_all(self):
        assert ALL.matches(ROW)
        assert ALL.matches({})


class TestHints:
    def test_eq_hint(self):
        assert Eq("id", 3).equality_hints() == {"id": 3}

    def test_and_merges_hints(self):
        pred = And(Eq("id", 3), Eq("name", "alice"), Gt("age", 1))
        assert pred.equality_hints() == {"id": 3, "name": "alice"}

    def test_or_not_yield_no_hints(self):
        assert Or(Eq("id", 3), Eq("id", 4)).equality_hints() == {}
        assert Not(Eq("id", 3)).equality_hints() == {}

    def test_inequality_yields_no_hint(self):
        assert Gt("age", 1).equality_hints() == {}


class TestRangeHints:
    def test_comparison_bounds(self):
        assert Lt("age", 50).range_hints() == {"age": (None, False, 50, False)}
        assert Le("age", 50).range_hints() == {"age": (None, False, 50, True)}
        assert Gt("age", 18).range_hints() == {"age": (18, False, None, False)}
        assert Ge("age", 18).range_hints() == {"age": (18, True, None, False)}

    def test_between_is_inclusive(self):
        assert Between("age", 18, 65).range_hints() == {"age": (18, True, 65, True)}

    def test_and_intersects_bounds(self):
        pred = And(Ge("age", 18), Lt("age", 65))
        assert pred.range_hints() == {"age": (18, True, 65, False)}

    def test_and_takes_tighter_bound(self):
        pred = And(Gt("age", 18), Ge("age", 18), Lt("age", 70), Le("age", 65))
        # Exclusive wins the low tie; the lower high wins outright.
        assert pred.range_hints() == {"age": (18, False, 65, True)}

    def test_and_tracks_columns_independently(self):
        pred = And(Gt("age", 18), Lt("id", 100))
        assert pred.range_hints() == {
            "age": (18, False, None, False),
            "id": (None, False, 100, False),
        }

    def test_or_not_eq_yield_no_range_hints(self):
        assert Or(Gt("age", 1), Lt("age", 0)).range_hints() == {}
        assert Not(Gt("age", 1)).range_hints() == {}
        assert Eq("age", 41).range_hints() == {}
        assert ALL.range_hints() == {}
