"""Tests for engine maintenance: auto-checkpoint and EXPLAIN."""

import os

import pytest

from repro.db import Column, Database, Eq, Gt, INTEGER, TEXT, TableSchema
from repro.db.query import ALL, And


def schema():
    return TableSchema(
        "t",
        (
            Column("id", INTEGER, primary_key=True, autoincrement=True),
            Column("ward", TEXT),
        ),
    )


class TestAutoCheckpoint:
    def test_checkpoint_triggers_on_journal_growth(self, tmp_path):
        db = Database(str(tmp_path / "db"), checkpoint_journal_bytes=4096)
        db.create_table(schema())
        for i in range(200):
            db.insert("t", {"ward": f"ward-{i}"})
        assert db.auto_checkpoints >= 1
        # Journal was compacted below the threshold at the last checkpoint.
        assert db._journal.size_bytes < 4096
        db.close()
        with Database(str(tmp_path / "db")) as reopened:
            assert reopened.count("t") == 200

    def test_disabled_when_none(self, tmp_path):
        db = Database(str(tmp_path / "db"), checkpoint_journal_bytes=None)
        db.create_table(schema())
        for i in range(200):
            db.insert("t", {"ward": f"w{i}"})
        assert db.auto_checkpoints == 0
        assert db._journal.size_bytes > 4096
        db.close()

    def test_no_checkpoint_inside_explicit_transaction(self, tmp_path):
        db = Database(str(tmp_path / "db"), checkpoint_journal_bytes=512)
        db.create_table(schema())
        with db.transaction():
            for i in range(100):
                db.insert("t", {"ward": f"w{i}"})
        # The commit at the end may checkpoint, but never mid-transaction.
        assert db.count("t") == 100
        db.close()

    def test_snapshot_file_written(self, tmp_path):
        db = Database(str(tmp_path / "db"), checkpoint_journal_bytes=1024)
        db.create_table(schema())
        for i in range(100):
            db.insert("t", {"ward": "w"})
        assert os.path.exists(str(tmp_path / "db" / "snapshot.json"))
        db.close()


class TestExplain:
    @pytest.fixture
    def db(self, tmp_path):
        database = Database(str(tmp_path / "db"))
        database.create_table(schema())
        database.create_index("t", "ward")
        yield database
        database.close()

    def test_pk_lookup(self, db):
        assert db.table("t").explain(Eq("id", 3)) == "pk-lookup"

    def test_index_path(self, db):
        assert db.table("t").explain(Eq("ward", "icu")) == "index:t_ward_hash"
        # An inequality contributes no hint; the ward index still applies.
        assert db.table("t").explain(And(Eq("ward", "icu"), Gt("id", 0))) == "index:t_ward_hash"
        # AND with a pk hint prefers the pk.
        assert db.table("t").explain(And(Eq("ward", "icu"), Eq("id", 1))) == "pk-lookup"

    def test_full_scan(self, db):
        assert db.table("t").explain(ALL) == "full-scan"
        assert db.table("t").explain(Gt("id", 5)) == "full-scan"
