"""Unit tests for the SQL dialect."""

import pytest

from repro.db import Database
from repro.db.sql import SqlError, execute, tokenize
from repro.errors import DatabaseError


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "db"))
    execute(
        database,
        "CREATE TABLE pts (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "name TEXT NOT NULL, ward TEXT, age INTEGER)",
    )
    for name, ward, age in [
        ("alice", "icu", 41),
        ("bob", "icu", 33),
        ("carol", "er", 58),
        ("dave", None, 7),
    ]:
        execute(
            database,
            "INSERT INTO pts (name, ward, age) VALUES (?, ?, ?)",
            [name, ward, age],
        )
    yield database
    database.close()


class TestTokenizer:
    def test_kinds(self):
        tokens = tokenize("SELECT a FROM t WHERE x = 'it''s' AND y >= 3.5")
        kinds = [t.kind for t in tokens]
        assert kinds.count("keyword") == 4  # SELECT FROM WHERE AND
        assert any(t.kind == "string" for t in tokens)
        assert tokens[-1].kind == "end"

    def test_bad_input(self):
        with pytest.raises(SqlError, match="tokenize"):
            tokenize("SELECT @ FROM t")


class TestSelect:
    def test_star(self, db):
        result = execute(db, "SELECT * FROM pts")
        assert result.rowcount == 4
        assert set(result.columns) == {"id", "name", "ward", "age"}

    def test_projection(self, db):
        result = execute(db, "SELECT name FROM pts WHERE age > 40 ORDER BY name")
        assert [r["name"] for r in result.rows] == ["alice", "carol"]
        assert result.columns == ("name",)

    def test_projection_validates_columns(self, db):
        with pytest.raises(Exception):
            execute(db, "SELECT ghost FROM pts")

    def test_where_combinations(self, db):
        rows = execute(db, "SELECT name FROM pts WHERE ward = 'icu' AND age < 40").rows
        assert [r["name"] for r in rows] == ["bob"]
        rows = execute(db, "SELECT name FROM pts WHERE age < 10 OR age > 50 ORDER BY age").rows
        assert [r["name"] for r in rows] == ["dave", "carol"]

    def test_where_not_and_parens(self, db):
        rows = execute(
            db, "SELECT name FROM pts WHERE NOT (ward = 'icu' OR age > 50) ORDER BY name"
        ).rows
        assert [r["name"] for r in rows] == ["dave"]

    def test_like(self, db):
        rows = execute(db, "SELECT name FROM pts WHERE name LIKE '%a%' ORDER BY name").rows
        assert [r["name"] for r in rows] == ["alice", "carol", "dave"]

    def test_not_like(self, db):
        rows = execute(db, "SELECT name FROM pts WHERE name NOT LIKE '%a%'").rows
        assert [r["name"] for r in rows] == ["bob"]

    def test_in(self, db):
        rows = execute(db, "SELECT name FROM pts WHERE name IN ('alice', 'dave') ORDER BY name").rows
        assert [r["name"] for r in rows] == ["alice", "dave"]

    def test_between(self, db):
        rows = execute(db, "SELECT name FROM pts WHERE age BETWEEN 30 AND 45 ORDER BY age").rows
        assert [r["name"] for r in rows] == ["bob", "alice"]

    def test_is_null(self, db):
        assert [r["name"] for r in execute(db, "SELECT name FROM pts WHERE ward IS NULL").rows] == ["dave"]
        assert len(execute(db, "SELECT name FROM pts WHERE ward IS NOT NULL").rows) == 3

    def test_order_desc_and_limit(self, db):
        rows = execute(db, "SELECT name FROM pts ORDER BY age DESC LIMIT 2").rows
        assert [r["name"] for r in rows] == ["carol", "alice"]

    def test_order_by_nulls_last(self, db):
        rows = execute(db, "SELECT ward FROM pts ORDER BY ward").rows
        assert rows[-1]["ward"] is None


class TestDml:
    def test_insert_returns_row(self, db):
        result = execute(db, "INSERT INTO pts (name, age) VALUES ('eve', 25)")
        assert result.rowcount == 1
        assert result.rows[0]["id"] > 0

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SqlError, match="columns but"):
            execute(db, "INSERT INTO pts (name, age) VALUES ('eve')")

    def test_update(self, db):
        count = execute(db, "UPDATE pts SET ward = 'er' WHERE ward = 'icu'").rowcount
        assert count == 2
        assert execute(db, "SELECT name FROM pts WHERE ward = 'er'").rowcount == 3

    def test_update_multiple_columns(self, db):
        execute(db, "UPDATE pts SET ward = 'x', age = 1 WHERE name = 'dave'")
        row = execute(db, "SELECT ward, age FROM pts WHERE name = 'dave'").rows[0]
        assert (row["ward"], row["age"]) == ("x", 1)

    def test_delete(self, db):
        assert execute(db, "DELETE FROM pts WHERE age < 40").rowcount == 2
        assert execute(db, "SELECT * FROM pts").rowcount == 2

    def test_delete_all(self, db):
        assert execute(db, "DELETE FROM pts").rowcount == 4


class TestDdl:
    def test_create_index(self, db):
        execute(db, "CREATE INDEX ON pts (ward)")
        assert db.table("pts").index_on("ward") is not None

    def test_create_unique_index_enforced(self, db):
        execute(db, "CREATE UNIQUE INDEX ON pts (name)")
        with pytest.raises(Exception):
            execute(db, "INSERT INTO pts (name) VALUES ('alice')")

    def test_create_ordered_index(self, db):
        execute(db, "CREATE INDEX ON pts (age) USING ORDERED")
        assert db.table("pts").index_on("age").kind == "ordered"

    def test_drop_table(self, db):
        execute(db, "DROP TABLE pts")
        with pytest.raises(DatabaseError):
            db.table("pts")


class TestErrors:
    def test_params_must_all_bind(self, db):
        with pytest.raises(SqlError, match="placeholders"):
            execute(db, "SELECT * FROM pts WHERE age = ?", [1, 2])

    def test_missing_params(self, db):
        with pytest.raises(SqlError, match="not enough"):
            execute(db, "SELECT * FROM pts WHERE age = ? AND name = ?", [1])

    def test_trailing_tokens(self, db):
        with pytest.raises(SqlError, match="trailing"):
            execute(db, "SELECT * FROM pts WHERE age > 1 5")

    def test_unknown_statement(self, db):
        with pytest.raises(SqlError, match="keyword"):
            execute(db, "VACUUM pts")
        with pytest.raises(SqlError, match="unsupported"):
            execute(db, "BETWEEN 1 AND 2")

    def test_limit_must_be_integer(self, db):
        with pytest.raises(SqlError, match="LIMIT"):
            execute(db, "SELECT * FROM pts LIMIT 'x'")

    def test_like_needs_string(self, db):
        with pytest.raises(SqlError, match="LIKE"):
            execute(db, "SELECT * FROM pts WHERE name LIKE 5")

    def test_string_escaping(self, db):
        execute(db, "INSERT INTO pts (name) VALUES ('o''brien')")
        rows = execute(db, "SELECT name FROM pts WHERE name = 'o''brien'").rows
        assert rows[0]["name"] == "o'brien"
