"""Unit tests for the multimedia object store (Fig. 7 catalog + ORM)."""

import pytest

from repro.db import (
    AUDIO_OBJECTS_TABLE,
    Column,
    Database,
    IMAGE_OBJECTS_TABLE,
    INTEGER,
    MultimediaObjectStore,
    TEXT,
    TableSchema,
)
from repro.db.types import BLOB
from repro.document import build_sample_medical_record
from repro.errors import DatabaseError


@pytest.fixture
def store(tmp_path):
    db = Database(str(tmp_path / "db"))
    yield MultimediaObjectStore(db)
    db.close()


class TestCatalog:
    def test_builtin_types(self, store):
        names = [t["FLD_NAME"] for t in store.list_types()]
        assert names == ["Image", "Audio", "Compressed", "Document"]

    def test_catalog_idempotent(self, store):
        # Re-wrapping the same database must not duplicate catalog rows.
        MultimediaObjectStore(store.db)
        assert len(store.list_types()) == 4

    def test_object_table_dispatch(self, store):
        assert store.object_table_for("Image") == IMAGE_OBJECTS_TABLE
        assert store.object_table_for("Audio") == AUDIO_OBJECTS_TABLE
        with pytest.raises(DatabaseError, match="no multimedia type"):
            store.object_table_for("Video")

    def test_register_new_type(self, store):
        store.db.create_table(
            TableSchema(
                "VIDEO_OBJECTS_TABLE",
                (
                    Column("ID", INTEGER, primary_key=True, autoincrement=True),
                    Column("FLD_CODEC", TEXT),
                    Column("FLD_DATA", BLOB, nullable=False),
                ),
            )
        )
        store.register_type("Video", "video/mp4", "VIDEO_OBJECTS_TABLE")
        obj = store.store("Video", {"FLD_CODEC": "h264"}, b"frames")
        row, payload = store.fetch(obj)
        assert payload == b"frames"
        assert row["FLD_CODEC"] == "h264"

    def test_register_type_requires_table(self, store):
        with pytest.raises(DatabaseError):
            store.register_type("Video", "video/mp4", "NO_SUCH_TABLE")


class TestObjects:
    def test_image_round_trip(self, store):
        obj = store.store_image(b"pixels", quality=3, texts=[{"x": 1, "y": 2, "text": "note"}])
        row, payload = store.fetch(obj)
        assert payload == b"pixels"
        assert row["FLD_QUALITY"] == 3
        assert row["FLD_TEXTS"][0]["text"] == "note"

    def test_image_with_compression_matrix(self, store):
        obj = store.store_image(b"pixels", compression_matrix=b"matrix")
        row, _ = store.fetch(obj)
        assert store.db.get_blob(row["FLD_CM"]) == b"matrix"

    def test_audio_round_trip(self, store):
        obj = store.store_audio(b"samples", filename="note.wav", sectors=[{"t0": 0, "t1": 5}])
        row, payload = store.fetch(obj)
        assert payload == b"samples"
        assert row["FLD_FILENAME"] == "note.wav"

    def test_compressed_round_trip(self, store):
        obj = store.store_compressed(b"stream", header=b"hdr", filename="ct.mlc")
        row, payload = store.fetch(obj)
        assert payload == b"stream"
        assert row["FLD_FILESIZE"] == len(b"stream")
        assert store.db.get_blob(row["FLD_HEADER"]) == b"hdr"

    def test_media_ref_round_trip(self, store):
        obj = store.store_image(b"pixels")
        row, payload = store.fetch(obj.media_ref)
        assert payload == b"pixels"

    def test_fetch_row_skips_payload(self, store):
        obj = store.store_image(b"pixels", quality=1)
        row = store.fetch_row(obj)
        assert row["FLD_QUALITY"] == 1

    def test_bad_media_ref(self, store):
        with pytest.raises(DatabaseError, match="bad media reference"):
            store.fetch("nonsense")
        with pytest.raises(DatabaseError, match="no object"):
            store.fetch(f"{IMAGE_OBJECTS_TABLE}:999")

    def test_delete_removes_row_and_blob(self, store):
        obj = store.store_image(b"pixels")
        ref = store.fetch_row(obj)["FLD_DATA"]
        store.delete(obj)
        with pytest.raises(DatabaseError):
            store.fetch(obj)
        assert ref.blob_id not in store.db.blobs

    def test_list_objects(self, store):
        store.store_image(b"a")
        store.store_image(b"b")
        assert len(store.list_objects("Image")) == 2


class TestDocuments:
    def test_round_trip(self, store):
        doc = build_sample_medical_record()
        store.store_document(doc)
        loaded = store.fetch_document(doc.doc_id)
        assert loaded.default_presentation() == doc.default_presentation()
        assert loaded.title == doc.title

    def test_replace_updates_in_place(self, store):
        doc = build_sample_medical_record()
        store.store_document(doc)
        doc.title = "updated title"
        store.store_document(doc)
        assert store.fetch_document(doc.doc_id).title == "updated title"
        assert len(store.list_documents()) == 1

    def test_replace_reclaims_old_blob(self, store):
        doc = build_sample_medical_record()
        store.store_document(doc)
        blobs_before = len(store.db.blobs)
        store.store_document(doc)
        assert len(store.db.blobs) == blobs_before

    def test_missing_document(self, store):
        with pytest.raises(DatabaseError, match="no document"):
            store.fetch_document("ghost")

    def test_exists_and_delete(self, store):
        doc = build_sample_medical_record()
        store.store_document(doc)
        assert store.document_exists(doc.doc_id)
        store.delete_document(doc.doc_id)
        assert not store.document_exists(doc.doc_id)
        with pytest.raises(DatabaseError):
            store.delete_document(doc.doc_id)

    def test_documents_survive_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        doc = build_sample_medical_record()
        with Database(path) as db:
            MultimediaObjectStore(db).store_document(doc)
        with Database(path) as db:
            loaded = MultimediaObjectStore(db).fetch_document(doc.doc_id)
            assert loaded.default_presentation() == doc.default_presentation()

    def test_catalog_not_duplicated_on_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        with Database(path) as db:
            MultimediaObjectStore(db)
        with Database(path) as db:
            store = MultimediaObjectStore(db)
            assert len(store.list_types()) == 4
