"""Unit tests for the database engine: DDL, DML, transactions, recovery."""

import os

import pytest

from repro.db import Column, Database, Eq, Gt, INTEGER, TEXT, TableSchema
from repro.errors import DatabaseError, DuplicateKeyError, TransactionError


def patients_schema() -> TableSchema:
    return TableSchema(
        "patients",
        (
            Column("id", INTEGER, primary_key=True, autoincrement=True),
            Column("name", TEXT, nullable=False),
            Column("age", INTEGER),
        ),
    )


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "db"))
    database.create_table(patients_schema())
    yield database
    database.close()


class TestDDL:
    def test_create_and_list(self, db):
        assert db.table_names == ("patients",)
        assert db.table("patients").name == "patients"

    def test_duplicate_create(self, db):
        with pytest.raises(DatabaseError, match="already exists"):
            db.create_table(patients_schema())
        db.create_table(patients_schema(), if_not_exists=True)  # no error

    def test_drop(self, db):
        db.drop_table("patients")
        with pytest.raises(DatabaseError):
            db.table("patients")

    def test_create_index(self, db):
        db.insert("patients", {"name": "a", "age": 30})
        db.create_index("patients", "age", kind="ordered")
        assert db.table("patients").index_on("age") is not None


class TestDML:
    def test_insert_get(self, db):
        row = db.insert("patients", {"name": "alice", "age": 41})
        assert db.get("patients", row["id"])["name"] == "alice"

    def test_update_delete(self, db):
        pk = db.insert("patients", {"name": "alice", "age": 41})["id"]
        db.update("patients", pk, {"age": 42})
        assert db.get("patients", pk)["age"] == 42
        db.delete("patients", pk)
        assert db.get("patients", pk) is None

    def test_update_missing(self, db):
        with pytest.raises(DatabaseError, match="no row"):
            db.update("patients", 99, {"age": 1})

    def test_select_count(self, db):
        for name, age in [("a", 30), ("b", 40)]:
            db.insert("patients", {"name": name, "age": age})
        assert db.count("patients", Gt("age", 35)) == 1
        assert db.select("patients", Eq("name", "a"))[0]["age"] == 30


class TestTransactions:
    def test_commit_groups_ops(self, db):
        with db.transaction():
            db.insert("patients", {"name": "a"})
            db.insert("patients", {"name": "b"})
        assert db.count("patients") == 2

    def test_rollback_undoes_inserts(self, db):
        db.begin()
        db.insert("patients", {"name": "a"})
        db.rollback()
        assert db.count("patients") == 0

    def test_rollback_undoes_updates(self, db):
        pk = db.insert("patients", {"name": "a", "age": 30})["id"]
        db.begin()
        db.update("patients", pk, {"age": 99})
        db.rollback()
        assert db.get("patients", pk)["age"] == 30

    def test_rollback_undoes_deletes(self, db):
        pk = db.insert("patients", {"name": "a"})["id"]
        db.begin()
        db.delete("patients", pk)
        db.rollback()
        assert db.get("patients", pk)["name"] == "a"

    def test_rollback_undoes_ddl(self, db):
        db.begin()
        db.create_table(
            TableSchema("temp", (Column("id", INTEGER, primary_key=True),))
        )
        db.rollback()
        with pytest.raises(DatabaseError):
            db.table("temp")

    def test_rollback_undoes_drop(self, db):
        db.insert("patients", {"name": "a"})
        db.begin()
        db.drop_table("patients")
        db.rollback()
        assert db.count("patients") == 1

    def test_transaction_context_rolls_back_on_error(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("patients", {"name": "a"})
                raise RuntimeError("boom")
        assert db.count("patients") == 0

    def test_failed_autocommit_insert_leaves_no_row(self, db):
        db.insert("patients", {"id": 1, "name": "a"})
        with pytest.raises(DuplicateKeyError):
            db.insert("patients", {"id": 1, "name": "b"})
        assert db.count("patients") == 1

    def test_mixed_ops_rollback_in_order(self, db):
        pk = db.insert("patients", {"name": "keep", "age": 1})["id"]
        db.begin()
        db.update("patients", pk, {"age": 2})
        new_pk = db.insert("patients", {"name": "new"})["id"]
        db.update("patients", new_pk, {"age": 9})
        db.delete("patients", pk)
        db.rollback()
        assert db.count("patients") == 1
        assert db.get("patients", pk) == {"id": pk, "name": "keep", "age": 1}


class TestDurability:
    def test_reopen_replays_committed(self, tmp_path):
        path = str(tmp_path / "db")
        with Database(path) as db:
            db.create_table(patients_schema())
            db.insert("patients", {"name": "alice", "age": 41})
        with Database(path) as db:
            assert db.count("patients") == 1
            assert db.select("patients", Eq("name", "alice"))[0]["age"] == 41

    def test_checkpoint_then_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        with Database(path) as db:
            db.create_table(patients_schema())
            db.create_index("patients", "name")
            db.insert("patients", {"name": "alice"})
            db.checkpoint()
            db.insert("patients", {"name": "bob"})
        with Database(path) as db:
            assert db.count("patients") == 2
            # The index came back from the snapshot and indexes both rows.
            assert db.table("patients").index_on("name").lookup("bob")

    def test_torn_journal_tail_loses_only_uncommitted(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.create_table(patients_schema())
        db.insert("patients", {"name": "committed"})
        # Crash mid-transaction: journal has begin+insert but no commit.
        db.begin()
        db.insert("patients", {"name": "uncommitted"})
        db._journal._file.flush()
        os._exit is not None  # (documenting: we simulate crash by not committing)
        db._journal._file.close()
        db.blobs.close()
        with Database(path) as recovered:
            names = [r["name"] for r in recovered.select("patients")]
            assert names == ["committed"]

    def test_open_transaction_rolled_back_on_close(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.create_table(patients_schema())
        db.begin()
        db.insert("patients", {"name": "x"})
        db.close()  # must roll back, not leak the transaction
        with Database(path) as db:
            assert db.count("patients") == 0

    def test_checkpoint_inside_transaction_rejected(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            db.begin()
            with pytest.raises(TransactionError):
                db.checkpoint()
            db.rollback()

    def test_autoincrement_continues_after_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        with Database(path) as db:
            db.create_table(patients_schema())
            first = db.insert("patients", {"name": "a"})["id"]
        with Database(path) as db:
            second = db.insert("patients", {"name": "b"})["id"]
        assert second > first


class TestBlobsViaEngine:
    def test_put_get(self, db):
        ref = db.put_blob(b"payload")
        assert db.get_blob(ref) == b"payload"

    def test_blob_survives_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        with Database(path) as db:
            ref = db.put_blob(b"payload")
        with Database(path) as db:
            assert db.get_blob(ref) == b"payload"
