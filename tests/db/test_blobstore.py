"""Unit tests for the blob store, including crash-safety behaviour."""

import os

import pytest

from repro.db import BlobStore
from repro.errors import BlobError


@pytest.fixture
def store(tmp_path):
    store = BlobStore(str(tmp_path / "blobs.dat"))
    yield store
    store.close()


class TestPutGet:
    def test_round_trip(self, store):
        ref = store.put(b"hello world")
        assert store.get(ref) == b"hello world"
        assert ref.size == 11

    def test_get_by_id(self, store):
        ref = store.put(b"x")
        assert store.get(ref.blob_id) == b"x"

    def test_empty_payload(self, store):
        ref = store.put(b"")
        assert store.get(ref) == b""

    def test_large_payload(self, store):
        payload = os.urandom(1_000_000)
        assert store.get(store.put(payload)) == payload

    def test_ids_monotonic(self, store):
        refs = [store.put(b"x") for _ in range(5)]
        ids = [r.blob_id for r in refs]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_non_bytes_rejected(self, store):
        with pytest.raises(BlobError, match="bytes"):
            store.put("string")

    def test_unknown_blob(self, store):
        with pytest.raises(BlobError, match="no blob"):
            store.get(999)

    def test_contains_len(self, store):
        ref = store.put(b"x")
        assert ref.blob_id in store
        assert len(store) == 1


class TestDeleteVacuum:
    def test_delete(self, store):
        ref = store.put(b"abc")
        store.delete(ref)
        assert ref.blob_id not in store
        with pytest.raises(BlobError):
            store.get(ref)

    def test_double_delete(self, store):
        ref = store.put(b"abc")
        store.delete(ref)
        with pytest.raises(BlobError):
            store.delete(ref)

    def test_live_bytes_accounting(self, store):
        a = store.put(b"x" * 100)
        store.put(b"y" * 50)
        assert store.live_bytes == 150
        store.delete(a)
        assert store.live_bytes == 50

    def test_vacuum_reclaims(self, store):
        keep = store.put(b"keep" * 1000)
        drop = store.put(b"drop" * 100_000)
        store.delete(drop)
        reclaimed = store.vacuum()
        assert reclaimed > 0
        assert store.get(keep) == b"keep" * 1000
        assert store.file_bytes < 5000 + 100

    def test_put_after_vacuum_gets_fresh_id(self, store):
        a = store.put(b"a")
        store.delete(a)
        store.vacuum()
        b = store.put(b"b")
        assert b.blob_id != a.blob_id
        assert store.get(b) == b"b"


class TestRecovery:
    def test_reopen_preserves_blobs(self, tmp_path):
        path = str(tmp_path / "blobs.dat")
        with BlobStore(path) as store:
            ref = store.put(b"persisted")
            deleted = store.put(b"gone")
            store.delete(deleted)
        with BlobStore(path) as store:
            assert store.get(ref) == b"persisted"
            assert deleted.blob_id not in store
            # New ids continue after the old ones.
            assert store.put(b"new").blob_id > deleted.blob_id

    def test_torn_tail_discarded(self, tmp_path):
        path = str(tmp_path / "blobs.dat")
        with BlobStore(path) as store:
            good = store.put(b"good data")
            store.put(b"will be torn by the crash")
        # Simulate a torn final write.
        size = os.path.getsize(path)
        with open(path, "r+b") as file:
            file.truncate(size - 7)
        with BlobStore(path) as store:
            assert store.get(good) == b"good data"
            assert len(store) == 1

    def test_corrupt_payload_discarded(self, tmp_path):
        path = str(tmp_path / "blobs.dat")
        with BlobStore(path) as store:
            good = store.put(b"good")
            bad = store.put(b"to be corrupted")
        with open(path, "r+b") as file:
            file.seek(-3, os.SEEK_END)
            file.write(b"!!!")
        with BlobStore(path) as store:
            assert store.get(good) == b"good"
            assert bad.blob_id not in store

    def test_write_after_torn_recovery(self, tmp_path):
        path = str(tmp_path / "blobs.dat")
        with BlobStore(path) as store:
            store.put(b"x" * 100)
        with open(path, "r+b") as file:
            file.truncate(os.path.getsize(path) - 1)
        with BlobStore(path) as store:
            ref = store.put(b"fresh")
            assert store.get(ref) == b"fresh"
