"""Unit tests for column types and table schemas."""

import pytest

from repro.db import BLOB, BOOLEAN, Column, INTEGER, JSONB, REAL, TEXT, TableSchema
from repro.db.blobstore import BlobRef
from repro.db.types import BYTES, type_by_name
from repro.errors import SchemaError


class TestTypes:
    def test_integer(self):
        assert INTEGER.validate(5, "c") == 5
        with pytest.raises(SchemaError):
            INTEGER.validate("5", "c")
        with pytest.raises(SchemaError):
            INTEGER.validate(True, "c")  # bool is not an INTEGER here

    def test_real_coerces_int(self):
        assert REAL.validate(5, "c") == 5.0
        assert isinstance(REAL.validate(5, "c"), float)

    def test_text(self):
        assert TEXT.validate("x", "c") == "x"
        with pytest.raises(SchemaError):
            TEXT.validate(5, "c")

    def test_boolean(self):
        assert BOOLEAN.validate(True, "c") is True
        with pytest.raises(SchemaError):
            BOOLEAN.validate(1, "c")

    def test_json(self):
        assert JSONB.validate({"a": [1]}, "c") == {"a": [1]}

    def test_null_passes_all(self):
        for t in (INTEGER, REAL, TEXT, BOOLEAN, JSONB, BLOB):
            assert t.validate(None, "c") is None

    def test_blob_requires_ref(self):
        ref = BlobRef(blob_id=3, size=10)
        assert BLOB.validate(ref, "c") is ref
        with pytest.raises(SchemaError, match="BlobStore.put"):
            BLOB.validate(b"raw bytes", "c")
        with pytest.raises(SchemaError):
            BLOB.validate(12, "c")

    def test_blob_encode_decode(self):
        ref = BlobRef(blob_id=3, size=10)
        assert BLOB.decode(BLOB.encode(ref)) == ref
        assert BLOB.encode(None) is None
        assert BLOB.decode(None) is None

    def test_bytes_encode_decode(self):
        assert BYTES.decode(BYTES.encode(b"\x00\xff")) == b"\x00\xff"
        assert BYTES.encode(None) is None

    def test_type_by_name(self):
        assert type_by_name("integer") is INTEGER
        assert type_by_name("BLOB") is BLOB
        with pytest.raises(SchemaError, match="unknown column type"):
            type_by_name("VARCHAR")


class TestColumn:
    def test_pk_not_nullable(self):
        col = Column("id", INTEGER, primary_key=True)
        with pytest.raises(SchemaError, match="NULL"):
            col.validate(None)

    def test_not_null(self):
        col = Column("name", TEXT, nullable=False)
        with pytest.raises(SchemaError):
            col.validate(None)

    def test_autoincrement_requires_integer_pk(self):
        with pytest.raises(SchemaError, match="autoincrement"):
            Column("id", TEXT, primary_key=True, autoincrement=True)
        with pytest.raises(SchemaError):
            Column("id", INTEGER, autoincrement=True)


class TestTableSchema:
    def _schema(self):
        return TableSchema(
            "t",
            (
                Column("id", INTEGER, primary_key=True, autoincrement=True),
                Column("name", TEXT, nullable=False),
                Column("age", INTEGER),
            ),
        )

    def test_exactly_one_pk(self):
        with pytest.raises(SchemaError, match="exactly one primary-key"):
            TableSchema("t", (Column("a", TEXT),))
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (Column("a", TEXT, primary_key=True), Column("b", TEXT, primary_key=True)),
            )

    def test_duplicate_columns(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema("t", (Column("a", TEXT, primary_key=True), Column("a", TEXT)))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())

    def test_validate_row_completes_nulls(self):
        row = self._schema().validate_row({"name": "x"})
        assert row == {"id": None, "name": "x", "age": None}

    def test_validate_row_unknown_column(self):
        with pytest.raises(SchemaError, match="unknown columns"):
            self._schema().validate_row({"name": "x", "ghost": 1})

    def test_validate_partial(self):
        assert self._schema().validate_row({"age": 3}, partial=True) == {"age": 3}

    def test_missing_required_rejected(self):
        with pytest.raises(SchemaError):
            self._schema().validate_row({"age": 3})

    def test_round_trip_dict(self):
        schema = self._schema()
        clone = TableSchema.from_dict(schema.to_dict())
        assert clone == schema

    def test_contains_and_column(self):
        schema = self._schema()
        assert "name" in schema and "ghost" not in schema
        assert schema.column("age").type is INTEGER
        with pytest.raises(SchemaError):
            schema.column("ghost")
