"""Unit tests for the write-ahead journal."""

import pytest

from repro.db.journal import (
    BEGIN,
    COMMIT,
    INSERT,
    Journal,
    JournalRecord,
    UPDATE,
)
from repro.errors import TransactionError


@pytest.fixture
def journal(tmp_path):
    journal = Journal(str(tmp_path / "journal.log"))
    yield journal
    journal.close()


class TestRecordFormat:
    def test_round_trip(self):
        record = JournalRecord(INSERT, 3, {"table": "t", "row": {"id": 1}})
        parsed = JournalRecord.from_line(record.to_line())
        assert parsed == record

    def test_corrupt_crc_rejected(self):
        line = JournalRecord(INSERT, 3, {}).to_line()
        assert JournalRecord.from_line(line[:-2] + b"X\n") is None

    def test_garbage_rejected(self):
        assert JournalRecord.from_line(b"not a record\n") is None
        assert JournalRecord.from_line(b"") is None


class TestTransactions:
    def test_begin_commit(self, journal):
        txn = journal.begin()
        journal.log(INSERT, {"table": "t"})
        journal.commit()
        ops = journal.committed_operations()
        assert [op.op for op in ops] == [INSERT]
        assert ops[0].txn == txn

    def test_rollback_discards(self, journal):
        journal.begin()
        journal.log(INSERT, {"table": "t"})
        journal.rollback()
        assert journal.committed_operations() == []

    def test_uncommitted_discarded(self, journal):
        journal.begin()
        journal.log(INSERT, {"table": "t"})
        # no commit — crash
        assert journal.committed_operations() == []

    def test_nested_begin_rejected(self, journal):
        journal.begin()
        with pytest.raises(TransactionError):
            journal.begin()

    def test_commit_without_begin(self, journal):
        with pytest.raises(TransactionError):
            journal.commit()

    def test_log_outside_transaction(self, journal):
        with pytest.raises(TransactionError):
            journal.log(INSERT, {})

    def test_txn_ids_resume_after_reopen(self, tmp_path):
        path = str(tmp_path / "journal.log")
        journal = Journal(path)
        first = journal.begin()
        journal.commit()
        journal.close()
        journal = Journal(path)
        assert journal.begin() > first
        journal.commit()
        journal.close()


class TestRecovery:
    def test_torn_line_stops_replay(self, tmp_path):
        path = str(tmp_path / "journal.log")
        journal = Journal(path)
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        journal.begin()
        journal.log(INSERT, {"n": 2})
        journal.commit()
        journal.close()
        with open(path, "r+b") as file:
            file.seek(-5, 2)
            file.truncate()
        journal = Journal(path)
        ops = journal.committed_operations()
        # Second transaction's commit is torn -> only the first survives.
        assert [op.data["n"] for op in ops] == [1]
        journal.close()

    def test_checkpoint_clears_history(self, journal):
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        journal.checkpoint()
        journal.begin()
        journal.log(UPDATE, {"n": 2})
        journal.commit()
        ops = journal.committed_operations()
        assert [op.op for op in ops] == [UPDATE]

    def test_checkpoint_inside_txn_rejected(self, journal):
        journal.begin()
        with pytest.raises(TransactionError):
            journal.checkpoint()

    def test_truncate(self, journal):
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        journal.truncate()
        assert journal.committed_operations() == []

    def test_replay_yields_framing_records(self, journal):
        journal.begin()
        journal.commit()
        ops = [record.op for record in journal.replay()]
        assert ops == [BEGIN, COMMIT]
