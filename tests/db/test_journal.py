"""Unit tests for the write-ahead journal."""

import os
import shutil

import pytest

from repro.db import Column, Database, INTEGER, TEXT, TableSchema
from repro.db.journal import (
    BEGIN,
    CHECKPOINT,
    COMMIT,
    INSERT,
    Journal,
    JournalRecord,
    UPDATE,
)
from repro.errors import CrashInjected, TransactionError
from repro.util.failpoints import use_failpoints


@pytest.fixture
def journal(tmp_path):
    journal = Journal(str(tmp_path / "journal.log"))
    yield journal
    journal.close()


class TestRecordFormat:
    def test_round_trip(self):
        record = JournalRecord(INSERT, 3, {"table": "t", "row": {"id": 1}})
        parsed = JournalRecord.from_line(record.to_line())
        assert parsed == record

    def test_corrupt_crc_rejected(self):
        line = JournalRecord(INSERT, 3, {}).to_line()
        assert JournalRecord.from_line(line[:-2] + b"X\n") is None

    def test_garbage_rejected(self):
        assert JournalRecord.from_line(b"not a record\n") is None
        assert JournalRecord.from_line(b"") is None


class TestTransactions:
    def test_begin_commit(self, journal):
        txn = journal.begin()
        journal.log(INSERT, {"table": "t"})
        journal.commit()
        ops = journal.committed_operations()
        assert [op.op for op in ops] == [INSERT]
        assert ops[0].txn == txn

    def test_rollback_discards(self, journal):
        journal.begin()
        journal.log(INSERT, {"table": "t"})
        journal.rollback()
        assert journal.committed_operations() == []

    def test_uncommitted_discarded(self, journal):
        journal.begin()
        journal.log(INSERT, {"table": "t"})
        # no commit — crash
        assert journal.committed_operations() == []

    def test_nested_begin_rejected(self, journal):
        journal.begin()
        with pytest.raises(TransactionError):
            journal.begin()

    def test_commit_without_begin(self, journal):
        with pytest.raises(TransactionError):
            journal.commit()

    def test_log_outside_transaction(self, journal):
        with pytest.raises(TransactionError):
            journal.log(INSERT, {})

    def test_txn_ids_resume_after_reopen(self, tmp_path):
        path = str(tmp_path / "journal.log")
        journal = Journal(path)
        first = journal.begin()
        journal.commit()
        journal.close()
        journal = Journal(path)
        assert journal.begin() > first
        journal.commit()
        journal.close()


class TestRecovery:
    def test_torn_line_stops_replay(self, tmp_path):
        path = str(tmp_path / "journal.log")
        journal = Journal(path)
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        journal.begin()
        journal.log(INSERT, {"n": 2})
        journal.commit()
        journal.close()
        with open(path, "r+b") as file:
            file.seek(-5, 2)
            file.truncate()
        journal = Journal(path)
        ops = journal.committed_operations()
        # Second transaction's commit is torn -> only the first survives.
        assert [op.data["n"] for op in ops] == [1]
        journal.close()

    def test_checkpoint_clears_history(self, journal):
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        journal.checkpoint()
        journal.begin()
        journal.log(UPDATE, {"n": 2})
        journal.commit()
        ops = journal.committed_operations()
        assert [op.op for op in ops] == [UPDATE]

    def test_checkpoint_inside_txn_rejected(self, journal):
        journal.begin()
        with pytest.raises(TransactionError):
            journal.checkpoint()

    def test_truncate(self, journal):
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        journal.truncate()
        assert journal.committed_operations() == []

    def test_replay_yields_framing_records(self, journal):
        journal.begin()
        journal.commit()
        ops = [record.op for record in journal.replay()]
        assert ops == [BEGIN, COMMIT]


def _names(db: Database) -> list[str]:
    return sorted(row["name"] for row in db.select("cases"))


class TestCrashRecoveryAtByteOffsets:
    """A crash anywhere inside a commit must recover the pre-commit state.

    The sweep truncates the on-disk journal at several byte offsets
    strictly inside the final transaction's records and reopens the
    database each time: every cut point must recover exactly the
    baseline rows (the last durable snapshot), never a partial
    transaction — and the untruncated journal must recover everything.
    """

    SCHEMA = TableSchema(
        "cases",
        (
            Column("id", INTEGER, primary_key=True, autoincrement=True),
            Column("name", TEXT, nullable=False),
        ),
    )

    def _build(self, directory: str) -> tuple[int, int]:
        """Baseline rows, then one committed txn; returns (L0, L1) sizes."""
        journal_path = os.path.join(directory, "journal.log")
        db = Database(directory, checkpoint_journal_bytes=None)
        db.create_table(self.SCHEMA)
        for name in ("alpha", "beta", "gamma"):
            db.insert("cases", {"name": name})
        db.close()
        baseline_bytes = os.path.getsize(journal_path)
        db = Database(directory, checkpoint_journal_bytes=None)
        db.begin()
        for name in ("delta", "epsilon", "zeta"):
            db.insert("cases", {"name": name})
        db.commit()
        db.close()
        final_bytes = os.path.getsize(journal_path)
        assert final_bytes > baseline_bytes
        return baseline_bytes, final_bytes

    def test_truncation_sweep_recovers_pre_commit_snapshot(self, tmp_path):
        source = str(tmp_path / "db")
        baseline_bytes, final_bytes = self._build(source)
        span = final_bytes - baseline_bytes
        offsets = sorted(
            {
                baseline_bytes,          # the whole txn lost
                baseline_bytes + 1,      # torn first record
                baseline_bytes + span // 4,
                baseline_bytes + span // 2,
                baseline_bytes + 3 * span // 4,
                # Cutting only the final newline leaves the COMMIT record
                # complete (and durable); cut into its CRC instead.
                final_bytes - 2,
            }
        )
        for offset in offsets:
            crashed = str(tmp_path / f"crash_{offset}")
            shutil.copytree(source, crashed)
            with open(os.path.join(crashed, "journal.log"), "r+b") as file:
                file.truncate(offset)
            db = Database(crashed, checkpoint_journal_bytes=None)
            assert _names(db) == ["alpha", "beta", "gamma"], f"offset {offset}"
            db.close()

    def test_untruncated_journal_recovers_everything(self, tmp_path):
        source = str(tmp_path / "db")
        self._build(source)
        db = Database(source, checkpoint_journal_bytes=None)
        assert _names(db) == ["alpha", "beta", "delta", "epsilon", "gamma", "zeta"]
        db.close()


class TestFailpointCrashes:
    """The ``journal.append`` failpoint: torn and duplicated tail lines.

    These reproduce the two classic append-crash artifacts *through the
    production write path* (not by editing bytes after the fact) and
    assert that recovery honours the transaction framing: an uncommitted
    tail vanishes, a duplicated line applies once.
    """

    def test_torn_append_crashes_and_recovery_drops_the_tail(self, tmp_path):
        path = str(tmp_path / "journal.log")
        journal = Journal(path)
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        with use_failpoints() as fp:
            fp.arm("journal.append", mode="torn", match={"op": COMMIT})
            journal = Journal(path)
            journal.begin()
            journal.log(INSERT, {"n": 2})
            with pytest.raises(CrashInjected):
                journal.commit()  # dies halfway through the commit line
        recovered = Journal(path)
        ops = recovered.committed_operations()
        # The torn commit never became durable: only txn 1 replays.
        assert [op.data["n"] for op in ops] == [1]
        # And the torn bytes are really on disk (a half line at the tail).
        with open(path, "rb") as file:
            assert not file.read().endswith(b"\n")
        recovered.close()

    def test_duplicated_tail_line_applies_once(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with use_failpoints() as fp:
            fp.arm("journal.append", mode="duplicate", match={"op": COMMIT})
            journal = Journal(path)
            journal.begin()
            journal.log(INSERT, {"n": 1})
            with pytest.raises(CrashInjected):
                journal.commit()
        # The commit line is on disk twice; replay sees both...
        recovered = Journal(path)
        raw_ops = [record.op for record in recovered.replay()]
        assert raw_ops == [BEGIN, INSERT, COMMIT, COMMIT]
        # ...but committed_operations collapses the duplicate: one apply.
        ops = recovered.committed_operations()
        assert [op.data["n"] for op in ops] == [1]
        recovered.close()

    def test_duplicated_mutation_line_applies_once(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with use_failpoints() as fp:
            fp.arm("journal.append", mode="duplicate", match={"op": INSERT})
            journal = Journal(path)
            journal.begin()
            with pytest.raises(CrashInjected):
                journal.log(INSERT, {"n": 1})
        # Crash-retry: reopen, re-run the transaction to completion.
        journal = Journal(path)
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        ops = journal.committed_operations()
        # The duplicated (uncommitted) first attempt is discarded; the
        # retried transaction applies exactly once.
        assert [op.data["n"] for op in ops] == [1]
        journal.close()

    def test_unarmed_failpoint_is_free(self, tmp_path):
        with use_failpoints() as fp:
            journal = Journal(str(tmp_path / "journal.log"))
            journal.begin()
            journal.log(INSERT, {"n": 1})
            journal.commit()
            assert fp.hits["journal.append"] == 3  # begin + insert + commit
            assert fp.fired == []
            journal.close()


class TestRecoveryAfterCheckpoint:
    def test_begin_without_commit_after_checkpoint_is_discarded(self, journal):
        journal.begin()
        journal.log(INSERT, {"n": 1})
        journal.commit()
        journal.checkpoint()
        journal.begin()
        journal.log(INSERT, {"n": 2})
        # Crash before commit: replay must yield nothing (the snapshot
        # covers txn 1; txn 2 never committed).
        assert journal.committed_operations() == []

    def test_open_transaction_spanning_a_checkpoint_never_replays(self, tmp_path):
        # checkpoint() refuses inside a transaction, so the only way a
        # BEGIN can precede a CHECKPOINT is via an interleaved file from
        # a crashed writer. committed_operations must not resurrect it.
        path = str(tmp_path / "journal.log")
        with open(path, "wb") as file:
            file.write(JournalRecord(BEGIN, 1, {}).to_line())
            file.write(JournalRecord(INSERT, 1, {"n": 1}).to_line())
            file.write(JournalRecord(CHECKPOINT, 0, {}).to_line())
            file.write(JournalRecord(COMMIT, 1, {}).to_line())
        journal = Journal(path)
        # The checkpoint wiped the pending set: txn 1's late commit finds
        # nothing to promote.
        assert journal.committed_operations() == []
        journal.close()
