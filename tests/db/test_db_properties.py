"""Property-based tests: the engine against a dict reference model.

Hypothesis drives random operation sequences (insert/update/delete/
commit/rollback) through both the real engine and a trivial in-memory
model; after every sequence the visible table contents must match, and
after a simulated reopen the committed state must match too.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, INTEGER, TEXT, TableSchema
from repro.db.blobstore import BlobStore
from repro.errors import DatabaseError, DuplicateKeyError


def schema():
    return TableSchema(
        "t",
        (
            Column("id", INTEGER, primary_key=True),
            Column("v", TEXT),
        ),
    )


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 9), st.text(max_size=4)),
        st.tuples(st.just("update"), st.integers(0, 9), st.text(max_size=4)),
        st.tuples(st.just("delete"), st.integers(0, 9), st.just("")),
        st.tuples(st.just("begin"), st.just(0), st.just("")),
        st.tuples(st.just("commit"), st.just(0), st.just("")),
        st.tuples(st.just("rollback"), st.just(0), st.just("")),
    ),
    max_size=30,
)


@given(operations)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_engine_matches_dict_model(tmp_path_factory, ops):
    directory = str(tmp_path_factory.mktemp("dbprop"))
    db = Database(directory)
    db.create_table(schema())
    committed: dict[int, str] = {}
    pending: dict[int, str] | None = None

    def visible() -> dict[int, str]:
        return committed if pending is None else pending

    try:
        for op, key, value in ops:
            state = visible()
            if op == "insert":
                if key in state:
                    try:
                        db.insert("t", {"id": key, "v": value})
                        raise AssertionError("expected DuplicateKeyError")
                    except DuplicateKeyError:
                        pass
                else:
                    db.insert("t", {"id": key, "v": value})
                    state[key] = value
            elif op == "update":
                if key in state:
                    db.update("t", key, {"v": value})
                    state[key] = value
                else:
                    try:
                        db.update("t", key, {"v": value})
                        raise AssertionError("expected DatabaseError")
                    except DatabaseError:
                        pass
            elif op == "delete":
                if key in state:
                    db.delete("t", key)
                    del state[key]
                else:
                    try:
                        db.delete("t", key)
                        raise AssertionError("expected DatabaseError")
                    except DatabaseError:
                        pass
            elif op == "begin" and pending is None:
                db.begin()
                pending = dict(committed)
            elif op == "commit" and pending is not None:
                db.commit()
                committed = pending
                pending = None
            elif op == "rollback" and pending is not None:
                db.rollback()
                pending = None
            # Live view must always match the model's visible state.
            actual = {row["id"]: row["v"] for row in db.select("t")}
            assert actual == visible()
        if pending is not None:
            db.rollback()
            pending = None
        assert {row["id"]: row["v"] for row in db.select("t")} == committed
    finally:
        db.close()
    # Reopen: recovery must reproduce exactly the committed state.
    with Database(directory) as reopened:
        actual = {row["id"]: row["v"] for row in reopened.select("t")}
        assert actual == committed


@given(st.lists(st.binary(max_size=2048), min_size=1, max_size=12), st.data())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_blobstore_round_trips_random_payloads(tmp_path_factory, payloads, data):
    path = os.path.join(str(tmp_path_factory.mktemp("blobprop")), "blobs.dat")
    with BlobStore(path) as store:
        refs = [store.put(payload) for payload in payloads]
        # Delete a random subset.
        doomed = {
            i for i in range(len(refs)) if data.draw(st.booleans(), label=f"del{i}")
        }
        for index in doomed:
            store.delete(refs[index])
        for index, (ref, payload) in enumerate(zip(refs, payloads)):
            if index in doomed:
                assert ref.blob_id not in store
            else:
                assert store.get(ref) == payload
    # Survives reopen with identical contents.
    with BlobStore(path) as store:
        for index, (ref, payload) in enumerate(zip(refs, payloads)):
            if index not in doomed:
                assert store.get(ref) == payload
