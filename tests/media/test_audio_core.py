"""Unit tests for audio signals, synthesis, features and segmentation."""

import numpy as np
import pytest

from repro.errors import AudioError
from repro.media.audio import (
    AudioSignal,
    ConversationBuilder,
    mfcc,
    segment_audio,
    synth_music,
    synth_noise,
    synth_word,
)
from repro.media.audio.features import (
    add_deltas,
    frame_signal,
    frame_times,
    mel_filterbank,
    power_spectrum,
    spectral_flatness,
)
from repro.media.audio.segmentation import segment_accuracy
from repro.media.audio.synth import DEFAULT_SPEAKERS, WORDS

ADAMS = DEFAULT_SPEAKERS[0]


class TestAudioSignal:
    def test_construction(self):
        signal = AudioSignal(np.zeros(800), rate=8000)
        assert signal.duration_s == pytest.approx(0.1)
        assert len(signal) == 800

    def test_validation(self):
        with pytest.raises(AudioError):
            AudioSignal(np.zeros((2, 2)))
        with pytest.raises(AudioError):
            AudioSignal(np.zeros(10), rate=0)

    def test_concat(self):
        joined = AudioSignal.silence(0.1).concat(AudioSignal.silence(0.2))
        assert joined.duration_s == pytest.approx(0.3)

    def test_concat_rate_mismatch(self):
        with pytest.raises(AudioError):
            AudioSignal.silence(0.1, 8000).concat(AudioSignal.silence(0.1, 16000))

    def test_slice_seconds(self):
        signal = synth_word("lesion", ADAMS)
        clip = signal.slice_seconds(0.1, 0.2)
        assert clip.duration_s == pytest.approx(0.1, abs=1e-3)

    def test_slice_validation(self):
        signal = AudioSignal.silence(0.5)
        with pytest.raises(AudioError):
            signal.slice_seconds(0.4, 0.3)
        with pytest.raises(AudioError):
            signal.slice_seconds(0.6, 0.9)

    def test_bytes_round_trip(self):
        signal = synth_word("lesion", ADAMS)
        restored = AudioSignal.from_bytes(signal.to_bytes())
        assert restored.rate == signal.rate
        assert np.allclose(restored.samples, signal.samples, atol=1e-4)

    def test_normalized(self):
        signal = AudioSignal(np.array([0.1, -0.2, 0.05]))
        assert np.max(np.abs(signal.normalized(0.9).samples)) == pytest.approx(0.9)
        silent = AudioSignal(np.zeros(5)).normalized()
        assert np.all(silent.samples == 0)


class TestSynthesis:
    def test_word_deterministic(self):
        first = synth_word("lesion", ADAMS, seed=3)
        second = synth_word("lesion", ADAMS, seed=3)
        assert np.array_equal(first.samples, second.samples)

    def test_unknown_word(self):
        with pytest.raises(AudioError, match="unknown word"):
            synth_word("zebra", ADAMS)

    def test_word_duration_matches_phones(self):
        expected = sum(p.duration_s for p in WORDS["lesion"])
        assert synth_word("lesion", ADAMS).duration_s == pytest.approx(expected, abs=0.01)

    def test_speakers_differ(self):
        a = synth_word("lesion", DEFAULT_SPEAKERS[0], seed=1)
        b = synth_word("lesion", DEFAULT_SPEAKERS[1], seed=1)
        assert not np.allclose(a.samples[: len(b.samples)], b.samples[: len(a.samples)])

    def test_music_and_noise(self):
        assert synth_music(0.5).duration_s == pytest.approx(0.5, abs=0.01)
        noise = synth_noise(0.5, level=0.05)
        assert np.std(noise.samples) < 0.2

    def test_conversation_ground_truth_contiguous(self):
        signal, truth = (
            ConversationBuilder(seed=1).pause(0.2).say(ADAMS, "lesion").music(0.4).build()
        )
        assert truth[0].start_s == 0.0
        for before, after in zip(truth, truth[1:]):
            assert after.start_s == pytest.approx(before.end_s)
        assert truth[-1].end_s == pytest.approx(signal.duration_s)
        assert [t.label for t in truth] == ["silence", "speech", "music"]
        assert truth[1].speaker == ADAMS.name and truth[1].word == "lesion"

    def test_empty_conversation_rejected(self):
        with pytest.raises(AudioError):
            ConversationBuilder().build()


class TestFeatures:
    def test_framing_shape(self):
        signal = AudioSignal.silence(1.0, 8000)
        frames = frame_signal(signal)
        assert frames.shape[1] == 200  # 25 ms at 8 kHz
        assert len(frames) == len(frame_times(len(frames)))

    def test_short_signal_rejected(self):
        with pytest.raises(AudioError, match="shorter"):
            frame_signal(AudioSignal(np.zeros(10)))

    def test_mfcc_shape(self):
        features = mfcc(synth_word("lesion", ADAMS))
        assert features.shape[1] == 14  # 13 cepstra + energy

    def test_mfcc_mean_normalization(self):
        features = mfcc(synth_word("lesion", ADAMS), include_energy=False)
        assert np.allclose(features.mean(axis=0), 0.0, atol=1e-9)

    def test_add_deltas(self):
        features = mfcc(synth_word("lesion", ADAMS))
        widened = add_deltas(features)
        assert widened.shape == (features.shape[0], features.shape[1] * 2)

    def test_mel_filterbank_partition(self):
        bank = mel_filterbank(20, 101, 8000)
        assert bank.shape == (20, 101)
        assert np.all(bank >= 0)

    def test_filterbank_validation(self):
        with pytest.raises(AudioError):
            mel_filterbank(20, 101, 8000, low_hz=5000, high_hz=3000)

    def test_flatness_separates_noise_from_tone(self):
        tone = synth_word("normal", ADAMS)
        noise = synth_noise(0.5, level=0.2)
        tone_flatness = np.median(spectral_flatness(power_spectrum(frame_signal(tone))))
        noise_flatness = np.median(spectral_flatness(power_spectrum(frame_signal(noise))))
        assert noise_flatness > 10 * tone_flatness


class TestSegmentation:
    @pytest.fixture(scope="class")
    def conversation(self):
        builder = (
            ConversationBuilder(seed=9)
            .pause(0.5)
            .say(ADAMS, "lesion")
            .pause(0.4)
            .say(DEFAULT_SPEAKERS[1], "biopsy")
            .music(1.0)
            .pause(0.4)
        )
        return builder.build()

    def test_covers_whole_signal(self, conversation):
        signal, _ = conversation
        segments = segment_audio(signal)
        assert segments[0].start_s == 0.0
        assert segments[-1].end_s == pytest.approx(signal.duration_s)

    def test_labels_match_truth(self, conversation):
        signal, truth = conversation
        segments = segment_audio(signal)
        assert segment_accuracy(segments, list(truth), signal.duration_s) > 0.8

    def test_finds_music(self, conversation):
        signal, _ = conversation
        labels = {s.label for s in segment_audio(signal)}
        assert "music" in labels and "speech" in labels and "silence" in labels

    def test_speech_count_matches(self, conversation):
        signal, _ = conversation
        speech = [s for s in segment_audio(signal) if s.label == "speech"]
        assert len(speech) == 2

    def test_min_segment_absorption(self, conversation):
        signal, _ = conversation
        segments = segment_audio(signal, min_segment_s=0.15)
        assert all(s.duration_s >= 0.15 or len(segments) == 1 for s in segments)

    def test_pure_silence(self):
        segments = segment_audio(AudioSignal.silence(1.0))
        assert [s.label for s in segments] == ["silence"]
