"""Tests for continuous-speech (sliding-window) word spotting."""

import pytest

from repro.errors import AudioError
from repro.media.audio import AudioSignal, ConversationBuilder, WordSpotter
from repro.media.audio.synth import DEFAULT_SPEAKERS, KEYWORDS

ADAMS, BAKER, COSTA, _ = DEFAULT_SPEAKERS


@pytest.fixture(scope="module")
def spotter():
    return WordSpotter.train_default(KEYWORDS, (ADAMS, BAKER, COSTA), seed=2)


@pytest.fixture(scope="module")
def conversation():
    return (
        ConversationBuilder(seed=8)
        .pause(0.4).say(ADAMS, "lesion").pause(0.5)
        .say(BAKER, "filler_b").pause(0.5)
        .say(COSTA, "urgent").pause(0.4)
    ).build()


class TestStreamFlags:
    def test_keywords_flagged_at_roughly_right_times(self, spotter, conversation):
        signal, truth = conversation
        flags = spotter.spot_stream(signal)
        found = {flag.keyword for flag in flags}
        assert found == {"lesion", "urgent"}
        truth_spans = {t.word: (t.start_s, t.end_s) for t in truth if t.word}
        for flag in flags:
            t0, t1 = truth_spans[flag.keyword]
            # Flag span overlaps the true utterance.
            assert flag.start_s < t1 and t0 < flag.end_s

    def test_filler_not_flagged(self, spotter, conversation):
        signal, _ = conversation
        flags = spotter.spot_stream(signal)
        assert all(flag.keyword in KEYWORDS for flag in flags)

    def test_silence_never_flagged(self, spotter):
        flags = spotter.spot_stream(AudioSignal.silence(2.0))
        assert flags == []

    def test_overlapping_windows_merge(self, spotter, conversation):
        signal, truth = conversation
        flags = spotter.spot_stream(signal, hop_s=0.05)
        # Fine hops produce many positive windows but they merge per word.
        assert len([f for f in flags if f.keyword == "lesion"]) == 1

    def test_flags_ordered_in_time(self, spotter, conversation):
        signal, _ = conversation
        flags = spotter.spot_stream(signal)
        starts = [flag.start_s for flag in flags]
        assert starts == sorted(starts)

    def test_stricter_threshold_drops_flags(self, spotter, conversation):
        signal, _ = conversation
        strict = spotter.spot_stream(signal, stream_threshold=1000.0)
        assert strict == []

    def test_parameter_validation(self, spotter):
        with pytest.raises(AudioError):
            spotter.spot_stream(AudioSignal.silence(1.0), window_s=0)
        with pytest.raises(AudioError):
            spotter.spot_stream(AudioSignal.silence(1.0), hop_s=-1)

    def test_untrained_rejected(self):
        with pytest.raises(AudioError, match="not trained"):
            WordSpotter(("lesion",)).spot_stream(AudioSignal.silence(1.0))
