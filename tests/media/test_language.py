"""Tests for language identification ("In what language are they
talking?" — one of the paper's browsing questions)."""

import pytest

from repro.errors import AudioError
from repro.media.audio import ConversationBuilder, LanguageIdentifier, segment_audio
from repro.media.audio.synth import DEFAULT_SPEAKERS, LANGUAGES, synth_word

TRIO = DEFAULT_SPEAKERS[:3]


@pytest.fixture(scope="module")
def identifier():
    return LanguageIdentifier.train_default(DEFAULT_SPEAKERS, utterances_per_language=16, seed=3)


class TestVocabularies:
    def test_two_languages_defined(self):
        assert set(LANGUAGES) == {"lingua-a", "lingua-b"}
        assert LANGUAGES["lingua-a"] is not LANGUAGES["lingua-b"]

    def test_word_language_routing(self):
        signal = synth_word("befund", TRIO[0], language="lingua-b")
        assert signal.duration_s > 0.3
        with pytest.raises(AudioError, match="unknown word"):
            synth_word("befund", TRIO[0], language="lingua-a")
        with pytest.raises(AudioError, match="unknown language"):
            synth_word("lesion", TRIO[0], language="klingon")


class TestIdentification:
    def test_accuracy_across_speakers_and_words(self, identifier):
        correct = total = 0
        for language, vocabulary in LANGUAGES.items():
            for word in sorted(vocabulary):
                for speaker in DEFAULT_SPEAKERS:
                    decision = identifier.identify(
                        synth_word(word, speaker, seed=404, language=language)
                    )
                    correct += decision.language == language
                    total += 1
        assert correct / total >= 0.85

    def test_margin_positive(self, identifier):
        decision = identifier.identify(
            synth_word("dringend", TRIO[1], seed=11, language="lingua-b")
        )
        assert decision.score_margin > 0

    def test_identifies_segments_of_mixed_conversation(self, identifier):
        builder = (
            ConversationBuilder(seed=77)
            .pause(0.3)
            .say(TRIO[0], "lesion")
            .pause(0.3)
            .say(TRIO[1], "befund", language="lingua-b")
            .pause(0.3)
        )
        signal, _ = builder.build()
        segments = segment_audio(signal)
        results = identifier.identify_segments(signal, segments)
        assert len(results) == 2
        assert results[0][1].language == "lingua-a"
        assert results[1][1].language == "lingua-b"

    def test_untrained_rejected(self):
        with pytest.raises(AudioError, match="not trained"):
            LanguageIdentifier().identify(synth_word("lesion", TRIO[0]))

    def test_training_validation(self):
        with pytest.raises(AudioError, match="two languages"):
            LanguageIdentifier().train({"only": [synth_word("lesion", TRIO[0])]})
        with pytest.raises(AudioError, match="no samples"):
            LanguageIdentifier().train({"a": [synth_word("lesion", TRIO[0])], "b": []})

    def test_languages_listing(self, identifier):
        assert identifier.languages == ("lingua-a", "lingua-b")
