"""Property-based tests for the media stack's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.media.audio.gmm import logsumexp
from repro.media.image.codec import EncodedImage, MultiLayerCodec
from repro.media.image.dct import block_dct, block_idct
from repro.media.image.image import Image
from repro.media.image.metrics import psnr
from repro.media.image.quantize import dequantize, pack, quantize, unpack
from repro.media.image.wavelet import (
    cdf53_forward,
    cdf53_inverse,
    haar_forward,
    haar_inverse,
)

small_images = arrays(
    dtype=np.float64,
    shape=st.sampled_from([(16, 16), (32, 16), (32, 32)]),
    elements=st.floats(0.0, 255.0, allow_nan=False, width=32),
)


@given(small_images)
@settings(max_examples=40, deadline=None)
def test_haar_is_invertible(pixels):
    coeffs = haar_forward(pixels, levels=2)
    assert np.allclose(haar_inverse(coeffs, levels=2), pixels, atol=1e-7)


@given(small_images)
@settings(max_examples=40, deadline=None)
def test_haar_preserves_energy(pixels):
    coeffs = haar_forward(pixels, levels=2)
    assert np.isclose(np.sum(coeffs**2), np.sum(pixels**2), rtol=1e-9)


@given(small_images)
@settings(max_examples=40, deadline=None)
def test_cdf53_is_invertible(pixels):
    coeffs = cdf53_forward(pixels, levels=2)
    assert np.allclose(cdf53_inverse(coeffs, levels=2), pixels, atol=1e-7)


@given(small_images)
@settings(max_examples=40, deadline=None)
def test_dct_is_invertible(pixels):
    coeffs = block_dct(pixels, block=8)
    assert np.allclose(block_idct(coeffs, block=8), pixels, atol=1e-7)


@given(small_images, st.floats(0.5, 64.0))
@settings(max_examples=40, deadline=None)
def test_quantization_error_bounded_by_half_step(pixels, step):
    restored = dequantize(quantize(pixels, step), step)
    assert np.max(np.abs(restored - pixels)) <= step / 2 + 1e-9


@given(small_images, st.floats(0.5, 64.0))
@settings(max_examples=30, deadline=None)
def test_pack_unpack_lossless(pixels, step):
    indices = quantize(pixels, step)
    restored, restored_step = unpack(pack(indices, step))
    assert restored_step == step
    assert np.array_equal(restored, indices)


@given(small_images, st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_codec_quality_monotone_in_layers(pixels, num_layers):
    image = Image(pixels)
    encoded = MultiLayerCodec(wavelet_levels=2, dct_block=8).encode(image, num_layers)
    qualities = [
        psnr(image, MultiLayerCodec.decode(encoded, k))
        for k in range(1, num_layers + 1)
    ]
    for before, after in zip(qualities, qualities[1:]):
        assert after >= before - 1e-6


@given(small_images, st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_codec_stream_round_trips(pixels, num_layers):
    image = Image(pixels)
    encoded = MultiLayerCodec(wavelet_levels=2, dct_block=8).encode(image, num_layers)
    restored = EncodedImage.from_bytes(encoded.to_bytes())
    assert restored.layer_sizes() == encoded.layer_sizes()
    assert MultiLayerCodec.decode(restored) == MultiLayerCodec.decode(encoded)


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        elements=st.floats(-30.0, 30.0, allow_nan=False, width=32),
    )
)
@settings(max_examples=50, deadline=None)
def test_logsumexp_matches_naive(values):
    naive = np.log(np.sum(np.exp(values), axis=1))
    assert np.allclose(logsumexp(values, axis=1), naive, atol=1e-9)
