"""Unit tests for the DTW template-matching baseline."""

import numpy as np
import pytest

from repro.errors import AudioError
from repro.media.audio.dtw import DTWWordSpotter, dtw_distance
from repro.media.audio.synth import DEFAULT_SPEAKERS, FILLERS, KEYWORDS, synth_word

ADAMS, BAKER, COSTA, _ = DEFAULT_SPEAKERS
TRIO = (ADAMS, BAKER, COSTA)


@pytest.fixture(scope="module")
def spotter():
    examples = {
        word: [
            synth_word(word, speaker, seed=31 * i + hash(word) % 97)
            for i in range(2)
            for speaker in TRIO
        ]
        for word in KEYWORDS
    }
    garbage = [
        synth_word(filler, speaker, seed=7 * i)
        for i in range(2)
        for speaker in TRIO
        for filler in FILLERS
    ]
    return DTWWordSpotter(KEYWORDS).train(examples, garbage)


class TestDTWDistance:
    def test_identical_sequences_zero(self):
        features = np.random.default_rng(0).normal(size=(20, 4))
        assert dtw_distance(features, features) == pytest.approx(0.0)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(15, 3))
        b = rng.normal(size=(22, 3))
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_warping_beats_rigid_alignment(self):
        """A time-stretched copy is much closer under DTW than its raw
        frame-by-frame distance."""
        rng = np.random.default_rng(2)
        base = rng.normal(size=(20, 3))
        stretched = np.repeat(base, 2, axis=0)
        warped = dtw_distance(base, stretched)
        rigid = float(np.mean(np.linalg.norm(stretched[:20] - base, axis=1)))
        assert warped < rigid / 2

    def test_distinct_signals_far(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, size=(20, 3))
        b = rng.normal(8, 1, size=(20, 3))
        assert dtw_distance(a, b) > 2.0

    def test_band_widens_to_reach_corner(self):
        a = np.zeros((30, 2))
        b = np.zeros((5, 2))
        # band=1 alone could not reach (30, 5); the corridor auto-widens.
        assert dtw_distance(a, b, band=1) == pytest.approx(0.0)

    def test_shape_validation(self):
        with pytest.raises(AudioError):
            dtw_distance(np.zeros((5, 3)), np.zeros((5, 4)))
        with pytest.raises(AudioError):
            dtw_distance(np.zeros(5), np.zeros((5, 2)))


class TestDTWWordSpotter:
    def test_keywords_recognized(self, spotter):
        for word in KEYWORDS:
            result = spotter.spot(synth_word(word, BAKER, seed=555))
            assert result.keyword == word

    def test_fillers_rejected(self, spotter):
        for filler in FILLERS:
            result = spotter.spot(synth_word(filler, COSTA, seed=556))
            assert result.keyword is None

    def test_template_count(self, spotter):
        assert spotter.template_count == len(KEYWORDS) * 6 + len(FILLERS) * 6

    def test_untrained_rejected(self):
        with pytest.raises(AudioError, match="not trained"):
            DTWWordSpotter(KEYWORDS).spot(synth_word("lesion", ADAMS))

    def test_training_validation(self):
        with pytest.raises(AudioError):
            DTWWordSpotter(())
        with pytest.raises(AudioError, match="no keyword templates"):
            DTWWordSpotter(("lesion",)).train({}, [synth_word("filler_a", ADAMS)])
        with pytest.raises(AudioError, match="no garbage templates"):
            DTWWordSpotter(("lesion",)).train(
                {"lesion": [synth_word("lesion", ADAMS)]}, []
            )
