"""Unit tests for transforms, quantization and the multi-layer codec."""

import numpy as np
import pytest

from repro.errors import CodecError, MediaError
from repro.media.image import (
    EncodedImage,
    MultiLayerCodec,
    block_dct,
    block_idct,
    ct_phantom,
    haar_forward,
    haar_inverse,
    mse,
    psnr,
)
from repro.media.image.image import Image
from repro.media.image.metrics import compression_ratio
from repro.media.image.progressive import (
    layers_for_bandwidth,
    resolution_ladder,
    transcode_to_budget,
)
from repro.media.image.quantize import dequantize, pack, quantize, unpack
from repro.media.image.wavelet import cdf53_forward, cdf53_inverse


@pytest.fixture(scope="module")
def phantom():
    return ct_phantom(128, seed=7)


@pytest.fixture(scope="module")
def encoded(phantom):
    return MultiLayerCodec().encode(phantom, num_layers=4)


class TestTransforms:
    def test_haar_perfect_reconstruction(self, phantom):
        coeffs = haar_forward(phantom.pixels, levels=3)
        assert np.allclose(haar_inverse(coeffs, levels=3), phantom.pixels, atol=1e-8)

    def test_cdf53_perfect_reconstruction(self, phantom):
        coeffs = cdf53_forward(phantom.pixels, levels=3)
        assert np.allclose(cdf53_inverse(coeffs, levels=3), phantom.pixels, atol=1e-8)

    def test_dct_perfect_reconstruction(self, phantom):
        coeffs = block_dct(phantom.pixels, block=8)
        assert np.allclose(block_idct(coeffs, block=8), phantom.pixels, atol=1e-8)

    def test_haar_energy_preserved(self, phantom):
        coeffs = haar_forward(phantom.pixels, levels=2)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(phantom.pixels**2))

    def test_wavelet_compacts_energy(self, phantom):
        """Most energy lands in the coarse approximation quadrant."""
        levels = 3
        coeffs = haar_forward(phantom.pixels, levels=levels)
        h = phantom.height >> levels
        w = phantom.width >> levels
        approx_energy = np.sum(coeffs[:h, :w] ** 2)
        # The approximation holds 1/64 of the coefficients but >80% of the
        # energy (the phantom's sharp edges keep some energy in details).
        assert approx_energy > 0.80 * np.sum(coeffs**2)

    def test_divisibility_enforced(self):
        with pytest.raises(MediaError, match="divisible"):
            haar_forward(np.zeros((100, 100)), levels=3)
        with pytest.raises(MediaError, match="divisible"):
            block_dct(np.zeros((100, 100)), block=8)

    def test_bad_levels(self):
        with pytest.raises(MediaError):
            haar_forward(np.zeros((8, 8)), levels=0)


class TestQuantization:
    def test_round_trip_error_bounded(self, phantom):
        step = 4.0
        indices = quantize(phantom.pixels, step)
        restored = dequantize(indices, step)
        assert np.max(np.abs(restored - phantom.pixels)) <= step / 2 + 1e-9

    def test_pack_unpack(self, phantom):
        indices = quantize(phantom.pixels, 8.0)
        restored, step = unpack(pack(indices, 8.0))
        assert step == 8.0
        assert np.array_equal(restored, indices)

    def test_pack_compresses_sparse_grids(self):
        indices = np.zeros((64, 64), dtype=np.int32)
        assert len(pack(indices, 1.0)) < 200

    def test_corrupt_stream_rejected(self, phantom):
        payload = pack(quantize(phantom.pixels, 8.0), 8.0)
        with pytest.raises(CodecError):
            unpack(payload[:30])
        with pytest.raises(CodecError):
            unpack(payload[:20] + b"garbage!" * 4)

    def test_bad_step(self):
        with pytest.raises(CodecError):
            quantize(np.zeros((2, 2)), 0.0)
        with pytest.raises(CodecError):
            dequantize(np.zeros((2, 2), dtype=np.int32), -1.0)


class TestMultiLayerCodec:
    def test_quality_improves_per_layer(self, phantom, encoded):
        values = [
            psnr(phantom, MultiLayerCodec.decode(encoded, k))
            for k in range(1, encoded.num_layers + 1)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))
        assert values[0] > 15.0   # coarse layer is recognizable
        assert values[-1] > 45.0  # full stack is high quality

    def test_sizes_grow_per_layer(self, encoded):
        sizes = [encoded.prefix_size(k) for k in range(1, encoded.num_layers + 1)]
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_layer0_beats_raw_size(self, phantom, encoded):
        assert compression_ratio(len(phantom.to_bytes()), encoded.prefix_size(1)) > 3

    def test_stream_round_trip(self, phantom, encoded):
        restored = EncodedImage.from_bytes(encoded.to_bytes())
        assert restored.layer_sizes() == encoded.layer_sizes()
        assert MultiLayerCodec.decode(restored) == MultiLayerCodec.decode(encoded)

    def test_prefix_stream_decodes(self, phantom, encoded):
        prefix = EncodedImage.from_bytes(encoded.to_bytes(num_layers=2))
        assert prefix.num_layers == 2
        decoded = MultiLayerCodec.decode(prefix)
        assert decoded == MultiLayerCodec.decode(encoded, 2)

    def test_corrupt_header_rejected(self, encoded):
        payload = bytearray(encoded.to_bytes())
        payload[6] = 0xFF
        with pytest.raises(CodecError):
            EncodedImage.from_bytes(bytes(payload))

    def test_truncated_stream_rejected(self, encoded):
        with pytest.raises(CodecError, match="truncated"):
            EncodedImage.from_bytes(encoded.to_bytes()[:10])

    def test_layer_count_validation(self, encoded):
        with pytest.raises(CodecError):
            MultiLayerCodec.decode(encoded, 0)
        with pytest.raises(CodecError):
            MultiLayerCodec.decode(encoded, 99)
        with pytest.raises(CodecError):
            encoded.prefix_size(0)

    def test_image_must_tile(self):
        with pytest.raises(CodecError, match="tile"):
            MultiLayerCodec().encode(Image.zeros(100, 100))

    def test_codec_parameter_validation(self):
        with pytest.raises(CodecError):
            MultiLayerCodec(base_step=0)
        with pytest.raises(CodecError):
            MultiLayerCodec(step_decay=1.0)

    def test_different_bases_fix_artifacts(self, phantom):
        """The hybrid (wavelet + DCT residual) beats wavelet-only re-quantized
        at a comparable rate — the paper's stated strength of mixing bases."""
        hybrid = MultiLayerCodec(base_step=64.0, step_decay=4.0)
        encoded = hybrid.encode(phantom, num_layers=2)
        hybrid_quality = psnr(phantom, MultiLayerCodec.decode(encoded, 2))
        hybrid_size = encoded.prefix_size(2)
        # Wavelet-only at a step chosen to roughly match the byte budget.
        single = MultiLayerCodec(base_step=16.0)
        single_encoded = single.encode(phantom, num_layers=1)
        assert single_encoded.prefix_size(1) >= hybrid_size * 0.5
        single_quality = psnr(phantom, MultiLayerCodec.decode(single_encoded, 1))
        assert hybrid_quality > single_quality - 3.0  # at least competitive


class TestProgressive:
    def test_ladder_monotone(self, phantom, encoded):
        ladder = resolution_ladder(encoded, phantom)
        assert [s.num_layers for s in ladder] == [1, 2, 3, 4]
        assert all(b.psnr_db > a.psnr_db for a, b in zip(ladder, ladder[1:]))
        assert all(b.bytes_on_wire > a.bytes_on_wire for a, b in zip(ladder, ladder[1:]))

    def test_transcode_respects_budget(self, encoded):
        budget = encoded.prefix_size(2) + 10
        stream = transcode_to_budget(encoded, budget)
        assert len(stream) <= budget
        assert EncodedImage.from_bytes(stream).num_layers == 2

    def test_transcode_impossible_budget(self, encoded):
        with pytest.raises(CodecError, match="exceeds"):
            transcode_to_budget(encoded, 10)

    def test_layers_for_bandwidth(self, encoded):
        fast = layers_for_bandwidth(encoded, 10_000_000, deadline_s=1.0)
        slow = layers_for_bandwidth(encoded, 100_000, deadline_s=1.0)
        assert fast >= slow
        assert fast == encoded.num_layers


class TestMetrics:
    def test_psnr_identical_is_inf(self, phantom):
        assert psnr(phantom, phantom) == float("inf")
        assert mse(phantom, phantom) == 0.0

    def test_shape_mismatch(self, phantom):
        with pytest.raises(MediaError):
            mse(phantom, ct_phantom(64))

    def test_compression_ratio_validation(self):
        with pytest.raises(MediaError):
            compression_ratio(100, 0)
