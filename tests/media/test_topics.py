"""Tests for subject detection ("What is the subject of the talk?")."""

import pytest

from repro.errors import AudioError
from repro.media.audio import rank_subjects, subject_of
from repro.media.audio.topics import UNKNOWN_SUBJECT
from repro.media.audio.wordspot import SpotResult, StreamFlag


def spot(keyword, margin=1.0):
    return SpotResult(keyword=keyword, score_margin=margin)


class TestRanking:
    def test_single_keyword_topic(self):
        ranked = rank_subjects([spot("biopsy")])
        assert ranked[0].topic == "intervention-planning"
        assert ranked[0].supporting_keywords == ("biopsy",)

    def test_margins_weight_votes(self):
        weak_urgent = rank_subjects([spot("urgent", 0.1), spot("lesion", 10.0)])
        assert weak_urgent[0].topic == "imaging-findings"
        strong_urgent = rank_subjects([spot("urgent", 10.0), spot("lesion", 0.1)])
        assert strong_urgent[0].topic == "triage"

    def test_garbage_results_ignored(self):
        ranked = rank_subjects([spot(None), spot("lesion")])
        assert ranked[0].topic == "imaging-findings"

    def test_unmapped_keywords_ignored(self):
        assert rank_subjects([spot("filler_a")]) == []

    def test_stream_flags_accepted(self):
        flags = [StreamFlag(keyword="biopsy", start_s=0, end_s=1, score_margin=2.0)]
        assert subject_of(flags) == "intervention-planning"

    def test_negative_margins_clamped(self):
        ranked = rank_subjects([spot("lesion", -5.0)])
        assert ranked[0].score > 0  # base weight survives

    def test_custom_topic_map(self):
        topic_map = {"lesion": {"oncology": 1.0}}
        assert subject_of([spot("lesion")], topic_map) == "oncology"
        with pytest.raises(AudioError):
            rank_subjects([spot("lesion")], {"lesion": {"x": 0.0}})


class TestSubjectOf:
    def test_unknown_when_nothing_spotted(self):
        assert subject_of([]) == UNKNOWN_SUBJECT
        assert subject_of([spot(None)]) == UNKNOWN_SUBJECT

    def test_multiple_supporting_keywords(self):
        ranked = rank_subjects([spot("lesion"), spot("normal")])
        imaging = next(t for t in ranked if t.topic == "imaging-findings")
        assert imaging.supporting_keywords == ("lesion", "normal")
