"""Unit tests for the JPEG-style baseline codec."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.media.image import Image, MultiLayerCodec, ct_phantom, psnr
from repro.media.image.jpeg_like import (
    _zigzag_order,
    blocking_artifact_index,
    jpeg_decode,
    jpeg_encode,
    jpeg_encode_to_budget,
)


@pytest.fixture(scope="module")
def phantom():
    return ct_phantom(128, seed=9)


class TestZigzag:
    def test_is_permutation(self):
        order = _zigzag_order()
        assert sorted(order) == list(range(64))

    def test_standard_prefix(self):
        # The canonical JPEG zigzag starts 0, 1, 8, 16, 9, 2, ...
        assert list(_zigzag_order()[:6]) == [0, 1, 8, 16, 9, 2]


class TestRoundTrip:
    @pytest.mark.parametrize("quality", [90, 50, 10])
    def test_decode_inverts_encode(self, phantom, quality):
        decoded = jpeg_decode(jpeg_encode(phantom, quality))
        assert decoded.shape == phantom.shape
        assert psnr(phantom, decoded) > 20.0

    def test_quality_monotone(self, phantom):
        values = [
            psnr(phantom, jpeg_decode(jpeg_encode(phantom, q))) for q in (10, 50, 90)
        ]
        assert values == sorted(values)

    def test_size_monotone(self, phantom):
        sizes = [len(jpeg_encode(phantom, q)) for q in (10, 50, 90)]
        assert sizes == sorted(sizes)

    def test_flat_image_compresses_hard(self):
        stream = jpeg_encode(Image(np.full((64, 64), 128.0)), 50)
        assert len(stream) < 300

    def test_bad_quality(self, phantom):
        with pytest.raises(CodecError):
            jpeg_encode(phantom, 0)
        with pytest.raises(CodecError):
            jpeg_encode(phantom, 101)

    def test_must_tile(self):
        with pytest.raises(CodecError, match="tile"):
            jpeg_encode(Image.zeros(100, 100))

    def test_corrupt_stream(self, phantom):
        stream = jpeg_encode(phantom, 50)
        with pytest.raises(CodecError):
            jpeg_decode(stream[: _header_len() + 10])
        with pytest.raises(CodecError):
            jpeg_decode(b"xx")


def _header_len():
    from repro.media.image.jpeg_like import _HEADER

    return _HEADER.size


class TestBudget:
    def test_fits_budget(self, phantom):
        stream, quality = jpeg_encode_to_budget(phantom, 6000)
        assert len(stream) <= 6000
        assert 1 <= quality <= 100

    def test_impossible_budget(self, phantom):
        with pytest.raises(CodecError, match="exceeds"):
            jpeg_encode_to_budget(phantom, 16)


class TestBlockingArtifacts:
    def test_clean_image_near_one(self, phantom):
        # Sensor noise and ellipse edges land on grid lines by chance, so
        # a clean image sits near (not exactly at) 1.0.
        assert blocking_artifact_index(phantom) < 1.25

    def test_harsh_jpeg_blocks_visibly(self, phantom):
        harsh = jpeg_decode(jpeg_encode(phantom, 5))
        assert blocking_artifact_index(harsh) > 1.4

    def test_multilayer_blocks_less_than_jpeg_at_matched_rate(self, phantom):
        """The reason the paper's codec exists (ref [3]: reducing the JPEG
        blocking effect)."""
        encoded = MultiLayerCodec(base_step=64.0).encode(phantom, num_layers=1)
        budget = encoded.prefix_size(1)
        decoded_ml = MultiLayerCodec.decode(encoded, 1)
        stream, _ = jpeg_encode_to_budget(phantom, max(budget, 2200))
        decoded_jpeg = jpeg_decode(stream)
        assert blocking_artifact_index(decoded_ml) < blocking_artifact_index(decoded_jpeg)

    def test_synthetic_blocked_image_detected(self):
        pixels = np.zeros((64, 64))
        for row in range(0, 64, 8):
            pixels[row : row + 8, :] = (row // 8) * 30.0
        # Pure block staircase: every jump lies exactly on the grid.
        assert blocking_artifact_index(Image(pixels)) > 5.0
