"""Unit tests for the image type, phantoms, ops and segmentation."""

import numpy as np
import pytest

from repro.errors import MediaError
from repro.media.image import (
    AnnotatedImage,
    Image,
    ct_phantom,
    fill_segment,
    label_regions,
    overlay_grid,
    xray_phantom,
    zoom,
)
from repro.media.image.segmentation import SegmentationGrid


class TestImage:
    def test_construction_and_shape(self):
        image = Image(np.zeros((4, 6)))
        assert image.shape == (4, 6)
        assert image.height == 4 and image.width == 6

    def test_rejects_non_2d(self):
        with pytest.raises(MediaError):
            Image(np.zeros(5))
        with pytest.raises(MediaError):
            Image(np.zeros((2, 2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(MediaError):
            Image(np.zeros((0, 5)))

    def test_bytes_round_trip(self):
        image = ct_phantom(64, seed=1)
        restored = Image.from_bytes(image.to_bytes())
        assert restored.shape == image.shape
        assert np.allclose(restored.pixels, image.to_uint8())

    def test_from_bytes_validates(self):
        with pytest.raises(MediaError):
            Image.from_bytes(b"short")
        good = Image.zeros(2, 2).to_bytes()
        with pytest.raises(MediaError, match="mismatch"):
            Image.from_bytes(good + b"extra")

    def test_crop(self):
        image = ct_phantom(64, seed=1)
        region = image.crop(10, 20, 16, 8)
        assert region.shape == (16, 8)
        assert np.array_equal(region.pixels, image.pixels[10:26, 20:28])

    def test_crop_validation(self):
        image = Image.zeros(10, 10)
        with pytest.raises(MediaError):
            image.crop(5, 5, 10, 10)
        with pytest.raises(MediaError):
            image.crop(-1, 0, 2, 2)

    def test_copy_is_independent(self):
        image = Image.zeros(4, 4)
        clone = image.copy()
        clone.pixels[0, 0] = 99
        assert image.pixels[0, 0] == 0


class TestPhantoms:
    def test_deterministic(self):
        assert ct_phantom(64, seed=3) == ct_phantom(64, seed=3)
        assert ct_phantom(64, seed=3) != ct_phantom(64, seed=4)

    def test_ct_structure(self):
        image = ct_phantom(128, seed=0)
        center = image.pixels[60:70, 60:70].mean()
        corner = image.pixels[:8, :8].mean()
        assert center > 40  # brain tissue
        assert corner < 20  # air

    def test_xray_structure(self):
        image = xray_phantom(128, 96, seed=0)
        lungs = image.pixels[50:70, 20:35].mean()
        middle = image.pixels[50:70, 44:52].mean()
        assert lungs < middle  # lungs darker than mediastinum

    def test_intensity_range(self):
        image = ct_phantom(64, seed=0)
        assert image.pixels.min() >= 0 and image.pixels.max() <= 255


class TestZoom:
    def test_replication(self):
        image = Image(np.arange(16, dtype=float).reshape(4, 4))
        zoomed = zoom(image, 1, 1, 2, 2, factor=3)
        assert zoomed.shape == (6, 6)
        assert np.all(zoomed.pixels[:3, :3] == image.pixels[1, 1])

    def test_factor_one_is_crop(self):
        image = ct_phantom(32, seed=0)
        assert zoom(image, 4, 4, 8, 8, factor=1) == image.crop(4, 4, 8, 8)

    def test_bad_factor(self):
        with pytest.raises(MediaError):
            zoom(Image.zeros(4, 4), 0, 0, 2, 2, factor=0)


class TestAnnotations:
    def test_add_and_render_line(self):
        annotated = AnnotatedImage(Image.zeros(20, 20))
        annotated.add_line(0, 0, 19, 19, intensity=200.0)
        rendered = annotated.render()
        assert rendered.pixels[0, 0] == 200.0
        assert rendered.pixels[19, 19] == 200.0
        assert rendered.pixels[0, 19] == 0.0

    def test_text_marks_pixels(self):
        annotated = AnnotatedImage(Image.zeros(30, 60))
        annotated.add_text("ab", 5, 5, intensity=255.0)
        rendered = annotated.render()
        assert (rendered.pixels > 0).sum() > 0

    def test_delete_element_restores_base(self):
        base = ct_phantom(32, seed=0)
        annotated = AnnotatedImage(base)
        line = annotated.add_line(0, 0, 31, 31)
        text = annotated.add_text("x", 2, 2)
        annotated.delete_element(line.element_id)
        annotated.delete_element(text.element_id)
        assert annotated.render() == base

    def test_delete_unknown(self):
        with pytest.raises(MediaError, match="no annotation"):
            AnnotatedImage(Image.zeros(4, 4)).delete_element(999)

    def test_elements_listed(self):
        annotated = AnnotatedImage(Image.zeros(8, 8))
        annotated.add_line(0, 0, 1, 1)
        annotated.add_text("t", 0, 0)
        assert len(annotated.elements) == 2

    def test_line_clipped_outside(self):
        annotated = AnnotatedImage(Image.zeros(4, 4))
        annotated.add_line(-5, -5, 10, 10)  # must not raise
        annotated.render()


class TestGridSegmentation:
    def test_grid_bounds_cover_image(self):
        grid = SegmentationGrid(rows=3, cols=4, height=30, width=40)
        covered = np.zeros((30, 40), dtype=int)
        for r in range(3):
            for c in range(4):
                top, left, bottom, right = grid.cell_bounds(r, c)
                covered[top:bottom, left:right] += 1
        assert np.all(covered == 1)

    def test_cell_of_inverts_bounds(self):
        grid = SegmentationGrid(rows=3, cols=3, height=30, width=30)
        assert grid.cell_of(0, 0) == (0, 0)
        assert grid.cell_of(29, 29) == (2, 2)
        assert grid.cell_of(15, 5) == (1, 0)

    def test_bad_grid(self):
        with pytest.raises(MediaError):
            SegmentationGrid(rows=0, cols=2, height=10, width=10)
        with pytest.raises(MediaError):
            SegmentationGrid(rows=20, cols=2, height=10, width=10)

    def test_overlay_draws_lines(self):
        image = Image.zeros(30, 30)
        gridded, grid = overlay_grid(image, 3, 3, intensity=255.0)
        assert gridded.pixels[10, :].max() == 255.0
        assert grid.rows == 3

    def test_fill_patterns(self):
        image = Image.zeros(30, 30)
        __, grid = overlay_grid(image, 3, 3)
        for pattern in ("solid", "hatch", "checker"):
            filled = fill_segment(image, grid, 1, 1, value=200.0, pattern=pattern)
            top, left, bottom, right = grid.cell_bounds(1, 1)
            assert filled.pixels[top:bottom, left:right].max() == 200.0
            # Other cells untouched.
            assert filled.pixels[0:top, :].max() == 0.0

    def test_fill_bad_pattern(self):
        image = Image.zeros(30, 30)
        __, grid = overlay_grid(image, 3, 3)
        with pytest.raises(MediaError, match="pattern"):
            fill_segment(image, grid, 0, 0, pattern="zigzag")

    def test_fill_grid_mismatch(self):
        __, grid = overlay_grid(Image.zeros(30, 30), 3, 3)
        with pytest.raises(MediaError, match="match"):
            fill_segment(Image.zeros(40, 40), grid, 0, 0)


class TestLabelRegions:
    def test_finds_contrasting_blob(self):
        pixels = np.zeros((32, 32))
        pixels[8:16, 8:16] = 200.0
        labels = label_regions(Image(pixels), levels=4, min_size=16)
        blob_labels = set(labels[8:16, 8:16].ravel())
        assert len(blob_labels) == 1
        assert labels[0, 0] != labels[10, 10]

    def test_small_regions_dropped(self):
        pixels = np.zeros((32, 32))
        pixels[4, 4] = 250.0  # single pixel speck
        labels = label_regions(Image(pixels), levels=4, min_size=16)
        assert labels[4, 4] == 0

    def test_levels_validated(self):
        with pytest.raises(MediaError):
            label_regions(Image.zeros(8, 8), levels=1)

    def test_phantom_yields_multiple_regions(self):
        labels = label_regions(ct_phantom(64, seed=0, noise=0.0), levels=5)
        assert labels.max() >= 3  # air, skull, brain at least
