"""Tests for the ultrasound phantom and its end-to-end use
(the paper's named future test case)."""

import numpy as np

from repro.media.image import MultiLayerCodec, ct_phantom, psnr, ultrasound_phantom


class TestPhantomStructure:
    def test_deterministic(self):
        assert ultrasound_phantom(128, seed=2) == ultrasound_phantom(128, seed=2)
        assert ultrasound_phantom(128, seed=2) != ultrasound_phantom(128, seed=3)

    def test_fan_geometry(self):
        image = ultrasound_phantom(128, seed=0)
        # Corners are outside the insonified fan -> black.
        assert image.pixels[0, 0] == 0.0
        assert image.pixels[0, -1] == 0.0
        assert image.pixels[-1, 0] == 0.0
        # The central field has echo.
        assert image.pixels[50:70, 55:75].mean() > 10

    def test_cyst_is_anechoic(self):
        image = ultrasound_phantom(256, seed=0)
        cyst_region = image.pixels[110:120, 103:112]
        surrounding = image.pixels[110:120, 140:160]
        assert cyst_region.mean() < surrounding.mean() / 2

    def test_speckle_statistics(self):
        """Ultrasound speckle is heavier-tailed than CT sensor noise."""
        us = ultrasound_phantom(128, seed=0)
        ct = ct_phantom(128, seed=0)
        fan = us.pixels[us.pixels > 0]
        brain = ct.pixels[(ct.pixels > 80) & (ct.pixels < 140)]
        assert np.std(fan) / (np.mean(fan) + 1e-9) > np.std(brain) / np.mean(brain)

    def test_intensity_range(self):
        image = ultrasound_phantom(64, seed=1)
        assert image.pixels.min() >= 0 and image.pixels.max() <= 255


class TestUltrasoundThroughCodec:
    def test_progressive_quality(self):
        image = ultrasound_phantom(128, seed=4)
        encoded = MultiLayerCodec(wavelet_levels=2).encode(image, num_layers=3)
        qualities = [
            psnr(image, MultiLayerCodec.decode(encoded, k)) for k in (1, 2, 3)
        ]
        assert qualities == sorted(qualities)
        assert qualities[-1] > 35.0

    def test_speckle_costs_rate(self):
        """Speckle is incompressible texture: at equal settings the
        ultrasound stream is larger than the smooth CT's."""
        codec = MultiLayerCodec(wavelet_levels=2)
        us_size = codec.encode(ultrasound_phantom(128, seed=5), 3).prefix_size(3)
        ct_size = codec.encode(ct_phantom(128, seed=5), 3).prefix_size(3)
        assert us_size > ct_size
