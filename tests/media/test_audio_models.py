"""Unit tests for GMM, CD-HMM, word spotting and speaker spotting.

Model-training fixtures are session-scoped: training is the expensive
part and the trained models are immutable for the assertions below.
"""

import numpy as np
import pytest

from repro.errors import AudioError
from repro.media.audio import (
    CDHMM,
    ConversationBuilder,
    DiagonalGMM,
    SpeakerSpotter,
    WordSpotter,
    segment_audio,
    synth_word,
)
from repro.media.audio.gmm import logsumexp
from repro.media.audio.synth import DEFAULT_SPEAKERS, KEYWORDS

ADAMS, BAKER, COSTA, CHILD = DEFAULT_SPEAKERS
TRIO = (ADAMS, BAKER, COSTA)


@pytest.fixture(scope="session")
def speaker_spotter():
    return SpeakerSpotter.enroll_default(TRIO, seed=1)


@pytest.fixture(scope="session")
def word_spotter():
    return WordSpotter.train_default(KEYWORDS, TRIO, seed=2)


class TestLogsumexp:
    def test_matches_naive(self):
        values = np.log(np.array([[1.0, 2.0, 3.0]]))
        assert logsumexp(values, axis=1)[0] == pytest.approx(np.log(6.0))

    def test_handles_large_magnitudes(self):
        values = np.array([[-1000.0, -1000.0]])
        assert np.isfinite(logsumexp(values, axis=1))[0]


class TestGMM:
    def test_fits_two_clusters(self):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [rng.normal(-3, 0.5, (100, 2)), rng.normal(3, 0.5, (100, 2))]
        )
        gmm = DiagonalGMM(2, seed=0).fit(data)
        centers = sorted(gmm.means[:, 0])
        assert centers[0] == pytest.approx(-3, abs=0.5)
        assert centers[1] == pytest.approx(3, abs=0.5)

    def test_likelihood_higher_for_in_distribution(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, (200, 3))
        gmm = DiagonalGMM(2, seed=0).fit(data)
        inside = gmm.average_log_likelihood(rng.normal(0, 1, (50, 3)))
        outside = gmm.average_log_likelihood(rng.normal(10, 1, (50, 3)))
        assert inside > outside

    def test_weights_normalized(self):
        rng = np.random.default_rng(1)
        gmm = DiagonalGMM(3, seed=0).fit(rng.normal(0, 1, (60, 2)))
        assert gmm.weights.sum() == pytest.approx(1.0)

    def test_unfitted_rejected(self):
        with pytest.raises(AudioError, match="not fitted"):
            DiagonalGMM(2).log_likelihood(np.zeros((3, 2)))

    def test_too_few_points_rejected(self):
        with pytest.raises(AudioError):
            DiagonalGMM(5).fit(np.zeros((3, 2)))

    def test_bad_component_count(self):
        with pytest.raises(AudioError):
            DiagonalGMM(0)


class TestCDHMM:
    def _sequences(self, flip=False, count=5, seed=0):
        """Sequences moving between two emission regimes."""
        rng = np.random.default_rng(seed)
        sequences = []
        for _ in range(count):
            first = rng.normal(-2, 0.3, (12, 2))
            second = rng.normal(2, 0.3, (12, 2))
            parts = (second, first) if flip else (first, second)
            sequences.append(np.vstack(parts))
        return sequences

    def test_viterbi_segments_regimes(self):
        hmm = CDHMM(2, topology="left_to_right", seed=0).fit(self._sequences())
        path, _ = hmm.viterbi(self._sequences(count=1, seed=9)[0])
        assert path[0] == 0
        assert path[-1] == 1
        assert path == sorted(path)  # left-to-right never goes back

    def test_score_prefers_matching_order(self):
        forward = CDHMM(2, seed=0).fit(self._sequences())
        test_match = self._sequences(count=1, seed=5)[0]
        test_flip = self._sequences(flip=True, count=1, seed=5)[0]
        assert forward.score(test_match) > forward.score(test_flip)

    def test_training_improves_likelihood(self):
        sequences = self._sequences()
        hmm = CDHMM(2, seed=0)
        hmm._initialize(sequences)
        before = sum(hmm.score(s) for s in sequences)
        hmm.fit(sequences)
        after = sum(hmm.score(s) for s in sequences)
        assert after >= before - 1e-6

    def test_forward_backward_consistency(self):
        hmm = CDHMM(3, topology="ergodic", seed=0).fit(self._sequences())
        sequence = self._sequences(count=1, seed=3)[0]
        alpha, log_prob = hmm.log_forward(sequence)
        beta = hmm.log_backward(sequence)
        # At every t, sum_s alpha*beta equals the total likelihood.
        for t in (0, len(sequence) // 2, len(sequence) - 1):
            assert logsumexp(alpha[t] + beta[t], axis=0) == pytest.approx(log_prob, abs=1e-6)

    def test_validation(self):
        with pytest.raises(AudioError):
            CDHMM(0)
        with pytest.raises(AudioError):
            CDHMM(2, topology="ring")
        with pytest.raises(AudioError):
            CDHMM(2, num_mixtures=0)
        with pytest.raises(AudioError):
            CDHMM(2).fit([])
        with pytest.raises(AudioError, match="frames"):
            CDHMM(5).fit([np.zeros((2, 3))])
        with pytest.raises(AudioError, match="not fitted"):
            CDHMM(2).score(np.zeros((5, 2)))

    def _bimodal_sequences(self, count, seed):
        r = np.random.default_rng(seed)
        out = []
        for _ in range(count):
            first = np.where(
                r.random((14, 1)) < 0.5,
                r.normal(-3, 0.3, (14, 2)),
                r.normal(3, 0.3, (14, 2)),
            )
            second = r.normal(0, 0.3, (14, 2))
            out.append(np.vstack([first, second]))
        return out

    def test_mixture_emissions_model_bimodal_states(self):
        """The *continuous density mixture* part of CD-HMM: two Gaussians
        per state capture a bimodal emission a single Gaussian cannot."""
        train = self._bimodal_sequences(8, seed=1)
        test = self._bimodal_sequences(3, seed=99)
        single = CDHMM(2, num_mixtures=1, seed=0).fit(train)
        double = CDHMM(2, num_mixtures=2, seed=0).fit(train)
        assert sum(double.score(s) for s in test) > sum(single.score(s) for s in test) + 10

    def test_mixture_weights_normalized(self):
        hmm = CDHMM(2, num_mixtures=3, seed=0).fit(self._bimodal_sequences(4, seed=2))
        assert np.allclose(np.exp(hmm.log_mix).sum(axis=1), 1.0, atol=1e-6)

    def test_single_mixture_matches_legacy_shape(self):
        hmm = CDHMM(2, num_mixtures=1, seed=0).fit(self._sequences())
        assert hmm.means.shape == (2, 1, 2)
        path, _ = hmm.viterbi(self._sequences(count=1, seed=9)[0])
        assert path == sorted(path)


class TestWordSpotting:
    def test_keywords_detected_across_speakers(self, word_spotter):
        hits = 0
        cases = [(word, speaker) for word in KEYWORDS for speaker in TRIO]
        for word, speaker in cases:
            result = word_spotter.spot(synth_word(word, speaker, seed=555))
            hits += result.keyword == word
        assert hits >= len(cases) - 1  # allow one borderline miss

    def test_fillers_not_flagged(self, word_spotter):
        false_alarms = 0
        for filler in ("filler_a", "filler_b", "filler_c"):
            for speaker in TRIO:
                result = word_spotter.spot(synth_word(filler, speaker, seed=321))
                false_alarms += result.keyword is not None
        assert false_alarms <= 1

    def test_spot_segments_skips_non_speech(self, word_spotter):
        signal, _ = (
            ConversationBuilder(seed=4)
            .pause(0.3).say(ADAMS, "urgent").music(0.8).pause(0.3)
        ).build()
        segments = segment_audio(signal)
        results = word_spotter.spot_segments(signal, segments)
        assert len(results) == 1
        assert results[0][1].keyword == "urgent"

    def test_untrained_rejected(self):
        with pytest.raises(AudioError, match="not trained"):
            WordSpotter(("lesion",)).spot(synth_word("lesion", ADAMS))

    def test_training_validation(self):
        with pytest.raises(AudioError):
            WordSpotter(())
        spotter = WordSpotter(("lesion",))
        with pytest.raises(AudioError, match=">= 2"):
            spotter.train({"lesion": [synth_word("lesion", ADAMS)]}, [])


class TestSpeakerSpotting:
    def test_identification_accuracy(self, speaker_spotter):
        correct = total = 0
        for speaker in TRIO:
            for word in ("lesion", "urgent", "filler_b"):
                decision = speaker_spotter.identify(synth_word(word, speaker, seed=808))
                correct += decision.speaker == speaker.name
                total += 1
        assert correct / total >= 0.85

    def test_unenrolled_speaker_rejected(self, speaker_spotter):
        decision = speaker_spotter.identify(synth_word("lesion", CHILD, seed=5))
        assert decision.speaker is None

    def test_text_independence(self, speaker_spotter):
        """Recognizes the speaker on words enrolled in different order/seed."""
        decision = speaker_spotter.identify(synth_word("urgent", BAKER, seed=12345))
        assert decision.speaker == BAKER.name

    def test_counts_conversation_speakers(self, speaker_spotter):
        signal, _ = (
            ConversationBuilder(seed=11)
            .pause(0.3).say(ADAMS, "lesion").pause(0.3)
            .say(BAKER, "filler_a").pause(0.3).say(ADAMS, "normal").pause(0.3)
        ).build()
        segments = segment_audio(signal)
        assert speaker_spotter.count_speakers(signal, segments) == 2

    def test_enrolled_listing(self, speaker_spotter):
        assert speaker_spotter.enrolled == ("dr-adams", "dr-baker", "dr-costa")

    def test_unready_rejected(self):
        with pytest.raises(AudioError):
            SpeakerSpotter().identify(synth_word("lesion", ADAMS))
        spotter = SpeakerSpotter()
        with pytest.raises(AudioError):
            spotter.finalize()

    def test_enrollment_validation(self):
        with pytest.raises(AudioError, match="no enrollment"):
            SpeakerSpotter().enroll("x", [])
