"""Unit tests for fuzzy queries and the annotation quadtree."""

import random

import pytest

from repro.db import Database, MultimediaObjectStore
from repro.errors import DatabaseError
from repro.retrieval import (
    AnnotationSpatialIndex,
    FuzzyQuery,
    Quadtree,
    about,
    at_least,
    at_most,
    fuzzy_and,
    fuzzy_or,
)
from repro.retrieval.fuzzy import equals, graded

ROWS = [
    {"name": "alice", "age": 61, "lesion_mm": 9.0, "ward": "icu"},
    {"name": "bob", "age": 40, "lesion_mm": 12.0, "ward": "er"},
    {"name": "carol", "age": 58, "lesion_mm": 3.0, "ward": "icu"},
    {"name": "dave", "age": 64, "lesion_mm": 8.5, "ward": None},
]


class TestMembershipFunctions:
    def test_about_triangular(self):
        grade = about("age", 60, 10)
        assert grade({"age": 60}) == 1.0
        assert grade({"age": 55}) == pytest.approx(0.5)
        assert grade({"age": 75}) == 0.0
        assert grade({"age": None}) == 0.0
        assert grade({}) == 0.0

    def test_at_least_ramp(self):
        grade = at_least("lesion_mm", 8, 4)
        assert grade({"lesion_mm": 9}) == 1.0
        assert grade({"lesion_mm": 6}) == pytest.approx(0.5)
        assert grade({"lesion_mm": 3}) == 0.0

    def test_at_most_ramp(self):
        grade = at_most("age", 50, 10)
        assert grade({"age": 45}) == 1.0
        assert grade({"age": 55}) == pytest.approx(0.5)
        assert grade({"age": 65}) == 0.0

    def test_equals(self):
        grade = equals("ward", "icu")
        assert grade({"ward": "icu"}) == 1.0
        assert grade({"ward": "er"}) == 0.0

    def test_graded_clamps(self):
        grade = graded(lambda row: row["raw"])
        assert grade({"raw": 3.0}) == 1.0
        assert grade({"raw": -1.0}) == 0.0

    def test_booleans_not_numeric(self):
        assert about("age", 1, 1)({"age": True}) == 0.0

    def test_parameter_validation(self):
        with pytest.raises(DatabaseError):
            about("age", 60, 0)
        with pytest.raises(DatabaseError):
            at_least("x", 1, -1)
        with pytest.raises(DatabaseError):
            at_most("x", 1, 0)


class TestCombinators:
    def test_min_t_norm(self):
        grade = fuzzy_and(about("age", 60, 10), at_least("lesion_mm", 8, 4))
        assert grade(ROWS[0]) == pytest.approx(0.9)  # min(0.9, 1.0)

    def test_product_t_norm(self):
        grade = fuzzy_and(
            about("age", 60, 10), at_least("lesion_mm", 8, 4), t_norm="product"
        )
        assert grade(ROWS[0]) == pytest.approx(0.9 * 1.0)

    def test_or_takes_max(self):
        grade = fuzzy_or(equals("ward", "icu"), at_least("lesion_mm", 10, 2))
        assert grade(ROWS[1]) == 1.0  # big lesion, wrong ward
        assert grade(ROWS[2]) == 1.0  # icu, small lesion

    def test_validation(self):
        with pytest.raises(DatabaseError):
            fuzzy_and()
        with pytest.raises(DatabaseError):
            fuzzy_or()
        with pytest.raises(DatabaseError):
            fuzzy_and(equals("a", 1), t_norm="lukasiewicz")


class TestTopK:
    def test_ranked_results(self):
        query = FuzzyQuery(fuzzy_and(about("age", 60, 10), at_least("lesion_mm", 8, 4)))
        results = query.top_k(ROWS, k=3)
        assert [r.row["name"] for r in results] == ["alice", "dave"]
        assert results[0].score > results[1].score

    def test_floor_filters(self):
        query = FuzzyQuery(about("age", 60, 10))
        assert all(r.score > 0.5 for r in query.top_k(ROWS, k=4, floor=0.5))

    def test_k_validated(self):
        with pytest.raises(DatabaseError):
            FuzzyQuery(equals("a", 1)).top_k(ROWS, k=0)

    def test_works_over_sql_rows(self, tmp_path):
        from repro.db.sql import execute

        with Database(str(tmp_path / "db")) as db:
            execute(db, "CREATE TABLE pts (id INTEGER PRIMARY KEY AUTOINCREMENT, age INTEGER)")
            for age in (30, 59, 62, 90):
                execute(db, "INSERT INTO pts (age) VALUES (?)", [age])
            rows = execute(db, "SELECT * FROM pts").rows
            best = FuzzyQuery(about("age", 60, 10)).top_k(rows, k=1)
            assert best[0].row["age"] == 59 or best[0].row["age"] == 62


class TestQuadtree:
    @pytest.fixture
    def points(self):
        rng = random.Random(3)
        return [(rng.uniform(0, 200), rng.uniform(0, 200), i) for i in range(300)]

    @pytest.fixture
    def tree(self, points):
        tree = Quadtree(200, 200)
        for x, y, payload in points:
            tree.insert(x, y, payload)
        return tree

    def test_rect_query_matches_brute_force(self, tree, points):
        hits = tree.query_rect(30, 40, 120, 90)
        expected = sorted(p for x, y, p in points if 30 <= x <= 120 and 40 <= y <= 90)
        assert sorted(h.payload for h in hits) == expected

    def test_nearest_matches_brute_force(self, tree, points):
        for probe in ((0, 0), (100, 100), (199, 3)):
            hit = tree.nearest(*probe)
            best = min(points, key=lambda p: (p[0] - probe[0]) ** 2 + (p[1] - probe[1]) ** 2)
            assert hit.payload == best[2]

    def test_empty_tree(self):
        tree = Quadtree(10, 10)
        assert tree.nearest(5, 5) is None
        assert tree.query_rect(0, 0, 10, 10) == []

    def test_out_of_bounds_rejected(self):
        tree = Quadtree(10, 10)
        with pytest.raises(DatabaseError, match="outside"):
            tree.insert(11, 5)

    def test_bad_rectangle(self):
        with pytest.raises(DatabaseError):
            Quadtree(10, 10).query_rect(5, 5, 1, 1)

    def test_duplicate_points_allowed(self):
        tree = Quadtree(10, 10)
        for i in range(20):  # exceeds node capacity at one spot
            tree.insert(5, 5, i)
        assert len(tree.query_rect(5, 5, 5, 5)) == 20


class TestAnnotationIndex:
    def test_from_store_round_trip(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            store = MultimediaObjectStore(db)
            store.store_annotation("doc", "ct", "lee", {"type": "text", "text": "a", "x": 10, "y": 20})
            store.store_annotation("doc", "ct", "cho", {"type": "text", "text": "b", "x": 150, "y": 150})
            store.store_annotation("doc", "ct", "lee", {"type": "note"})  # no position
            index = AnnotationSpatialIndex.from_store(store, "doc", "ct", 256, 256)
            assert len(index) == 2
            assert index.skipped == 1
            in_region = index.marks_in_region(0, 0, 100, 100)
            assert [m["text"] for m in in_region] == ["a"]
            assert index.mark_near(140, 160)["text"] == "b"
            assert in_region[0]["viewer"] == "lee"
