"""Unit tests for the article search engine."""

import pytest

from repro.db import Database
from repro.errors import DatabaseError
from repro.retrieval.text import ArticleSearchEngine, parse_query, tokenize

ARTICLES = [
    ("CT findings in small cerebral lesions",
     "Contrast enhanced CT imaging of small lesions shows ring enhancement. "
     "Follow up imaging at three months is recommended for cerebral lesions."),
    ("Pediatric chest X-ray interpretation",
     "Interpretation of pediatric chest radiographs requires attention to "
     "thymic shadow and rib anomalies."),
    ("Ultrasound guided biopsy protocols",
     "Ultrasound guidance improves biopsy yield for hepatic lesions. "
     "Contrast agents are rarely required."),
    ("Telemedicine in rural consultation",
     "Remote consultation reduces transfer rates. Bandwidth constraints "
     "limit image quality in rural telemedicine deployments."),
]


@pytest.fixture
def engine(tmp_path):
    db = Database(str(tmp_path / "db"))
    engine = ArticleSearchEngine(db)
    for title, body in ARTICLES:
        engine.add_article(title, body, source="journal")
    yield engine
    db.close()


class TestTokenizer:
    def test_lowercase_and_stopwords(self):
        assert tokenize("The CT scan IS ready") == ["ct", "scan", "ready"]

    def test_punctuation_split(self):
        assert tokenize("follow-up, imaging.") == ["follow", "up", "imaging"]


class TestParseQuery:
    def test_plain_terms(self):
        parsed = parse_query("ct lesion")
        assert parsed.terms == ("ct", "lesion")
        assert parsed.required == () and parsed.excluded == ()

    def test_required_excluded(self):
        parsed = parse_query("lesion +contrast -pediatric")
        assert parsed.required == ("contrast",)
        assert parsed.excluded == ("pediatric",)

    def test_phrases(self):
        parsed = parse_query('"follow up" imaging')
        assert parsed.phrases == (("follow", "up"),)
        assert "follow" in parsed.terms  # phrase words also rank

    def test_empty_rejected(self):
        with pytest.raises(DatabaseError):
            parse_query("the and of")


class TestSearch:
    def test_ranked_relevance(self, engine):
        hits = engine.search("cerebral lesion imaging", k=2)
        assert hits[0].title.startswith("CT findings")
        assert hits[0].score > 0

    def test_required_term_filters(self, engine):
        hits = engine.search("lesions +ultrasound")
        assert [h.title for h in hits] == ["Ultrasound guided biopsy protocols"]

    def test_excluded_term_filters(self, engine):
        titles = [h.title for h in engine.search("lesions -cerebral")]
        assert "CT findings in small cerebral lesions" not in titles
        assert titles  # others still match

    def test_phrase_match(self, engine):
        hits = engine.search('"follow up"')
        assert [h.title for h in hits] == ["CT findings in small cerebral lesions"]
        assert engine.search('"up follow" imaging', k=5) != hits  # order matters

    def test_snippet_centers_on_match(self, engine):
        hit = engine.search("bandwidth")[0]
        assert "bandwidth" in hit.snippet.lower()

    def test_no_match(self, engine):
        assert engine.search("zebra") == []

    def test_k_validated(self, engine):
        with pytest.raises(DatabaseError):
            engine.search("ct", k=0)

    def test_remove_article(self, engine):
        target = engine.search("telemedicine")[0]
        engine.remove_article(target.article_id)
        assert engine.search("telemedicine") == []
        assert len(engine) == 3

    def test_index_rebuilt_on_reopen(self, tmp_path):
        path = str(tmp_path / "db2")
        with Database(path) as db:
            ArticleSearchEngine(db).add_article("Title A", "unique zebra content")
        with Database(path) as db:
            engine = ArticleSearchEngine(db)
            assert engine.search("zebra")[0].title == "Title A"

    def test_idf_downweights_common_terms(self, engine):
        # 'lesions' appears in several docs, 'thymic' in exactly one: the
        # rare term carries more weight per occurrence.
        assert engine._idf("thymic") > engine._idf("lesions")
        assert engine._idf("nonexistent") == 0.0

    def test_rare_term_dominates_at_equal_tf(self, engine):
        # Querying only the rare term surfaces its document first and alone.
        hits = engine.search("thymic")
        assert [h.title for h in hits] == ["Pediatric chest X-ray interpretation"]
