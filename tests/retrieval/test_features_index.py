"""Unit tests for image descriptors and the similar-image index."""

import numpy as np
import pytest

from repro.db import Database, MultimediaObjectStore
from repro.errors import DatabaseError, MediaError
from repro.media.image import Image, ct_phantom, ultrasound_phantom, xray_phantom
from repro.retrieval import SimilarImageIndex, descriptor_distance, image_descriptor
from repro.retrieval.features import DESCRIPTOR_DIM, descriptor_similarity


class TestDescriptors:
    def test_shape_and_determinism(self):
        image = ct_phantom(128, seed=1)
        descriptor = image_descriptor(image)
        assert descriptor.shape == (DESCRIPTOR_DIM,)
        assert np.array_equal(descriptor, image_descriptor(image))

    def test_identical_images_zero_distance(self):
        image = ct_phantom(64, seed=2)
        assert descriptor_distance(image_descriptor(image), image_descriptor(image)) == 0.0
        assert descriptor_similarity(image_descriptor(image), image_descriptor(image)) == 1.0

    def test_same_modality_closer_than_cross_modality(self):
        ct_a = image_descriptor(ct_phantom(128, seed=1))
        ct_b = image_descriptor(ct_phantom(128, seed=2))
        us = image_descriptor(ultrasound_phantom(128, seed=1))
        assert descriptor_distance(ct_a, ct_b) < descriptor_distance(ct_a, us)

    def test_size_invariance_within_modality(self):
        small = image_descriptor(ct_phantom(64, seed=3))
        large = image_descriptor(ct_phantom(256, seed=3))
        other = image_descriptor(xray_phantom(128, 128, seed=3))
        assert descriptor_distance(small, large) < descriptor_distance(small, other)

    def test_non_pow2_sides_padded(self):
        image = Image(np.random.default_rng(0).uniform(0, 255, (50, 70)))
        assert image_descriptor(image).shape == (DESCRIPTOR_DIM,)

    def test_distance_validates_shape(self):
        with pytest.raises(MediaError):
            descriptor_distance(np.zeros(3), np.zeros(4))


@pytest.fixture
def index(tmp_path):
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    index = SimilarImageIndex(store)
    for seed in range(3):
        index.add_image(ct_phantom(128, seed=seed), label=f"ct-{seed}")
    for seed in range(2):
        index.add_image(xray_phantom(128, 128, seed=seed), label=f"xray-{seed}")
    index.add_image(ultrasound_phantom(128, seed=0), label="us-0")
    yield index
    db.close()


class TestSimilarImageIndex:
    def test_query_ranks_same_modality_first(self, index):
        hits = index.query(ct_phantom(128, seed=42), k=3)
        assert all(hit.label.startswith("ct-") for hit in hits)

    def test_xray_probe_finds_xrays(self, index):
        hits = index.query(xray_phantom(128, 128, seed=9), k=2)
        assert all(hit.label.startswith("xray-") for hit in hits)

    def test_query_by_ref_excludes_self(self, index):
        some_ref = index.db.select("IMAGE_FEATURES_TABLE")[0]["FLD_MEDIAREF"]
        hits = index.query_by_ref(some_ref, k=10)
        assert all(hit.media_ref != some_ref for hit in hits)

    def test_scores_sorted_descending(self, index):
        hits = index.query(ct_phantom(128, seed=42), k=6)
        scores = [hit.similarity for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_len_and_remove(self, index):
        assert len(index) == 6
        ref = index.db.select("IMAGE_FEATURES_TABLE")[0]["FLD_MEDIAREF"]
        index.remove(ref)
        assert len(index) == 5
        with pytest.raises(DatabaseError):
            index.remove(ref)

    def test_add_is_upsert(self, index):
        ref = index.db.select("IMAGE_FEATURES_TABLE")[0]["FLD_MEDIAREF"]
        index.add(ref, label="relabelled")
        assert len(index) == 6

    def test_rebuild(self, index):
        assert index.rebuild() == 6

    def test_k_validated(self, index):
        with pytest.raises(DatabaseError):
            index.query(ct_phantom(64), k=0)

    def test_index_survives_reopen(self, tmp_path):
        path = str(tmp_path / "db2")
        with Database(path) as db:
            index = SimilarImageIndex(MultimediaObjectStore(db))
            index.add_image(ct_phantom(128, seed=7), label="ct")
        with Database(path) as db:
            index = SimilarImageIndex(MultimediaObjectStore(db))
            assert len(index) == 1
            assert index.query(ct_phantom(128, seed=7), k=1)[0].label == "ct"
