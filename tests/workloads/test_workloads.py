"""Unit tests for generated records and scripted sessions."""

import pytest

from repro.document import build_sample_medical_record
from repro.workloads import (
    consultation_events,
    generate_record,
    generate_record_corpus,
    random_choice_events,
)


class TestGeneratedRecords:
    def test_size_scales_with_parameters(self):
        small = generate_record("s", sections=2, components_per_section=2, seed=1)
        large = generate_record("l", sections=5, components_per_section=4, seed=1)
        assert len(small.components()) == 2 * 2 + 2
        assert len(large.components()) == 5 * 4 + 5

    def test_deterministic(self):
        first = generate_record("x", seed=9)
        second = generate_record("x", seed=9)
        assert first.default_presentation() == second.default_presentation()
        assert first.component_paths() == second.component_paths()

    def test_network_is_valid(self):
        generate_record("x", sections=4, components_per_section=4, seed=3).network.validate()

    def test_default_view_is_compact(self):
        doc = generate_record("x", sections=4, components_per_section=4, seed=3)
        default_bytes = doc.presentation_bytes(doc.default_presentation())
        total_bytes = sum(
            node.presentation_size(value)
            for node in doc.components().values()
            if node.is_primitive
            for value in node.domain
        )
        assert default_bytes < total_bytes / 5

    def test_corpus_distinct(self):
        corpus = generate_record_corpus(3, seed=1)
        assert len({doc.doc_id for doc in corpus}) == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_record("x", sections=0)
        with pytest.raises(ValueError):
            generate_record("x", components_per_section=0)

    def test_serializes(self):
        from repro.document.serialize import document_from_json, document_to_json

        doc = generate_record("x", seed=5)
        clone = document_from_json(document_to_json(doc))
        assert clone.default_presentation() == doc.default_presentation()


class TestSessions:
    def test_events_reference_real_alternatives(self):
        doc = build_sample_medical_record()
        for component, value in consultation_events(doc, num_events=15, seed=2):
            assert value in doc.component(component).domain

    def test_events_never_choose_current_value(self):
        doc = build_sample_medical_record()
        evidence = {}
        outcome = doc.default_presentation()
        for component, value in consultation_events(doc, num_events=15, seed=2):
            assert outcome[component] != value
            evidence[component] = value
            outcome = doc.reconfig_presentation(evidence)

    def test_rational_events_follow_author_order(self):
        doc = build_sample_medical_record()
        evidence = {}
        outcome = doc.default_presentation()
        for component, value in consultation_events(
            doc, num_events=10, rationality=1.0, seed=3
        ):
            order = doc.network.cpt(component).order_for(outcome)
            alternatives = [v for v in order if v != outcome[component]]
            assert value == alternatives[0]
            evidence[component] = value
            outcome = doc.reconfig_presentation(evidence)

    def test_locality_concentrates_sections(self):
        doc = generate_record("x", sections=6, components_per_section=3, seed=1)
        local = consultation_events(doc, num_events=40, locality=1.0, seed=4)
        scattered = consultation_events(doc, num_events=40, locality=0.0, seed=4)
        def switches(events):
            sections = [c.split(".")[0] for c, _ in events]
            return sum(1 for a, b in zip(sections, sections[1:]) if a != b)
        assert switches(local) < switches(scattered)

    def test_deterministic(self):
        doc = build_sample_medical_record()
        assert consultation_events(doc, seed=5) == consultation_events(doc, seed=5)

    def test_random_choice_events(self):
        doc = build_sample_medical_record()
        events = random_choice_events(doc, num_events=10, seed=1)
        assert len(events) == 10

    def test_parameter_validation(self):
        doc = build_sample_medical_record()
        with pytest.raises(ValueError):
            consultation_events(doc, rationality=1.5)
        with pytest.raises(ValueError):
            consultation_events(doc, locality=-0.1)
