"""The mega-conference workload: schedule spec, flash crowd, chaos.

What matters here: the schedule builder is deterministic and actually
produces a >=10x keynote flash crowd; a full conference day runs clean
through an admission-controlled cluster (every join eventually lands,
migration leaves no ghosts); and the convergence variant is itself
bit-reproducible — the precondition for the chaos suite's byte-identity
verdicts.
"""

import pytest

from repro import obs
from repro.db import Database, MultimediaObjectStore
from repro.workloads import build_conference_schedule, run_megaconf
from repro.workloads.megaconf import percentile, run_megaconf_convergence


@pytest.fixture(autouse=True)
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


def fresh_store(tmp_path, name):
    db = Database(str(tmp_path / name))
    return MultimediaObjectStore(db)


class TestSchedule:
    def test_builder_is_deterministic(self):
        assert build_conference_schedule() == build_conference_schedule()

    def test_parallel_tracks_partition_the_pool_each_wave(self):
        schedule = build_conference_schedule(
            tracks=3, slots_per_track=2, attendees_per_session=4
        )
        waves = {}
        for slot in schedule.slots:
            if not slot.keynote:
                waves.setdefault(slot.start_s, []).append(slot)
        for slots in waves.values():
            seen = [a for slot in slots for a in slot.attendees]
            # disjoint tracks, full coverage: everyone is in exactly one room
            assert sorted(seen) == sorted(schedule.attendees)

    def test_migration_rotates_rooms_between_waves(self):
        schedule = build_conference_schedule(tracks=3, slots_per_track=2)
        by_wave = {}
        for slot in schedule.slots:
            if not slot.keynote:
                for attendee in slot.attendees:
                    by_wave.setdefault(attendee, []).append(slot.track)
        # session-boundary migration: every attendee changes track
        assert all(tracks[0] != tracks[1] for tracks in by_wave.values())

    def test_keynote_is_a_flash_crowd(self):
        schedule = build_conference_schedule()
        keynote = schedule.keynote
        assert keynote is not None
        assert tuple(sorted(keynote.attendees)) == tuple(sorted(schedule.attendees))
        assert schedule.keynote_join_ratio >= 10.0

    def test_percentile_interpolates(self):
        assert percentile([], 0.5) is None
        assert percentile([3.0], 0.99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0


class TestRunMegaconf:
    def test_full_day_runs_clean(self, tmp_path):
        store = fresh_store(tmp_path, "day")
        result = run_megaconf(store)
        assert result["errors"] == []
        assert result["late_joins"] == 0
        schedule = result["schedule"]
        # every attendee joined once per wave plus the keynote
        waves = len({s.start_s for s in schedule.slots if not s.keynote})
        assert result["join_latency"]["track"]["n"] == (
            len(schedule.attendees) * waves
        )
        assert result["join_latency"]["keynote"]["n"] == len(schedule.attendees)
        assert result["join_latency"]["keynote"]["p99"] is not None
        assert result["admission"]["control_shed"] == 0
        assert result["admission"]["parked_residue"] == 0

    def test_day_is_bit_reproducible(self, tmp_path):
        outcomes = []
        for run in range(2):
            registry = obs.MetricsRegistry()
            with obs.use_registry(registry):
                store = fresh_store(tmp_path, f"bit-{run}")
                result = run_megaconf(store)
                outcomes.append(
                    (
                        result["displayed"],
                        result["join_samples"],
                        result["network_messages"],
                        result["network_bytes"],
                        result["sim_seconds"],
                    )
                )
        assert outcomes[0] == outcomes[1]


class TestMegaconfConvergence:
    def test_control_run_defers_joins_but_stays_clean(self, tmp_path):
        store = fresh_store(tmp_path, "conv")
        result = run_megaconf_convergence(store, quick=True)
        assert result["errors"] == []
        assert result["delivery_failures"] == []
        assert result["admission"]["deferred"] > 0, (
            "the keynote wave must actually trip JOIN deferral"
        )
        assert result["admission"]["shed"] == 0
        assert result["admission"]["control_shed"] == 0
        assert result["admission"]["parked_residue"] == 0
        # everyone converges on the keynote room's final state
        states = list(result["displayed"].values())
        assert all(state == states[0] for state in states)

    def test_gateway_crash_heals_through_failover(self, tmp_path):
        store = fresh_store(tmp_path, "gwcrash")
        result = run_megaconf_convergence(store, quick=True, gateway_crash=True)
        assert result["gateway_victim"] is not None
        assert len(result["gateway_failovers"]) == 1
        assert result["errors"] == []
        assert result["delivery_failures"] == []
        states = list(result["displayed"].values())
        assert all(state == states[0] for state in states)

    def test_convergence_scenario_is_bit_reproducible(self, tmp_path):
        outcomes = []
        for run in range(2):
            registry = obs.MetricsRegistry()
            with obs.use_registry(registry):
                store = fresh_store(tmp_path, f"convbit-{run}")
                result = run_megaconf_convergence(store, quick=True)
                outcomes.append(
                    (
                        result["displayed"],
                        result["network_messages"],
                        result["network_bytes"],
                        result["sim_seconds"],
                    )
                )
        assert outcomes[0] == outcomes[1]
