"""Unit tests for shared utilities and the exception hierarchy."""

import pytest

from repro import errors
from repro.util import IdGenerator, check_identifier, check_positive, check_probability, human_size, new_id


class TestIdGenerator:
    def test_per_prefix_counters(self):
        gen = IdGenerator()
        assert gen.next("room") == "room-1"
        assert gen.next("room") == "room-2"
        assert gen.next("session") == "session-1"

    def test_reset(self):
        gen = IdGenerator()
        gen.next("x")
        gen.reset()
        assert gen.next("x") == "x-1"

    def test_fresh_generators_restart(self):
        assert IdGenerator().next("a") == IdGenerator().next("a")

    def test_module_level_generator_is_global(self):
        first = new_id("unittest-prefix")
        second = new_id("unittest-prefix")
        assert first != second

    def test_default_generator_is_unnamespaced(self):
        # Single-server deployments keep the paper's bare ids.
        assert IdGenerator().next("room") == "room-1"

    def test_namespaced_ids_carry_the_node(self):
        gen = IdGenerator(namespace="shard-1")
        assert gen.next("session") == "shard-1:session-1"
        assert gen.next("session") == "shard-1:session-2"

    def test_namespaced_generators_cannot_collide(self):
        # The cluster bug this guards: two InteractionServers both minting
        # "session-1" would collide in the gateway's routing table.
        first = IdGenerator(namespace="shard-1")
        second = IdGenerator(namespace="shard-2")
        minted = [first.next("session") for _ in range(50)]
        minted += [second.next("session") for _ in range(50)]
        assert len(set(minted)) == len(minted)

    def test_thread_safety(self):
        import threading

        gen = IdGenerator()
        seen = []

        def worker():
            for _ in range(200):
                seen.append(gen.next("t"))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(seen)) == 800


class TestValidation:
    def test_identifier_ok(self):
        assert check_identifier("imaging.ct-1_x") == "imaging.ct-1_x"

    def test_identifier_bad(self):
        with pytest.raises(ValueError):
            check_identifier("1leading-digit")
        with pytest.raises(ValueError):
            check_identifier("")
        with pytest.raises(ValueError):
            check_identifier("with space")
        with pytest.raises(TypeError):
            check_identifier(5)

    def test_positive(self):
        assert check_positive(2.5) == 2.5
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive(bad)
        with pytest.raises(TypeError):
            check_positive(True)
        with pytest.raises(TypeError):
            check_positive("2")

    def test_probability(self):
        assert check_probability(0) == 0.0
        assert check_probability(1) == 1.0
        with pytest.raises(ValueError):
            check_probability(1.1)
        with pytest.raises(TypeError):
            check_probability("0.5")


class TestHumanSize:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0 B"), (1023, "1023 B"), (1024, "1.0 KB"), (1536, "1.5 KB"),
         (1024**2, "1.0 MB"), (4 * 1024**3, "4.0 GB")],
    )
    def test_rendering(self, value, expected):
        assert human_size(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            human_size(-1)


class TestErrorHierarchy:
    def test_all_under_root(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_key_lookups_catchable_both_ways(self):
        # UnknownVariableError is both a library error and a KeyError.
        with pytest.raises(KeyError):
            raise errors.UnknownVariableError("x")
        with pytest.raises(errors.CPNetError):
            raise errors.UnknownVariableError("x")

    def test_unknown_variable_message_unquoted(self):
        try:
            raise errors.UnknownVariableError("no variable 'x'")
        except errors.UnknownVariableError as exc:
            assert str(exc) == "no variable 'x'"
