"""Unit tests for the simulation clock and links."""

import pytest

from repro.errors import NetworkError
from repro.net import Link, SimClock
from repro.net.link import KBPS, MBPS


class TestSimClock:
    def test_events_in_time_order(self):
        clock = SimClock()
        seen = []
        clock.schedule(3.0, lambda: seen.append("c"))
        clock.schedule(1.0, lambda: seen.append("a"))
        clock.schedule(2.0, lambda: seen.append("b"))
        clock.run()
        assert seen == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_fifo_among_equal_times(self):
        clock = SimClock()
        seen = []
        for label in "abc":
            clock.schedule(1.0, lambda label=label: seen.append(label))
        clock.run()
        assert seen == ["a", "b", "c"]

    def test_nested_scheduling(self):
        clock = SimClock()
        seen = []
        clock.schedule(1.0, lambda: clock.schedule(1.0, lambda: seen.append("inner")))
        clock.run()
        assert seen == ["inner"]
        assert clock.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(NetworkError):
            SimClock().schedule(-0.1, lambda: None)

    def test_run_until(self):
        clock = SimClock()
        seen = []
        clock.schedule(1.0, lambda: seen.append(1))
        clock.schedule(5.0, lambda: seen.append(5))
        clock.run_until(2.0)
        assert seen == [1]
        assert clock.now == 2.0
        assert clock.pending == 1

    def test_runaway_guard(self):
        clock = SimClock()

        def reschedule():
            clock.schedule(0.1, reschedule)

        clock.schedule(0.0, reschedule)
        with pytest.raises(NetworkError, match="exceeded"):
            clock.run(max_events=100)

    def test_step_empty(self):
        assert SimClock().step() is False


class TestLink:
    def test_transmission_time(self):
        link = Link(bandwidth_bps=1 * MBPS, latency_s=0.0)
        assert link.transmission_time(125_000) == pytest.approx(1.0)

    def test_transfer_includes_latency(self):
        link = Link(bandwidth_bps=1 * MBPS, latency_s=0.5)
        arrival = link.schedule_transfer(now=0.0, size_bytes=125_000)
        assert arrival == pytest.approx(1.5)

    def test_fifo_serialization(self):
        link = Link(bandwidth_bps=1 * MBPS, latency_s=0.0)
        first = link.schedule_transfer(0.0, 125_000)
        second = link.schedule_transfer(0.0, 125_000)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)  # queued behind the first

    def test_idle_gap_not_charged(self):
        link = Link(bandwidth_bps=1 * MBPS, latency_s=0.0)
        link.schedule_transfer(0.0, 125_000)
        arrival = link.schedule_transfer(10.0, 125_000)  # link idle since t=1
        assert arrival == pytest.approx(11.0)

    def test_queueing_delay(self):
        link = Link(bandwidth_bps=1 * MBPS, latency_s=0.0)
        link.schedule_transfer(0.0, 125_000)
        assert link.queueing_delay(0.5) == pytest.approx(0.5)
        assert link.queueing_delay(2.0) == 0.0

    def test_stats(self):
        link = Link(bandwidth_bps=1 * KBPS)
        link.schedule_transfer(0.0, 10)
        link.schedule_transfer(0.0, 20)
        assert (link.bytes_carried, link.messages_carried) == (30, 2)
        link.reset_stats()
        assert link.bytes_carried == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(latency_s=-1)
