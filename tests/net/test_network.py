"""Unit tests for the simulated star network."""

import pytest

from repro.errors import NetworkError
from repro.net import Link, Message, SimulatedNetwork
from repro.net.link import MBPS
from repro.obs import MetricsRegistry, use_registry


class Recorder:
    """A node that records everything it receives, with arrival times."""

    def __init__(self, node_id: str, network: SimulatedNetwork | None = None) -> None:
        self.node_id = node_id
        self._network = network
        self.received: list[tuple[float, Message]] = []

    def attach(self, network: SimulatedNetwork) -> None:
        self._network = network

    def receive(self, message: Message) -> None:
        assert self._network is not None
        self.received.append((self._network.clock.now, message))


@pytest.fixture
def net():
    network = SimulatedNetwork()
    hub = Recorder("server")
    hub.attach(network)
    network.attach_hub(hub)
    return network


def add_client(net, name, bandwidth=10 * MBPS, latency=0.0):
    client = Recorder(name)
    client.attach(net)
    net.attach_client(
        client,
        uplink=Link(bandwidth_bps=bandwidth, latency_s=latency),
        downlink=Link(bandwidth_bps=bandwidth, latency_s=latency),
    )
    return client


class TestTopology:
    def test_single_hub(self, net):
        with pytest.raises(NetworkError, match="hub already"):
            net.attach_hub(Recorder("other"))

    def test_duplicate_client(self, net):
        add_client(net, "c1")
        with pytest.raises(NetworkError, match="already attached"):
            net.attach_client(Recorder("c1"))

    def test_client_ids(self, net):
        add_client(net, "c1")
        add_client(net, "c2")
        assert set(net.client_ids) == {"c1", "c2"}
        assert net.hub_id == "server"

    def test_detach(self, net):
        add_client(net, "c1")
        net.detach_client("c1")
        assert net.client_ids == ()
        with pytest.raises(NetworkError):
            net.detach_client("server")

    def test_no_hub(self):
        network = SimulatedNetwork()
        with pytest.raises(NetworkError, match="no hub"):
            network.hub_id


def add_backbone(net, name):
    node = Recorder(name)
    node.attach(net)
    net.attach_backbone(node, uplink=Link(), downlink=Link())
    return node


class TestBackbone:
    def test_backbone_nodes_are_not_clients(self, net):
        add_backbone(net, "shard-1")
        add_client(net, "c1")
        assert net.backbone_ids == ("shard-1",)
        assert net.client_ids == ("c1",)

    def test_backbone_peers_may_exchange_traffic(self, net):
        add_backbone(net, "shard-1")
        peer = add_backbone(net, "shard-2")
        net.send("shard-1", "shard-2", "replicate", payload={"seq": 1}, size_bytes=64)
        net.run()
        assert len(peer.received) == 1
        assert peer.received[0][1].payload == {"seq": 1}

    def test_client_to_client_still_rejected(self, net):
        add_backbone(net, "shard-1")
        add_client(net, "c1")
        add_client(net, "c2")
        with pytest.raises(NetworkError, match="hub<->client"):
            net.send("c1", "c2", "chat")
        with pytest.raises(NetworkError, match="hub<->client"):
            net.send("c1", "shard-1", "chat")  # client->backbone is not a path

    def test_detach_backbone(self, net):
        add_backbone(net, "shard-1")
        net.detach_client("shard-1")
        assert net.backbone_ids == ()
        assert not net.has_node("shard-1")

    def test_has_node(self, net):
        add_backbone(net, "shard-1")
        add_client(net, "c1")
        assert net.has_node("shard-1") and net.has_node("c1") and net.has_node("server")
        assert not net.has_node("ghost")

    def test_peer_traffic_is_byte_counted(self, net):
        registry = MetricsRegistry()
        with use_registry(registry):
            network = SimulatedNetwork()
            hub = Recorder("gw")
            hub.attach(network)
            network.attach_hub(hub)
            a = Recorder("s1")
            a.attach(network)
            network.attach_backbone(a)
            b = Recorder("s2")
            b.attach(network)
            network.attach_backbone(b)
            network.send("s1", "s2", "replicate", size_bytes=500)
            network.run()
            counters = registry.snapshot()["counters"]
            assert counters["net.peer.s1.s2.bytes"] == 500

    def test_explicit_peer_link_shapes_traffic(self, net):
        add_backbone(net, "shard-1")
        peer = add_backbone(net, "shard-2")
        net.set_peer_link(
            "shard-1", "shard-2", Link(bandwidth_bps=1 * MBPS, latency_s=0.0)
        )
        net.send("shard-1", "shard-2", "replicate", size_bytes=125_000)
        net.run()
        assert peer.received[0][0] == pytest.approx(1.0)

    def test_peer_link_requires_backbone_ends(self, net):
        add_backbone(net, "shard-1")
        add_client(net, "c1")
        with pytest.raises(NetworkError, match="backbone"):
            net.set_peer_link("shard-1", "c1", Link())


class TestDelivery:
    def test_hub_to_client(self, net):
        client = add_client(net, "c1", latency=0.25)
        net.send("server", "c1", "update", payload={"x": 1}, size_bytes=0)
        net.run()
        assert len(client.received) == 1
        time, message = client.received[0]
        assert time == pytest.approx(0.25)
        assert message.payload == {"x": 1}

    def test_client_to_hub(self, net):
        add_client(net, "c1", latency=0.1)
        net.send("c1", "server", "choice", size_bytes=100)
        net.run()
        hub = net.node("server")
        assert len(hub.received) == 1

    def test_client_to_client_rejected(self, net):
        add_client(net, "c1")
        add_client(net, "c2")
        with pytest.raises(NetworkError, match="hub<->client"):
            net.send("c1", "c2", "chat")

    def test_unknown_nodes_rejected(self, net):
        with pytest.raises(NetworkError, match="unknown sender"):
            net.send("ghost", "server", "x")
        with pytest.raises(NetworkError, match="unknown recipient"):
            net.send("server", "ghost", "x")

    def test_bandwidth_differentiates_arrival(self, net):
        fast = add_client(net, "fast", bandwidth=10 * MBPS)
        slow = add_client(net, "slow", bandwidth=1 * MBPS)
        payload_bytes = 1_250_000  # 10 Mbit
        net.send("server", "fast", "image", size_bytes=payload_bytes)
        net.send("server", "slow", "image", size_bytes=payload_bytes)
        net.run()
        fast_time = fast.received[0][0]
        slow_time = slow.received[0][0]
        assert fast_time == pytest.approx(1.0)
        assert slow_time == pytest.approx(10.0)

    def test_messages_to_detached_client_dropped(self, net):
        client = add_client(net, "c1", latency=1.0)
        net.send("server", "c1", "update", size_bytes=10)
        net.detach_client("c1")
        net.run()
        assert client.received == []

    def test_per_client_links_do_not_interfere(self, net):
        a = add_client(net, "a", bandwidth=1 * MBPS)
        b = add_client(net, "b", bandwidth=1 * MBPS)
        net.send("server", "a", "image", size_bytes=125_000)
        net.send("server", "b", "image", size_bytes=125_000)
        net.run()
        # Separate downlinks -> both arrive at t=1, not serialized.
        assert a.received[0][0] == pytest.approx(1.0)
        assert b.received[0][0] == pytest.approx(1.0)


class TestStats:
    def test_traffic_accounting(self, net):
        add_client(net, "c1")
        net.send("server", "c1", "update", size_bytes=100)
        net.send("server", "c1", "update", size_bytes=50)
        net.send("c1", "server", "choice", size_bytes=10)
        net.run()
        assert net.stats.messages == 3
        assert net.stats.bytes_total == 160
        assert net.stats.bytes_by_kind["update"] == 150
        assert net.stats.messages_by_kind["choice"] == 1

    def test_link_stats_and_reset(self, net):
        add_client(net, "c1")
        net.send("server", "c1", "update", size_bytes=100)
        net.run()
        assert net.downlink("c1").bytes_carried == 100
        net.reset_stats()
        assert net.stats.messages == 0
        assert net.downlink("c1").bytes_carried == 0


class TestHonestWireSizes:
    """Per-link byte counters must equal the real encoded frame bytes.

    A three-client consultation runs over the full stack; every message a
    client receives or sends must carry the canonical codec frame for its
    payload, be charged exactly ``len(frame.bytes)``, and the totals are
    checked against the ``net.link.<node>.{down,up}.bytes`` counters — no
    message may be charged a made-up size.
    """

    def test_three_client_room_link_counters_match_encoded_sizes(self, tmp_path):
        from repro.client import ClientModule
        from repro.db import Database, MultimediaObjectStore
        from repro.document import build_sample_medical_record
        from repro.server import InteractionServer
        from repro.server.protocol import encoded_size

        registry = MetricsRegistry()
        with use_registry(registry):
            db = Database(str(tmp_path / "db"))
            store = MultimediaObjectStore(db)
            store.store_document(build_sample_medical_record())
            network = SimulatedNetwork()
            server = InteractionServer(store, network=network)
            clients = []
            for index in range(3):
                client = ClientModule(f"dr-{index}", network=network,
                                      auto_fetch=False)
                network.attach_client(client, uplink=Link(), downlink=Link())
                clients.append(client)
        try:
            delivered: dict[str, list[Message]] = {c.node_id: [] for c in clients}
            sent: dict[str, list[Message]] = {c.node_id: [] for c in clients}
            for client in clients:
                original = client.receive
                client.receive = (lambda message, orig=original,
                                  log=delivered[client.node_id]:
                                  (log.append(message), orig(message))[1])
            original_server_receive = server.receive
            def hub_receive(message):
                sent[message.sender].append(message)
                return original_server_receive(message)
            server.receive = hub_receive

            for client in clients:
                client.join("record-17")
            network.run()
            clients[0].choose("imaging.ct_head", "segmented")
            network.run()
            clients[1].choose("labs", "hidden")
            network.run()

            counters = registry.snapshot()["counters"]
            for client in clients:
                down = delivered[client.node_id]
                up = sent[client.node_id]
                assert down and up  # the session actually produced traffic
                # Every wire size is the length of the actual encoded
                # frame (kind + payload), the frame describes *this*
                # payload, and the encoding never exceeds the stateless
                # value size by more than the kind prefix.
                for message in down + up:
                    assert message.frame is not None
                    assert message.size_bytes == len(message.frame.data)
                    assert message.size_bytes == message.frame.size_bytes
                    assert message.payload is message.frame.payload
                    assert message.size_bytes <= encoded_size(message.payload) + 16
                assert counters[f"net.link.{client.node_id}.down.bytes"] == sum(
                    m.size_bytes for m in down
                )
                assert counters[f"net.link.{client.node_id}.up.bytes"] == sum(
                    m.size_bytes for m in up
                )
            total = counters["net.bytes_total"]
            assert total == sum(
                m.size_bytes
                for log in (*delivered.values(), *sent.values())
                for m in log
            )
        finally:
            db.close()
