"""Unit tests for network messages."""

import pytest

from repro.net import Message


class TestMessage:
    def test_ids_monotonic(self):
        first = Message("a", "b", "x")
        second = Message("a", "b", "x")
        assert second.message_id > first.message_id

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message("a", "b", "x", size_bytes=-1)

    def test_str_mentions_route_and_size(self):
        message = Message("client-1", "server", "choice", size_bytes=42)
        text = str(message)
        assert "client-1->server" in text
        assert "42B" in text
        assert "choice" in text

    def test_frozen(self):
        message = Message("a", "b", "x")
        with pytest.raises(AttributeError):
            message.kind = "y"

    def test_payload_default_none(self):
        assert Message("a", "b", "x").payload is None
