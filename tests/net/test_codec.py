"""Unit and property tests for the canonical binary wire codec (PR 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.codec import (
    MAX_DYNAMIC_STRINGS,
    STATIC_STRINGS,
    CodecError,
    StringInterner,
    checksum_of,
    decode_batch,
    decode_envelope,
    decode_message,
    encode_batch,
    encode_envelope,
    encode_message,
    mark_reuse,
    value_size,
)
from repro.obs import MetricsRegistry, use_registry
from repro.server.protocol import MessageKind

#: One representative payload per message kind, shaped like the real
#: protocol traffic each kind carries.
KIND_PAYLOADS = {
    MessageKind.JOIN: {"viewer_id": "dr-lee", "doc_id": "record-17"},
    MessageKind.LEAVE: {"session_id": "server:session-1"},
    MessageKind.CHOICE: {
        "session_id": "server:session-1", "component": "imaging.ct_head",
        "value": "segmented", "scope": "shared",
    },
    MessageKind.OPERATION: {
        "session_id": "server:session-1", "component": "imaging.ct_head",
        "operation": "edge_detect", "global": False,
    },
    MessageKind.FREEZE: {"session_id": "s", "component": "imaging.ct_head"},
    MessageKind.RELEASE: {"session_id": "s", "component": "imaging.ct_head"},
    MessageKind.FETCH_PAYLOAD: {
        "session_id": "s", "component": "labs", "value": "full",
    },
    MessageKind.ANNOTATE: {
        "session_id": "s", "component": "labs",
        "annotation": {"text": "look here", "rect": [10, 20, 30, 40]},
    },
    MessageKind.MONITOR: {"viewer_id": "ops"},
    MessageKind.SUBSCRIBE: {
        "session_id": "server:session-1",
        "components": ["imaging.ct_head", "labs"],
        "replace": True,
    },
    MessageKind.UNSUBSCRIBE: {
        "session_id": "server:session-1", "components": ["labs"], "all": False,
    },
    MessageKind.JOIN_ACK: {
        "session_id": "server:session-1", "room_id": "server:room-1",
        "doc_id": "record-17",
        "structure": [
            {"path": "labs", "sizes": {"full": 12288, "hidden": 0}},
        ],
        "outcome": {"labs": "full"},
    },
    MessageKind.PRESENTATION_UPDATE: {
        "doc_id": "record-17", "changes": {"labs": "hidden"}, "seq": 7,
    },
    MessageKind.PEER_EVENT: {
        "viewer": "dr-lee", "kind": "choice",
        "data": {"component": "labs", "value": "hidden"},
    },
    MessageKind.PAYLOAD: {
        "component": "labs", "value": "full", "size": 12288, "media_ref": "T:9",
    },
    MessageKind.BROADCAST: {"event": "speaker_change", "viewer": "dr-wu"},
    MessageKind.ERROR: {"error": "RoomError", "detail": "no such session"},
    MessageKind.MONITOR_ACK: {"session_id": "m-1", "interval": 0.5},
    MessageKind.TELEMETRY: {
        "session_id": "m-1", "at": 12.25,
        "diff": {"counters": {"net.messages": 4}, "gauges": {}, "histograms": {}},
    },
    MessageKind.TELEMETRY_EVENT: {
        "session_id": "m-1", "event": {"name": "room.joined", "severity": "INFO"},
    },
    MessageKind.SUBSCRIBE_ACK: {
        "session_id": "server:session-1", "room_id": "server:room-1",
        "subscribed": ["imaging.ct_head", "labs"],
        "outcome": {"labs": "full"},
    },
    MessageKind.ROUTE: {
        "sender": "client-dr-lee", "kind": "choice",
        "payload": {"session_id": "s", "component": "labs", "value": "full"},
    },
    MessageKind.REPLICATE: {
        "primary": "shard-0",
        "entries": [{"seq": 1, "room_key": "record-17", "op": "join", "data": {}}],
    },
    MessageKind.ACK: {"seq": 3, "replica": "shard-1"},
    MessageKind.HEARTBEAT: {"node": "shard-0", "at": 4.5},
    MessageKind.PROMOTE: {"primary": "shard-0"},
    MessageKind.ROUTE_REPORT: {
        "session_id": "shard-0:session-1", "key": "record-17", "shard": "shard-0",
    },
    MessageKind.ROUTE_LOOKUP: {"session_id": "shard-0:session-1"},
    MessageKind.ROUTE_INFO: {
        "session_id": "shard-0:session-1", "shard": "shard-0", "key": "record-17",
    },
    MessageKind.ROUTE_INVALIDATE: {"shard": "shard-2"},
}


def all_message_kinds() -> list[str]:
    return [
        value
        for name, value in vars(MessageKind).items()
        if isinstance(value, str) and not name.startswith("_")
    ]


class TestRoundtrip:
    @pytest.mark.parametrize("kind", sorted(KIND_PAYLOADS))
    def test_every_kind_payload_shape(self, kind):
        payload = KIND_PAYLOADS[kind]
        frame = encode_message(kind, payload)
        assert decode_message(frame.data) == (kind, payload)

    def test_scalars(self):
        for value in (None, True, False, 0, 7, -1, -300, 1.5, -2.25, 0.0,
                      "", "abc", b"", b"\x00\xff", [], {}, [1, [2, [3]]],
                      {"a": {"b": {"c": None}}}):
            frame = encode_message("error", {"v": value})
            assert decode_message(frame.data) == ("error", {"v": value})

    def test_unicode(self):
        payload = {"detail": "консультація 診断 🏥", "naïve": "café"}
        frame = encode_message(MessageKind.ERROR, payload)
        assert decode_message(frame.data) == (MessageKind.ERROR, payload)

    def test_deeply_nested(self):
        payload: dict = {"changes": {}}
        node = payload["changes"]
        for depth in range(60):
            node[f"level{depth}"] = {"seq": depth, "next": {}}
            node = node[f"level{depth}"]["next"]
        frame = encode_message(MessageKind.PRESENTATION_UPDATE, payload)
        assert decode_message(frame.data) == (
            MessageKind.PRESENTATION_UPDATE, payload
        )

    def test_large_int_and_bytes(self):
        payload = {"size": 2**40, "data": b"\x01" * 5000, "seq": -(2**33)}
        frame = encode_message(MessageKind.PAYLOAD, payload)
        assert decode_message(frame.data) == (MessageKind.PAYLOAD, payload)

    @settings(max_examples=200, deadline=None)
    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers()
            | st.floats(allow_nan=False)
            | st.text(max_size=20)
            | st.binary(max_size=20),
            lambda inner: st.lists(inner, max_size=4)
            | st.dictionaries(st.text(max_size=10), inner, max_size=4),
            max_leaves=25,
        )
    )
    def test_property_roundtrip(self, payload):
        frame = encode_message("error", payload)
        kind, decoded = decode_message(frame.data)
        assert kind == "error"
        # Lists and tuples both encode as lists; everything else must be
        # value-identical after a roundtrip.
        assert decoded == payload
        assert frame.size_bytes == len(frame.data)


class TestStaticTable:
    def test_every_message_kind_is_static(self):
        for kind in all_message_kinds():
            assert kind in STATIC_STRINGS, kind

    def test_append_only_prefix_stable(self):
        # The first entries are the protocol kinds in wire order; moving
        # them would break checked-in benchmark snapshots.
        assert STATIC_STRINGS.index("join") == 0
        assert STATIC_STRINGS.index("net_ack") == 23
        assert STATIC_STRINGS.index("batch") == 24

    def test_interest_kinds_appended_after_pinned_prefix(self):
        # New vocabulary goes at the end, never into the pinned prefix.
        for s in ("subscribe", "unsubscribe", "subscribe_ack"):
            assert STATIC_STRINGS.index(s) > STATIC_STRINGS.index("batch")

    def test_static_strings_are_unique(self):
        assert len(set(STATIC_STRINGS)) == len(STATIC_STRINGS)

    def test_static_reference_is_two_bytes(self):
        # kind + one-key dict with static key and static value.
        frame = encode_message("choice", {"scope": "shared"})
        # tag+id (kind) + tag+count (dict) + tag+id (key) + tag+id (value)
        assert frame.size_bytes == 8


class TestInterning:
    def test_repeated_string_within_payload_compresses(self):
        long = "imaging.ct_head.slice-0042"
        once = value_size({"a": long})
        twice = value_size({"a": long, "b": long})
        # The second occurrence is a reference, far below the literal.
        assert twice - once < len(long) // 2

    def test_cross_frame_compression_with_connection_table(self):
        table = StringInterner()
        session = "server:session-123456"
        first = encode_message("leave", {"session_id": session}, interner=table)
        second = encode_message("leave", {"session_id": session}, interner=table)
        assert second.size_bytes < first.size_bytes
        # A stateless encoder pays the literal every time.
        stateless = encode_message("leave", {"session_id": session})
        assert stateless.size_bytes == first.size_bytes

    def test_decoder_table_stays_in_lockstep(self):
        enc, dec = StringInterner(), StringInterner()
        frames = [
            encode_message("choice", {"session_id": "s-9", "value": f"v{i}"},
                           interner=enc)
            for i in range(5)
        ]
        for i, frame in enumerate(frames):
            assert decode_message(frame.data, interner=dec) == (
                "choice", {"session_id": "s-9", "value": f"v{i}"}
            )

    def test_reset_on_reconnect(self):
        table = StringInterner()
        first = encode_message("leave", {"session_id": "s-abcdef"}, interner=table)
        encode_message("leave", {"session_id": "s-abcdef"}, interner=table)
        table.reset()
        assert len(table) == 0
        # A fresh connection re-pays the literal: byte-identical to the
        # first frame of the previous connection.
        again = encode_message("leave", {"session_id": "s-abcdef"}, interner=table)
        assert again.data == first.data

    def test_table_growth_is_bounded(self):
        table = StringInterner(max_entries=2)
        for s in ("one", "two", "three"):
            table.register(s)
        assert len(table) == 2
        assert table.id_of("three") is None
        # Beyond the bound both ends fall back to literals — still decodable.
        frame = encode_message("error", {"detail": "three"}, interner=table)
        dec = StringInterner(max_entries=2)
        dec.register("one")
        dec.register("two")
        assert decode_message(frame.data, interner=dec) == (
            "error", {"detail": "three"}
        )
        assert MAX_DYNAMIC_STRINGS >= 1024  # production bound stays generous


class TestFrameHonesty:
    def test_size_is_len_of_bytes(self):
        for kind, payload in KIND_PAYLOADS.items():
            frame = encode_message(kind, payload)
            assert frame.size_bytes == len(frame.data)

    def test_checksum_of_matches_frame(self):
        for kind, payload in KIND_PAYLOADS.items():
            frame = encode_message(kind, payload)
            assert checksum_of(kind, payload) == frame.checksum

    def test_payload_identity_preserved(self):
        payload = {"session_id": "s"}
        frame = encode_message("leave", payload)
        assert frame.payload is payload

    def test_value_size_matches_encoding(self):
        for payload in KIND_PAYLOADS.values():
            frame = encode_message("error", payload)  # stateless
            kind_prefix = value_size("error")
            assert value_size(payload) == frame.size_bytes - kind_prefix


class TestInterestKinds:
    """The three repro.interest kinds behave like first-class protocol."""

    def test_component_paths_compress_across_churn(self):
        # Subscribe/unsubscribe churn repeats the same component paths;
        # on one connection table the repeats collapse to references.
        enc, dec = StringInterner(), StringInterner()
        paths = ["imaging0.item2", "imaging0.item4"]
        first = encode_message(
            MessageKind.SUBSCRIBE,
            {"session_id": "server:session-9", "components": paths},
            interner=enc,
        )
        second = encode_message(
            MessageKind.UNSUBSCRIBE,
            {"session_id": "server:session-9", "components": paths},
            interner=enc,
        )
        assert second.size_bytes < first.size_bytes
        for frame, kind in ((first, "subscribe"), (second, "unsubscribe")):
            got_kind, payload = decode_message(frame.data, interner=dec)
            assert got_kind == kind
            assert payload["components"] == paths

    def test_ack_roundtrips_catchup_outcome(self):
        payload = {
            "session_id": "s", "room_id": "r",
            "subscribed": ["labs"], "outcome": {"labs": "full", "notes": "text"},
        }
        frame = encode_message(MessageKind.SUBSCRIBE_ACK, payload)
        assert decode_message(frame.data) == (MessageKind.SUBSCRIBE_ACK, payload)

    @pytest.mark.parametrize(
        "kind",
        [MessageKind.SUBSCRIBE, MessageKind.UNSUBSCRIBE, MessageKind.SUBSCRIBE_ACK],
    )
    def test_malformed_frames_raise(self, kind):
        frame = encode_message(kind, KIND_PAYLOADS[kind])
        with pytest.raises(CodecError):
            decode_message(frame.data[:-2])  # truncated
        with pytest.raises(CodecError):
            decode_message(frame.data + b"\x01")  # trailing garbage


class TestEnvelopeAndBatch:
    def test_envelope_roundtrip(self):
        inner = encode_message("choice", {"session_id": "s", "value": "full"})
        header = {"sender": "client-dr-lee", "kind": "choice"}
        env = encode_envelope("route", header, inner, {"wrapper": True})
        kind, got_header, got_inner = decode_envelope(env.data)
        assert kind == "route"
        assert got_header == header
        assert got_inner == ("choice", {"session_id": "s", "value": "full"})

    def test_envelope_embeds_inner_bytes_verbatim(self):
        inner = encode_message("choice", {"session_id": "s-x", "value": "full"})
        env = encode_envelope("route", {"kind": "choice"}, inner, None)
        assert inner.data in env.data

    def test_interned_inner_decodes_with_its_own_table(self):
        enc = StringInterner()
        encode_message("leave", {"session_id": "s-long-id"}, interner=enc)
        inner = encode_message("leave", {"session_id": "s-long-id"}, interner=enc)
        env = encode_envelope("route", {"kind": "leave"}, inner, None)
        dec = StringInterner()
        dec.register("s-long-id")
        _, _, got = decode_envelope(env.data, inner_interner=dec)
        assert got == ("leave", {"session_id": "s-long-id"})

    def test_batch_roundtrip(self):
        frames = [
            encode_message("peer_event", {"viewer": "a", "seq": i})
            for i in range(3)
        ]
        batch = encode_batch(frames, [])
        assert decode_batch(batch.data) == [
            ("peer_event", {"viewer": "a", "seq": i}) for i in range(3)
        ]

    def test_batch_smaller_than_sum_of_frames(self):
        frames = [
            encode_message("peer_event", {"viewer": "dr-lee", "seq": i})
            for i in range(8)
        ]
        batch = encode_batch(frames, [])
        assert batch.size_bytes < sum(f.size_bytes for f in frames) + 16


class TestErrors:
    def test_unencodable_type(self):
        with pytest.raises(CodecError):
            encode_message("error", {"bad": {1, 2, 3}})

    def test_truncated_frame(self):
        frame = encode_message("error", {"detail": "hello truncation"})
        with pytest.raises(CodecError):
            decode_message(frame.data[:-3])

    def test_trailing_bytes(self):
        frame = encode_message("error", {})
        with pytest.raises(CodecError):
            decode_message(frame.data + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode_message(b"\xf3")

    def test_dangling_intern_reference(self):
        table = StringInterner()
        table.register("only-encoder-knows")
        # "detail" is static, so the decoder's dynamic table stays empty
        # and the stale back-reference cannot alias anything.
        frame = encode_message(
            "error", {"detail": "only-encoder-knows"}, interner=table
        )
        with pytest.raises(CodecError):
            decode_message(frame.data)


class TestMetrics:
    def test_encode_and_reuse_accounting(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            frame = encode_message("leave", {"session_id": "s"})
            mark_reuse(frame)  # the first transmission: not a saving
            mark_reuse(frame)  # fan-out/retransmit: one encode saved
            mark_reuse(frame)
        counters = registry.snapshot()["counters"]
        assert counters["codec.encodes"] == 1
        assert counters["codec.bytes_encoded"] == frame.size_bytes
        assert counters["codec.encodes_saved"] == 2
        assert counters["codec.bytes_saved"] == 2 * frame.size_bytes

    def test_envelope_charges_only_header_bytes(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            inner = encode_message("choice", {"value": "full"})
            env = encode_envelope("route", {"kind": "choice"}, inner, None)
            env2 = encode_envelope("route", {"kind": "choice"}, inner, None)
        counters = registry.snapshot()["counters"]
        assert counters["codec.bytes_encoded"] == (
            inner.size_bytes
            + (env.size_bytes - inner.size_bytes)
            + (env2.size_bytes - inner.size_bytes)
        )
        # The first embedding is the inner frame's first use; the second
        # is an encode the per-recipient scheme would have re-paid.
        assert counters["codec.encodes"] == 3
        assert counters["codec.encodes_saved"] == 1
        assert counters["codec.bytes_saved"] == inner.size_bytes
