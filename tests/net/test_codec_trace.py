"""Trace-context trailer tests: stamping, roundtrips, malformed wires.

The trailer is the only wire-format change delivery tracing makes:
``magic 0xD7, varint count, count x (trace id, span id, hop, sent-at
us)`` appended after the message body. These tests pin that stamping
never re-encodes a body, that every protocol kind roundtrips with its
contexts intact (including BATCH and ROUTE embedding), and that junk or
truncated trailers fail loudly as :class:`CodecError`.
"""

import zlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.codec import (
    TRACE_TRAILER_MAGIC,
    CodecError,
    StringInterner,
    decode_batch_traced,
    decode_envelope_traced,
    decode_message,
    decode_message_traced,
    encode_batch,
    encode_envelope,
    encode_message,
    encode_trace_trailer,
    stamp_frame,
)
from repro.obs import MetricsRegistry, use_registry
from repro.obs.dtrace import NULL_CONTEXT, TraceContext
from repro.server.protocol import MessageKind

from tests.net.test_codec import KIND_PAYLOADS

CTX = TraceContext(trace_id=7, span_id=3, hop=2, sent_at_us=1_250_000)
CTX2 = TraceContext(trace_id=7, span_id=9, hop=3, sent_at_us=1_300_000)


@pytest.mark.parametrize("kind", sorted(KIND_PAYLOADS))
def test_every_kind_roundtrips_with_trailer(kind):
    frame = encode_message(kind, KIND_PAYLOADS[kind])
    stamped = stamp_frame(frame, (CTX,))
    got_kind, got_payload, contexts = decode_message_traced(stamped.data)
    assert got_kind == kind
    assert got_payload == KIND_PAYLOADS[kind]
    assert contexts == (CTX,)
    # The plain decoder validates and skips the trailer.
    assert decode_message(stamped.data) == (kind, KIND_PAYLOADS[kind])


def test_unstamped_frame_decodes_with_no_contexts():
    frame = encode_message(MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE])
    _, _, contexts = decode_message_traced(frame.data)
    assert contexts == ()
    assert frame.trace == ()


def test_stamping_never_reencodes_the_body():
    """Pinned: a stamp is body-bytes reuse plus an incremental checksum."""
    registry = MetricsRegistry()
    with use_registry(registry):
        frame = encode_message(
            MessageKind.PRESENTATION_UPDATE,
            KIND_PAYLOADS[MessageKind.PRESENTATION_UPDATE],
        )
        encodes_before = registry.snapshot()["counters"]["codec.encodes"]
        stamped = stamp_frame(frame, (CTX,))
        counters = registry.snapshot()["counters"]
        assert counters["codec.encodes"] == encodes_before
        assert counters["codec.trace_stamps"] == 1
    trailer = encode_trace_trailer((CTX,))
    assert stamped.data == frame.data + trailer
    assert stamped.payload is frame.payload
    assert stamped.checksum == zlib.crc32(trailer, frame.checksum)
    assert stamped.checksum == zlib.crc32(stamped.data)


def test_stamp_cache_reuses_fanout_variant():
    registry = MetricsRegistry()
    with use_registry(registry):
        frame = encode_message(MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE])
        first = stamp_frame(frame, (CTX,))
        again = stamp_frame(frame, (CTX,))
        other = stamp_frame(frame, (CTX2,))
        assert first is again
        assert other is not first
        assert registry.snapshot()["counters"]["codec.trace_stamps"] == 2


def test_restamp_appends_and_last_trailer_wins():
    frame = encode_message(MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE])
    twice = stamp_frame(stamp_frame(frame, (CTX,)), (CTX2,))
    _, _, contexts = decode_message_traced(twice.data)
    assert contexts == (CTX2,)
    assert twice.trace == (CTX2,)


def test_junk_trailing_bytes_raise():
    frame = encode_message(MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE])
    with pytest.raises(CodecError, match="trailing bytes after message"):
        decode_message(frame.data + b"\x00junk")


def test_truncated_trailer_raises():
    frame = encode_message(MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE])
    stamped = stamp_frame(frame, (CTX,))
    for cut in range(len(frame.data) + 1, len(stamped.data)):
        with pytest.raises(CodecError):
            decode_message_traced(stamped.data[:cut])


def test_trailer_magic_alone_is_truncated():
    frame = encode_message(MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE])
    with pytest.raises(CodecError):
        decode_message_traced(frame.data + bytes((TRACE_TRAILER_MAGIC,)))


def test_route_envelope_keeps_inner_and_envelope_contexts_apart():
    inner_table = StringInterner()
    inner = stamp_frame(
        encode_message(
            MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE], interner=inner_table
        ),
        (CTX,),
    )
    header = {"sender": "client-a", "kind": MessageKind.CHOICE}
    envelope = stamp_frame(
        encode_envelope(MessageKind.ROUTE, header, inner, header), (CTX2,)
    )
    kind, got_header, (inner_kind, inner_payload), contexts = decode_envelope_traced(
        envelope.data, inner_interner=StringInterner()
    )
    assert kind == MessageKind.ROUTE
    assert got_header == header
    assert inner_kind == MessageKind.CHOICE
    assert inner_payload == KIND_PAYLOADS[MessageKind.CHOICE]
    # The envelope hop's context, not the embedded frame's.
    assert contexts == (CTX2,)
    # The inner frame's own trailer survived inside the opaque bytes.
    _, _, inner_contexts = decode_message_traced(inner.data)
    assert inner_contexts == (CTX,)


def test_untraced_envelope_around_stamped_inner():
    inner = stamp_frame(
        encode_message(MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE]), (CTX,)
    )
    header = {"sender": "client-a", "kind": MessageKind.CHOICE}
    envelope = encode_envelope(MessageKind.ROUTE, header, inner, header)
    _, _, inner_msg, contexts = decode_envelope_traced(envelope.data)
    assert contexts == ()
    assert inner_msg == (MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE])


def test_batch_carries_one_context_per_member():
    kinds = (
        MessageKind.PRESENTATION_UPDATE,
        MessageKind.PEER_EVENT,
        MessageKind.BROADCAST,
    )
    frames = [encode_message(k, KIND_PAYLOADS[k]) for k in kinds]
    entries = [
        {"kind": f.kind, "payload": f.payload, "size": f.size_bytes} for f in frames
    ]
    contexts = (CTX, NULL_CONTEXT, CTX2)  # middle member untraced
    batch = stamp_frame(encode_batch(frames, entries), contexts)
    got_entries, got_contexts = decode_batch_traced(batch.data)
    assert [k for k, _ in got_entries] == list(kinds)
    assert [p for _, p in got_entries] == [KIND_PAYLOADS[k] for k in kinds]
    assert got_contexts == contexts
    assert got_contexts[1].trace_id == 0  # the untraced placeholder


def test_batch_trailing_junk_raises():
    frames = [
        encode_message(
            MessageKind.PEER_EVENT, KIND_PAYLOADS[MessageKind.PEER_EVENT]
        )
    ]
    batch = encode_batch(frames, [{"kind": frames[0].kind}])
    with pytest.raises(CodecError, match="trailing bytes"):
        decode_batch_traced(batch.data + b"\xff")


contexts_strategy = st.tuples(
    st.integers(min_value=0, max_value=2**40),
    st.integers(min_value=0, max_value=2**40),
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=2**50),
).map(lambda t: TraceContext(*t))


@given(st.lists(contexts_strategy, min_size=0, max_size=6))
def test_trailer_roundtrip_sweep(contexts):
    """Any context tuple (varint-range ids, µs timestamps) roundtrips."""
    frame = encode_message(MessageKind.CHOICE, KIND_PAYLOADS[MessageKind.CHOICE])
    stamped = stamp_frame(frame, tuple(contexts))
    _, _, got = decode_message_traced(stamped.data)
    assert got == tuple(contexts)
