"""The ARQ layer: retry, dedup, ordering, corruption, bounded failure."""

import pytest

from repro import obs
from repro.errors import DeliveryFailed
from repro.net import (
    Link,
    Message,
    NET_ACK,
    RetryPolicy,
    SimulatedNetwork,
    payload_checksum,
)
from repro.net.link import MBPS


@pytest.fixture(autouse=True)
def fresh_obs():
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            yield registry, log


class Recorder:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []
        self.failures = []

    def receive(self, message):
        self.received.append(message)

    def on_delivery_failed(self, error):
        self.failures.append(error)


class LossyNetwork(SimulatedNetwork):
    """Drop / mangle scripted transmissions (by transmission index)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.drop_next = set()
        self.corrupt_next = set()
        self.sent = 0

    def _transmit(self, message):
        index = self.sent
        self.sent += 1
        if index in self.drop_next:
            return
        if index in self.corrupt_next:
            message = Message(
                sender=message.sender, recipient=message.recipient,
                kind=message.kind, payload={"mangled": True},
                size_bytes=message.size_bytes, seq=message.seq,
                checksum=message.checksum, attempt=message.attempt,
            )
        super()._transmit(message)


def rig(network_cls=SimulatedNetwork, **kwargs):
    network = network_cls(reliability=True, **kwargs)
    hub = Recorder("server")
    client = Recorder("c1")
    network.attach_hub(hub)
    network.attach_client(client, uplink=Link(), downlink=Link())
    return network, hub, client


class TestHappyPath:
    def test_frames_carry_seq_and_checksum(self):
        network, hub, _ = rig()
        message = network.send("c1", "server", "choice", {"v": 1}, size_bytes=10)
        assert message.seq == 1 and message.checksum is not None
        network.run()
        assert [m.kind for m in hub.received] == ["choice"]

    def test_acks_are_consumed_by_the_transport(self):
        network, hub, client = rig()
        network.send("c1", "server", "choice", {"v": 1}, size_bytes=10)
        network.run()
        # The client never sees the ack as an application message.
        assert all(m.kind != NET_ACK for m in client.received)
        assert network.reliability.in_flight == 0

    def test_seq_is_per_directed_pair(self):
        network, _, _ = rig()
        a = network.send("c1", "server", "choice", {}, size_bytes=1)
        b = network.send("server", "c1", "payload", {}, size_bytes=1)
        c = network.send("c1", "server", "choice", {}, size_bytes=1)
        assert (a.seq, b.seq, c.seq) == (1, 1, 2)

    def test_unreliable_kinds_skip_sequencing_but_keep_checksums(self):
        network, _, _ = rig()
        message = network.send("c1", "server", "heartbeat", {"n": "c1"}, size_bytes=8)
        assert message.seq is None
        assert message.checksum == payload_checksum("heartbeat", {"n": "c1"})
        network.run()
        assert network.reliability.in_flight == 0


class TestRetry:
    def test_dropped_frame_is_retransmitted(self, fresh_obs):
        registry, _ = fresh_obs
        network, hub, _ = rig(LossyNetwork)
        network.drop_next = {0}  # first transmission lost
        network.send("c1", "server", "choice", {"v": 1}, size_bytes=10)
        network.run()
        assert [m.payload for m in hub.received] == [{"v": 1}]
        assert hub.received[0].attempt == 1  # the retry delivered it
        counters = registry.snapshot()["counters"]
        assert counters['net.retries{kind="choice"}'] == 1

    def test_retransmission_performs_zero_new_encodes(self, fresh_obs):
        """A retry reuses the cached frame: encode count frozen, reuse
        counters advance (the encode-once contract, PR 5)."""
        from repro.net.codec import encode_message

        registry, _ = fresh_obs
        network, hub, _ = rig(LossyNetwork)
        network.drop_next = {1}  # the ack is lost; the frame retransmits
        payload = {"session_id": "s", "value": "full"}
        frame = encode_message("choice", payload)
        before = registry.snapshot()["counters"]["codec.encodes"]
        network.send("c1", "server", "choice", payload, frame=frame)
        network.run()
        assert [m.payload for m in hub.received] == [payload]  # dup dropped
        assert hub.received[0].frame is frame
        counters = registry.snapshot()["counters"]
        assert counters['net.retries{kind="choice"}'] == 1
        # Two wire transmissions of the frame, zero encodes after it was
        # built — the retransmission reused the cached bytes.
        assert counters["codec.encodes"] == before
        assert counters["codec.encodes_saved"] == 1
        assert counters["codec.bytes_saved"] == frame.size_bytes

    def test_lost_ack_causes_dup_which_is_dropped(self, fresh_obs):
        registry, _ = fresh_obs
        network, hub, _ = rig(LossyNetwork)
        network.drop_next = {1}  # the ack of the first frame
        network.send("c1", "server", "choice", {"v": 1}, size_bytes=10)
        network.run()
        # Delivered once to the application despite the retransmission.
        assert [m.payload for m in hub.received] == [{"v": 1}]
        counters = registry.snapshot()["counters"]
        assert counters['net.dup_dropped{kind="choice"}'] == 1
        assert network.reliability.in_flight == 0

    def test_total_loss_surfaces_delivery_failed_within_budget(self):
        policy = RetryPolicy(base_timeout_s=0.05, max_attempts=4)
        network = LossyNetwork(reliability=policy)
        hub, client = Recorder("server"), Recorder("c1")
        network.attach_hub(hub)
        network.attach_client(client)
        network.drop_next = set(range(10_000))  # 100% loss, forever
        network.send("c1", "server", "choice", {"v": 1}, size_bytes=10)
        events = network.run()
        # Terminates (no livelock) and surfaces the typed error both ways.
        assert events > 0
        assert len(network.delivery_failures) == 1
        failure = network.delivery_failures[0]
        assert isinstance(failure, DeliveryFailed)
        assert failure.reason == "retry_budget_exhausted"
        assert failure.attempts == 4
        assert client.failures == [failure]
        assert hub.received == []

    def test_recipient_detach_fails_fast_not_forever(self):
        network, hub, client = rig()
        network.send("server", "c1", "payload", {}, size_bytes=10)
        network.detach_client("c1")  # departs with the frame in flight
        network.run()
        assert [f.reason for f in network.delivery_failures] == ["recipient_detached"]
        assert client.received == []


class TestOrderingAndCorruption:
    def test_reordered_frames_are_held_back_and_delivered_in_order(self):
        class Swapper(SimulatedNetwork):
            """Deliver the second transmission before the first."""

            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.delay_first = True

            def _transmit(self, message):
                if self.delay_first and message.kind == "choice":
                    self.delay_first = False
                    self.clock.schedule(
                        0.5, lambda: SimulatedNetwork._transmit(self, message)
                    )
                    return
                super()._transmit(message)

        network = Swapper(reliability=True)
        hub, client = Recorder("server"), Recorder("c1")
        network.attach_hub(hub)
        network.attach_client(client)
        network.send("c1", "server", "choice", {"n": 1}, size_bytes=5)
        network.send("c1", "server", "choice", {"n": 2}, size_bytes=5)
        network.run()
        assert [m.payload["n"] for m in hub.received] == [1, 2]
        assert [m.seq for m in hub.received] == [1, 2]

    def test_corrupt_frame_is_quarantined_and_repaired(self, fresh_obs):
        registry, _ = fresh_obs
        network, hub, _ = rig(LossyNetwork)
        network.corrupt_next = {0}
        network.send("c1", "server", "choice", {"v": "good"}, size_bytes=10)
        network.run()
        # The mangled frame never reached the application; the retry did.
        assert [m.payload for m in hub.received] == [{"v": "good"}]
        counters = registry.snapshot()["counters"]
        assert counters["net.corrupt_dropped"] == 1

    def test_without_reliability_corruption_goes_undetected(self):
        network = LossyNetwork()  # no reliability layer
        hub, client = Recorder("server"), Recorder("c1")
        network.attach_hub(hub)
        network.attach_client(client)
        network.corrupt_next = {0}
        network.send("c1", "server", "choice", {"v": "good"}, size_bytes=10)
        network.run()
        assert [m.payload for m in hub.received] == [{"mangled": True}]


class TestRttAwareTimeouts:
    def test_slow_transfer_does_not_trigger_spurious_retry(self, fresh_obs):
        registry, _ = fresh_obs
        # 4 MB over 10 Mbps ≈ 3.2 s — far beyond the 0.2 s base timeout.
        network = SimulatedNetwork(reliability=True)
        hub, client = Recorder("server"), Recorder("c1")
        network.attach_hub(hub)
        network.attach_client(client, downlink=Link(bandwidth_bps=10 * MBPS))
        network.send("server", "c1", "payload", {"k": 1}, size_bytes=4_000_000)
        network.run()
        assert [m.payload for m in client.received] == [{"k": 1}]
        counters = registry.snapshot()["counters"]
        assert counters.get('net.retries{kind="payload"}', 0) == 0


class TestDetachPeerLinks:
    def test_detach_removes_stale_backbone_peer_links(self):
        network = SimulatedNetwork()
        network.attach_hub(Recorder("hub"))
        a, b = Recorder("s1"), Recorder("s2")
        network.attach_backbone(a)
        network.attach_backbone(b)
        custom = Link(bandwidth_bps=1 * MBPS)
        network.set_peer_link("s1", "s2", custom)
        assert network._peer_link("s1", "s2") is custom
        network.detach_client("s1")
        assert all("s1" not in pair for pair in network._peer_links)
        # Reattaching a node with the same id starts from clean links.
        network.attach_backbone(Recorder("s1"))
        assert network._peer_link("s1", "s2") is not custom
