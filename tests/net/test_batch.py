"""Unit tests for the propagation batcher (PR 5)."""

import pytest

from repro.net import Batcher, Link, Message, SimulatedNetwork
from repro.net.codec import encode_message
from repro.obs import MetricsRegistry, use_registry


class Recorder:
    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.received: list[Message] = []

    def receive(self, message: Message) -> None:
        self.received.append(message)


@pytest.fixture
def rig():
    registry = MetricsRegistry()
    with use_registry(registry):
        network = SimulatedNetwork()
        hub = Recorder("server")
        network.attach_hub(hub)
        client = Recorder("c1")
        network.attach_client(client, uplink=Link(), downlink=Link())
        batcher = Batcher(network, "server", window_s=0.05, max_bytes=512)
    return network, client, batcher, registry


def _kinds(client):
    return [m.kind for m in client.received]


class TestPassThrough:
    def test_window_zero_sends_immediately(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            network = SimulatedNetwork()
            network.attach_hub(Recorder("server"))
            client = Recorder("c1")
            network.attach_client(client, uplink=Link(), downlink=Link())
            batcher = Batcher(network, "server")  # window_s=0
            batcher.send("c1", "peer_event", {"viewer": "a"})
            network.run()
        assert _kinds(client) == ["peer_event"]
        assert batcher.pending_count == 0
        counters = registry.snapshot()["counters"]
        assert counters["batch.flushes"] == 0
        assert counters["batch.messages_coalesced"] == 0


class TestWindowing:
    def test_deadline_flush_coalesces(self, rig):
        network, client, batcher, registry = rig
        for seq in range(3):
            batcher.send("c1", "peer_event", {"viewer": "a", "seq": seq})
        assert batcher.pending_count == 3
        network.run()  # the deadline fires inside the event loop
        # Receiver sees three ordinary messages — the wire carried one.
        assert _kinds(client) == ["peer_event"] * 3
        assert [m.payload["seq"] for m in client.received] == [0, 1, 2]
        counters = registry.snapshot()["counters"]
        assert counters["batch.flushes"] == 1
        assert counters["batch.messages_coalesced"] == 3
        assert counters["net.batch_unpacked"] == 3

    def test_single_pending_frame_sends_plain(self, rig):
        network, client, batcher, registry = rig
        batcher.send("c1", "peer_event", {"viewer": "a"})
        network.run()
        assert _kinds(client) == ["peer_event"]
        counters = registry.snapshot()["counters"]
        # A flush of one frame is not a batch.
        assert counters["batch.messages_coalesced"] == 0

    def test_byte_budget_flushes_early(self, rig):
        network, client, batcher, registry = rig
        big = {"viewer": "a", "pad": "x" * 300}
        batcher.send("c1", "peer_event", big)
        batcher.send("c1", "peer_event", big)  # crosses 512 bytes
        assert batcher.pending_count == 0  # flushed synchronously
        network.run()
        assert _kinds(client) == ["peer_event"] * 2

    def test_oversized_frame_never_batches(self, rig):
        network, client, batcher, _ = rig
        batcher.send("c1", "peer_event", {"pad": "y" * 2000})
        assert batcher.pending_count == 0
        network.run()
        assert _kinds(client) == ["peer_event"]


class TestBarriers:
    def test_barrier_kind_flushes_destination_first(self, rig):
        network, client, batcher, _ = rig
        batcher.send("c1", "peer_event", {"viewer": "a", "seq": 1})
        batcher.send("c1", "join_ack", {"session_id": "s"})  # not batchable
        network.run()
        # Order preserved: the queued frame lands before the barrier.
        assert _kinds(client) == ["peer_event", "join_ack"]

    def test_declared_size_media_is_a_barrier(self, rig):
        network, client, batcher, _ = rig
        batcher.send("c1", "peer_event", {"seq": 1})
        body = {"component": "labs", "size": 12288}
        frame = encode_message("payload", body)
        # Media charged at presentation size (≠ frame size) never batches.
        batcher.send("c1", "payload", body, size_bytes=12288, frame=frame)
        network.run()
        assert _kinds(client) == ["peer_event", "payload"]
        assert client.received[1].size_bytes == 12288

    def test_destinations_are_independent(self, rig):
        network, client, batcher, registry = rig
        c2 = Recorder("c2")
        network.attach_client(c2, uplink=Link(), downlink=Link())
        batcher.send("c1", "peer_event", {"seq": 1})
        batcher.send("c2", "peer_event", {"seq": 1})
        batcher.send("c2", "join_ack", {"session_id": "s"})  # barrier on c2 only
        assert batcher.pending_count == 1  # c1's frame still queued
        network.run()
        assert _kinds(client) == ["peer_event"]
        assert _kinds(c2) == ["peer_event", "join_ack"]


class TestDetachedRecipient:
    def test_deadline_flush_to_detached_client_is_dropped(self, rig):
        network, client, batcher, _ = rig
        batcher.send("c1", "peer_event", {"seq": 1})
        network.detach_client("c1")
        network.run()  # deadline fires; no NetworkError
        assert client.received == []


class TestWireAccounting:
    def test_batching_cuts_reliable_wire_traffic(self):
        """Coalescing trades N acked frames for one — fewer total frames
        and fewer ack bytes under the reliable transport."""

        def run(window_s):
            registry = MetricsRegistry()
            with use_registry(registry):
                network = SimulatedNetwork(reliability=True)
                network.attach_hub(Recorder("server"))
                client = Recorder("c1")
                network.attach_client(client, uplink=Link(), downlink=Link())
                batcher = Batcher(network, "server", window_s=window_s)
                for seq in range(6):
                    batcher.send("c1", "peer_event", {"viewer": "dr", "seq": seq})
                network.run()
            assert len(client.received) == 6
            counters = registry.snapshot()["counters"]
            return counters["net.bytes_total"], counters["net.messages"]

        batched_bytes, batched_msgs = run(window_s=0.05)
        plain_bytes, plain_msgs = run(window_s=0.0)
        assert batched_msgs < plain_msgs
        assert batched_bytes < plain_bytes
