"""The live telemetry monitor channel (dogfooding repro.net).

A monitor session rides the same simulated network as the consultation
it watches: metric-diff snapshots arrive as TELEMETRY messages, flight
recorder events as TELEMETRY_EVENT messages, and the whole exchange is
deterministic under the simulated clock.
"""

import pytest

from repro import obs
from repro.client import ClientModule, TelemetryMonitor
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.net import Link, SimulatedNetwork
from repro.server import InteractionServer
from repro.server.protocol import MessageKind

MBPS = 1_000_000

#: Instruments excluded from byte-identical asserts: wall-clock-driven
#: latency histograms, plus the byte/delay accounting that telemetry
#: traffic itself perturbs (the encoded size of a telemetry payload
#: depends on the wall-clock floats inside it).
NONDETERMINISTIC_METRICS = (
    "db.query_latency_s",
    "trace.",
    "net.bytes_total",
    "net.queue_delay_s",
    "net.link.monitor-",
    "server.bytes_out",
)


@pytest.fixture
def fresh_obs():
    """Isolated registry/event-log/watchdog around the package defaults."""
    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        obs.trace.clear()
        log = obs.EventLog(tracer=obs.trace)
        with obs.use_event_log(log):
            watchdog = obs.Watchdog(event_log=log, registry=registry)
            with obs.use_watchdog(watchdog):
                yield registry, log, watchdog


def build_rig(tmp_path, name="db"):
    db = Database(str(tmp_path / name))
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    network = SimulatedNetwork()
    server = InteractionServer(store, network=network)
    return db, store, network, server


def attach_client(network, viewer):
    client = ClientModule(viewer, network=network)
    network.attach_client(
        client,
        downlink=Link(bandwidth_bps=50 * MBPS),
        uplink=Link(bandwidth_bps=50 * MBPS),
    )
    return client


def attach_monitor(network, viewer="ops"):
    monitor = TelemetryMonitor(viewer, network=network)
    network.attach_client(monitor)
    return monitor


class TestMonitorRegistration:
    def test_monitor_ack_carries_session_and_interval(self, tmp_path, fresh_obs):
        db, store, network, server = build_rig(tmp_path)
        monitor = attach_monitor(network)
        monitor.connect()
        network.run()
        assert monitor.session_id is not None
        assert monitor.interval == server.telemetry_interval
        assert monitor.session_id in server.monitor_ids
        assert server.stats()["monitors"] == 1
        db.close()

    def test_leave_disconnects_monitor(self, tmp_path, fresh_obs):
        db, store, network, server = build_rig(tmp_path)
        monitor = attach_monitor(network)
        monitor.connect()
        network.run()
        monitor.disconnect()
        network.run()
        assert server.monitor_ids == ()
        assert server.stats()["monitors"] == 0
        db.close()

    def test_direct_mode_connect_and_push(self, tmp_path, fresh_obs):
        db = Database(str(tmp_path / "db"))
        store = MultimediaObjectStore(db)
        store.store_document(build_sample_medical_record())
        server = InteractionServer(store)
        session = server.connect_monitor("ops", node_id="ops-node")
        assert session.is_monitor
        # Direct mode has no network to push over, but the push still
        # counts its audience and drains the pending-event buffer.
        assert server.push_telemetry() == 1
        server.disconnect_monitor(session.session_id)
        assert server.push_telemetry() == 0
        db.close()


class TestTelemetryDelivery:
    def _consultation(self, tmp_path, fresh_obs):
        registry, log, watchdog = fresh_obs
        # A deliberately impossible budget: every view response violates,
        # so the WARN path is exercised deterministically.
        watchdog.set_budget("client.view_response", 1e-9)
        db, store, network, server = build_rig(tmp_path)
        monitor = attach_monitor(network)
        monitor.connect()
        # Let registration land before the consultation starts: the
        # monitor's default link is slower than the clients', so its
        # MONITOR message would otherwise lose the race to the JOINs.
        network.run()
        clients = [attach_client(network, f"dr-{i}") for i in range(3)]
        for client in clients:
            client.join("record-17")
        network.run()
        clients[0].choose("imaging.ct_head", "segmented")
        network.run()
        clients[1].choose("labs", "hidden")
        network.run()
        for client in clients:
            client.leave()
        network.run()
        db.close()
        return monitor

    def test_monitor_receives_metric_diffs_and_warn_events(self, tmp_path, fresh_obs):
        monitor = self._consultation(tmp_path, fresh_obs)
        # At least one metric-diff snapshot arrived as a repro.net message...
        assert len(monitor.snapshots) >= 1
        assert any(s.get("diff", {}).get("counters") for s in monitor.snapshots)
        # ...and at least one WARN event (the watchdog's slow-op log).
        warns = monitor.warn_events()
        assert len(warns) >= 1
        assert any(e["name"] == "watch.slow_op" for e in warns)

    def test_room_lifecycle_events_arrive(self, tmp_path, fresh_obs):
        monitor = self._consultation(tmp_path, fresh_obs)
        names = [event["name"] for event in monitor.events]
        assert "server.room_join" in names
        assert "server.room_leave" in names
        assert "server.room_closed" in names

    def test_combined_diff_matches_consultation_activity(self, tmp_path, fresh_obs):
        monitor = self._consultation(tmp_path, fresh_obs)
        combined = monitor.combined()
        assert combined["counters"]["server.choices"] == 2
        assert combined["counters"][
            'server.propagation.room_bytes{room="server:room-1",mode="diff"}'
        ] > 0
        assert 'client.view_response_s{viewer="dr-0"}' in combined["histograms"]

    def test_telemetry_messages_are_counted_as_server_traffic(self, tmp_path, fresh_obs):
        registry, _, _ = fresh_obs
        monitor = self._consultation(tmp_path, fresh_obs)
        # Dogfooding: telemetry crossed the simulated network and was
        # charged to the monitor's downlink like any other traffic.
        downlink_bytes = registry.counter("net.link.monitor-ops.down.bytes").value
        assert downlink_bytes > 0
        assert len(monitor.snapshots) >= 1

    def test_dashboard_byte_identical_across_runs(self, tmp_path, fresh_obs):
        def run(name):
            registry = obs.MetricsRegistry()
            with obs.use_registry(registry):
                obs.trace.clear()
                network = SimulatedNetwork()
                log = obs.EventLog(clock=lambda: network.clock.now, tracer=obs.trace)
                with obs.use_event_log(log):
                    watchdog = obs.Watchdog(event_log=log, registry=registry)
                    watchdog.set_budget("client.view_response", 1e-9)
                    with obs.use_watchdog(watchdog):
                        db = Database(str(tmp_path / name))
                        store = MultimediaObjectStore(db)
                        store.store_document(build_sample_medical_record())
                        server = InteractionServer(store, network=network)
                        monitor = attach_monitor(network)
                        monitor.connect()
                        network.run()
                        clients = [
                            attach_client(network, f"dr-{i}") for i in range(3)
                        ]
                        for client in clients:
                            client.join("record-17")
                        network.run()
                        clients[0].choose("imaging.ct_head", "segmented")
                        network.run()
                        for client in clients:
                            client.leave()
                        network.run()
                        out = monitor.render(
                            title="three-client consultation",
                            exclude=NONDETERMINISTIC_METRICS,
                        )
                        db.close()
                        return out

        first = run("run1")
        second = run("run2")
        assert first.encode() == second.encode()
        assert "three-client consultation" in first

    def test_monitor_rejects_unexpected_kinds(self, tmp_path, fresh_obs):
        from repro.errors import ClientError
        from repro.net.message import Message

        monitor = TelemetryMonitor("ops")
        with pytest.raises(ClientError):
            monitor.receive(
                Message(sender="server", recipient="x", kind=MessageKind.PAYLOAD)
            )
