"""Tests for server-side zoom-region delivery."""

import numpy as np
import pytest

from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.errors import MediaError, PermissionError_
from repro.media.image import Image, ct_phantom, zoom
from repro.net import SimulatedNetwork
from repro.server import InteractionServer
from repro.server.protocol import MessageKind


@pytest.fixture
def rig(tmp_path):
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    image = ct_phantom(128, seed=6)
    handle = store.store_image(image.to_bytes(), quality=2)
    server = InteractionServer(store)
    yield server, store, image, handle
    db.close()


class TestDirect:
    def test_region_matches_local_zoom(self, rig):
        server, store, image, handle = rig
        session = server.connect_session("lee")
        payload = server.fetch_zoom_region(
            session.session_id, handle.media_ref, 32, 32, 24, 24, factor=3
        )
        shipped = Image.from_bytes(payload)
        local = zoom(image, 32, 32, 24, 24, factor=3)
        # Shipped pixels go through uint8 quantization; compare at that depth.
        assert np.array_equal(shipped.to_uint8(), local.to_uint8())
        assert shipped.shape == (72, 72)

    def test_region_smaller_than_full_payload(self, rig):
        server, store, image, handle = rig
        session = server.connect_session("lee")
        payload = server.fetch_zoom_region(
            session.session_id, handle.media_ref, 0, 0, 16, 16, factor=1
        )
        assert len(payload) < len(image.to_bytes())

    def test_bad_rect_rejected(self, rig):
        server, store, image, handle = rig
        session = server.connect_session("lee")
        with pytest.raises(MediaError):
            server.fetch_zoom_region(
                session.session_id, handle.media_ref, 120, 120, 64, 64
            )

    def test_requires_view_permission(self, rig):
        server, store, image, handle = rig
        server.policy.grant("banned", frozenset())
        session = server.connect_session("banned")
        with pytest.raises(PermissionError_):
            server.fetch_zoom_region(session.session_id, handle.media_ref, 0, 0, 8, 8)


class TestOverNetwork:
    def test_zoom_payload_delivered(self, tmp_path):
        db = Database(str(tmp_path / "db-net"))
        store = MultimediaObjectStore(db)
        store.store_document(build_sample_medical_record())
        image = ct_phantom(128, seed=6)
        handle = store.store_image(image.to_bytes())
        network = SimulatedNetwork()
        InteractionServer(store, network=network)
        client = ClientModule("lee", network=network)
        network.attach_client(client)
        client.join("record-17")
        network.run()
        network.send(
            client.node_id, "server", MessageKind.FETCH_PAYLOAD,
            payload={
                "session_id": client.session_id,
                "media_ref": handle.media_ref,
                "rect": [10, 10, 32, 32],
                "factor": 2,
            },
            size_bytes=64,
        )
        network.run()
        # The region payload is observed by the client (raw media payloads
        # are consumed by media tooling; the message must arrive intact).
        assert network.stats.messages_by_kind[MessageKind.PAYLOAD] >= 1
        db.close()
