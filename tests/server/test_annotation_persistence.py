"""Tests: discussion results are stored in the file (paper §1)."""

import pytest

from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.server import InteractionServer


@pytest.fixture
def store(tmp_path):
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    yield store
    db.close()


class TestStoreLevel:
    def test_round_trip(self, store):
        store.store_annotation(
            "record-17", "imaging.ct_head", "lee", {"type": "text", "text": "lesion"}
        )
        store.store_annotation(
            "record-17", "imaging.xray_chest", "cho", {"type": "line", "from": [0, 0]}
        )
        all_notes = store.annotations_for("record-17")
        assert len(all_notes) == 2
        ct_notes = store.annotations_for("record-17", component="imaging.ct_head")
        assert len(ct_notes) == 1
        assert ct_notes[0]["FLD_VIEWER"] == "lee"
        assert ct_notes[0]["FLD_DATA"]["text"] == "lesion"

    def test_insertion_order_preserved(self, store):
        for index in range(5):
            store.store_annotation("record-17", "labs", "lee", {"n": index})
        notes = store.annotations_for("record-17")
        assert [n["FLD_DATA"]["n"] for n in notes] == [0, 1, 2, 3, 4]

    def test_delete(self, store):
        store.store_annotation("record-17", "labs", "lee", {"n": 1})
        store.store_annotation("other-doc", "labs", "lee", {"n": 2})
        assert store.delete_annotations("record-17") == 1
        assert store.annotations_for("record-17") == []
        assert len(store.annotations_for("other-doc")) == 1

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "db2")
        with Database(path) as db:
            MultimediaObjectStore(db).store_annotation(
                "doc", "c", "lee", {"text": "persisted"}
            )
        with Database(path) as db:
            notes = MultimediaObjectStore(db).annotations_for("doc")
            assert notes[0]["FLD_DATA"]["text"] == "persisted"


class TestServerIntegration:
    def test_room_annotations_persist_on_close(self, store):
        server = InteractionServer(store)
        first = server.connect_session("lee")
        server.join_room(first.session_id, "record-17")
        server.handle_annotation(
            first.session_id, "imaging.ct_head",
            {"type": "text", "text": "9mm lesion", "x": 140, "y": 96},
        )
        server.handle_annotation(
            first.session_id, "imaging.ct_head",
            {"type": "line", "from": [96, 140], "to": [120, 128]},
        )
        server.leave_room(first.session_id)
        notes = store.annotations_for("record-17", component="imaging.ct_head")
        assert len(notes) == 2
        assert notes[0]["FLD_VIEWER"] == "lee"
        assert notes[0]["FLD_DATA"]["text"] == "9mm lesion"
        assert "viewer" not in notes[0]["FLD_DATA"]  # stored in its own column

    def test_next_consultation_sees_past_marks(self, store):
        server = InteractionServer(store)
        first = server.connect_session("lee")
        server.join_room(first.session_id, "record-17")
        server.handle_annotation(first.session_id, "labs", {"type": "text", "text": "check K+"})
        server.leave_room(first.session_id)
        # A later, different consultation finds the stored marks.
        second = server.connect_session("cho")
        server.join_room(second.session_id, "record-17")
        past = store.annotations_for("record-17")
        assert past and past[0]["FLD_DATA"]["text"] == "check K+"

    def test_no_annotations_no_rows(self, store):
        server = InteractionServer(store)
        session = server.connect_session("lee")
        server.join_room(session.session_id, "record-17")
        server.leave_room(session.session_id)
        assert store.annotations_for("record-17") == []
