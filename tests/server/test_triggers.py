"""Unit tests for dynamic event triggers and broadcasting."""

import pytest

from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.errors import ServerError
from repro.net import SimulatedNetwork
from repro.server import InteractionServer, Room
from repro.server.triggers import (
    TriggerManager,
    all_of,
    any_of,
    on_component,
    on_kind,
    on_room_population,
    on_viewer,
)


@pytest.fixture
def room():
    room = Room("r", build_sample_medical_record())
    room.join("s1", "lee")
    room.join("s2", "cho")
    return room


class TestTriggerManager:
    def test_fires_on_matching_change(self, room):
        manager = TriggerManager()
        fired = []
        manager.register(
            on_component("imaging.ct_head"),
            lambda r, c: fired.append(c.seq),
        )
        change = room.apply_choice("lee", "imaging.ct_head", "segmented")
        manager.dispatch(room, change)
        other = room.apply_choice("lee", "labs", "hidden")
        manager.dispatch(room, other)
        assert fired == [change.seq]

    def test_once_trigger_self_removes(self, room):
        manager = TriggerManager()
        fired = []
        trigger = manager.register(
            on_kind("choice"), lambda r, c: fired.append(c.seq), once=True
        )
        for value in ("segmented", "flat"):
            change = room.apply_choice("lee", "imaging.ct_head", value)
            manager.dispatch(room, change)
        assert len(fired) == 1
        assert trigger.trigger_id not in [t.trigger_id for t in manager.triggers]

    def test_repeating_trigger_counts(self, room):
        manager = TriggerManager()
        trigger = manager.register(on_kind("choice"), lambda r, c: None)
        for value in ("segmented", "flat", "icon"):
            manager.dispatch(room, room.apply_choice("lee", "imaging.ct_head", value))
        assert trigger.fired_count == 3

    def test_remove(self, room):
        manager = TriggerManager()
        trigger = manager.register(on_kind("choice"), lambda r, c: None)
        manager.remove(trigger.trigger_id)
        assert manager.triggers == ()
        with pytest.raises(ServerError):
            manager.remove(trigger.trigger_id)

    def test_broken_condition_is_isolated(self, room):
        manager = TriggerManager()
        fired = []

        def broken(r, c):
            raise RuntimeError("boom")

        manager.register(broken, lambda r, c: fired.append("broken"))
        manager.register(on_kind("choice"), lambda r, c: fired.append("good"))
        manager.dispatch(room, room.apply_choice("lee", "labs", "hidden"))
        assert fired == ["good"]

    def test_broken_action_still_counts_as_fired(self, room):
        manager = TriggerManager()

        def explode(r, c):
            raise RuntimeError("boom")

        trigger = manager.register(on_kind("choice"), explode)
        fired = manager.dispatch(room, room.apply_choice("lee", "labs", "hidden"))
        assert trigger in fired


class TestConditionBuilders:
    def test_on_viewer(self, room):
        manager = TriggerManager()
        fired = []
        manager.register(on_viewer("cho"), lambda r, c: fired.append(c.viewer_id))
        manager.dispatch(room, room.apply_choice("lee", "labs", "hidden"))
        manager.dispatch(room, room.apply_choice("cho", "labs", "shown"))
        assert fired == ["cho"]

    def test_on_room_population(self, room):
        manager = TriggerManager()
        fired = []
        manager.register(on_room_population(3), lambda r, c: fired.append(len(r.member_sessions)))
        manager.dispatch(room, room.apply_choice("lee", "labs", "hidden"))
        room.join("s3", "kim")
        manager.dispatch(room, room.apply_choice("lee", "labs", "shown"))
        assert fired == [3]

    def test_all_of_any_of(self, room):
        condition = all_of(on_kind("choice"), on_viewer("lee"))
        either = any_of(on_viewer("cho"), on_component("labs"))
        change = room.apply_choice("lee", "labs", "hidden")
        assert condition(room, change)
        assert either(room, change)
        op_change = room.apply_operation("cho", "imaging.ct_head", "zoom")[1]
        assert not condition(room, op_change)


class TestServerIntegration:
    @pytest.fixture
    def rig(self, tmp_path):
        db = Database(str(tmp_path / "db"))
        store = MultimediaObjectStore(db)
        store.store_document(build_sample_medical_record())
        network = SimulatedNetwork()
        server = InteractionServer(store, network=network)
        lee = ClientModule("lee", network=network)
        cho = ClientModule("cho", network=network)
        network.attach_client(lee)
        network.attach_client(cho)
        lee.join("record-17")
        cho.join("record-17")
        network.run()
        yield server, network, lee, cho
        db.close()

    def test_trigger_fires_from_network_change(self, rig):
        server, network, lee, cho = rig
        fired = []
        server.triggers.register(
            on_component("imaging.ct_head"), lambda r, c: fired.append(c.kind)
        )
        lee.choose("imaging.ct_head", "segmented")
        network.run()
        assert fired == ["choice"]

    def test_trigger_can_broadcast(self, rig):
        server, network, lee, cho = rig
        server.triggers.register(
            on_kind("operation"),
            lambda room, change: server.broadcast(
                {"alert": f"{change.viewer_id} operated on {change.data['component']}"},
                room_id=room.room_id,
            ),
        )
        lee.operate("imaging.ct_head", "zoom")
        network.run()
        assert cho.broadcasts and "operated on imaging.ct_head" in cho.broadcasts[0]["alert"]
        assert lee.broadcasts  # the actor hears room broadcasts too

    def test_room_broadcast_scoping(self, rig):
        server, network, lee, cho = rig
        outsider = ClientModule("outsider", network=network)
        network.attach_client(outsider)
        count = server.broadcast({"note": "hello room"}, room_id=lee.room_id)
        network.run()
        assert count == 2
        assert lee.broadcasts and cho.broadcasts
        assert not outsider.broadcasts

    def test_global_broadcast(self, rig):
        server, network, lee, cho = rig
        count = server.broadcast({"note": "maintenance at noon"})
        network.run()
        assert count == 2
        assert lee.broadcasts[0]["note"] == "maintenance at noon"
