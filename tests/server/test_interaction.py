"""Unit tests for the interaction server (direct, non-networked mode)."""

import pytest

from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.errors import PermissionError_, RoomError, ServerError
from repro.server import InteractionServer, PermissionPolicy
from repro.server.permissions import PERM_VIEW, VIEWER_GRANT


@pytest.fixture
def store(tmp_path):
    db = Database(str(tmp_path / "db"))
    store = MultimediaObjectStore(db)
    store.store_document(build_sample_medical_record())
    yield store
    db.close()


@pytest.fixture
def server(store):
    return InteractionServer(store)


class TestSessions:
    def test_connect_disconnect(self, server):
        session = server.connect_session("lee")
        assert session.session_id in server.session_ids
        server.disconnect_session(session.session_id)
        assert session.session_id not in server.session_ids

    def test_unknown_session(self, server):
        with pytest.raises(ServerError, match="unknown session"):
            server.disconnect_session("ghost")

    def test_disconnect_leaves_room(self, server):
        session = server.connect_session("lee")
        server.join_room(session.session_id, "record-17")
        server.disconnect_session(session.session_id)
        assert server.room_ids == ()

    def test_disconnect_saves_profile_before_leaving_room(self, store):
        """Regression: the viewer profile must hit the store *before* the
        room exit — leaving may close the room and persist the document,
        and anything observing that close expects the profile on disk."""
        server = InteractionServer(store, use_profiles=True)
        session = server.connect_session("lee")
        server.join_room(session.session_id, "record-17")
        server.handle_choice(session.session_id, "imaging.ct_head", "segmented")

        calls = []
        real_save_profile = store.save_profile
        real_store_document = store.store_document
        store.save_profile = lambda profile: (
            calls.append("save_profile"), real_save_profile(profile))[1]
        store.store_document = lambda document: (
            calls.append("store_document"), real_store_document(document))[1]
        try:
            server.disconnect_session(session.session_id)
        finally:
            store.save_profile = real_save_profile
            store.store_document = real_store_document

        assert "save_profile" in calls
        assert calls.index("save_profile") < calls.index("store_document")
        # And the saved profile carries the session's choice.
        reloaded = store.load_profile("lee")
        assert reloaded.observations("imaging.ct_head") == 1


class TestRooms:
    def test_join_creates_room_and_spec(self, server):
        session = server.connect_session("lee")
        room, spec = server.join_room(session.session_id, "record-17")
        assert room.room_id in server.room_ids
        assert spec.value("imaging.ct_head") == "flat"
        assert spec.viewer_id == "lee"

    def test_second_join_reuses_room(self, server):
        s1 = server.connect_session("lee")
        s2 = server.connect_session("cho")
        room1, _ = server.join_room(s1.session_id, "record-17")
        room2, _ = server.join_room(s2.session_id, "record-17")
        assert room1 is room2
        assert set(room1.viewer_ids) == {"lee", "cho"}

    def test_join_unknown_document(self, server):
        session = server.connect_session("lee")
        with pytest.raises(Exception, match="no document"):
            server.join_room(session.session_id, "ghost-doc")

    def test_double_join_rejected(self, server):
        session = server.connect_session("lee")
        server.join_room(session.session_id, "record-17")
        with pytest.raises(RoomError, match="already in"):
            server.join_room(session.session_id, "record-17")

    def test_last_leave_persists_and_closes(self, server, store):
        session = server.connect_session("lee")
        server.join_room(session.session_id, "record-17")
        server.handle_operation(
            session.session_id, "imaging.ct_head", "zoom", global_importance=True
        )
        server.leave_room(session.session_id)
        assert server.room_ids == ()
        # The global operation was persisted with the document.
        reloaded = store.fetch_document("record-17")
        assert "imaging.ct_head.zoom" in reloaded.network

    def test_leave_without_room(self, server):
        session = server.connect_session("lee")
        with pytest.raises(RoomError, match="not in a room"):
            server.leave_room(session.session_id)

    def test_room_close_reclaims_completion_cache(self, server):
        """Closing a room drops its document's completion memos: a
        re-open fetches a fresh CPNet whose instance-salted version token
        can never re-reach them, so keeping them would only age live
        entries out of the shard LRU."""
        session = server.connect_session("lee")
        server.join_room(session.session_id, "record-17")
        assert len(server.completion_cache) > 0
        server.leave_room(session.session_id)
        assert server.room_ids == ()
        assert len(server.completion_cache) == 0


class TestPropagation:
    def test_choice_returns_diffs_per_member(self, server):
        s1 = server.connect_session("lee")
        s2 = server.connect_session("cho")
        server.join_room(s1.session_id, "record-17")
        server.join_room(s2.session_id, "record-17")
        updates = server.handle_choice(s1.session_id, "imaging.ct_head", "segmented")
        assert set(updates) == {s1.session_id, s2.session_id}
        # The diff carries only affected components, not the whole outcome.
        assert updates[s2.session_id]["imaging.ct_head"] == "segmented"
        assert "labs" not in updates[s2.session_id]

    def test_no_diff_no_update(self, server):
        s1 = server.connect_session("lee")
        server.join_room(s1.session_id, "record-17")
        # Choosing the value already displayed changes nothing.
        updates = server.handle_choice(s1.session_id, "imaging.ct_head", "flat")
        assert updates == {}

    def test_full_resend_mode(self, store):
        server = InteractionServer(store, diff_propagation=False)
        s1 = server.connect_session("lee")
        server.join_room(s1.session_id, "record-17")
        updates = server.handle_choice(s1.session_id, "imaging.ct_head", "segmented")
        # Whole outcome resent, changed or not.
        assert len(updates[s1.session_id]) == 10

    def test_personal_choice_updates_only_owner(self, server):
        s1 = server.connect_session("lee")
        s2 = server.connect_session("cho")
        server.join_room(s1.session_id, "record-17")
        server.join_room(s2.session_id, "record-17")
        updates = server.handle_choice(
            s2.session_id, "imaging.ct_head", "icon", scope="personal"
        )
        assert set(updates) == {s2.session_id}

    def test_operation_propagates_new_variable(self, server):
        s1 = server.connect_session("lee")
        server.join_room(s1.session_id, "record-17")
        updates = server.handle_operation(s1.session_id, "imaging.ct_head", "zoom")
        assert updates[s1.session_id]["imaging.ct_head.zoom"] == "applied"

    def test_freeze_then_choice_by_other_raises(self, server):
        s1 = server.connect_session("lee")
        s2 = server.connect_session("cho")
        server.join_room(s1.session_id, "record-17")
        server.join_room(s2.session_id, "record-17")
        server.handle_freeze(s1.session_id, "imaging.ct_head")
        with pytest.raises(Exception, match="frozen"):
            server.handle_choice(s2.session_id, "imaging.ct_head", "icon")
        server.handle_release(s1.session_id, "imaging.ct_head")
        server.handle_choice(s2.session_id, "imaging.ct_head", "icon")


class TestPermissions:
    def test_view_only_viewer_cannot_annotate(self, store):
        policy = PermissionPolicy()
        policy.grant("student", VIEWER_GRANT)
        server = InteractionServer(store, policy=policy)
        session = server.connect_session("student")
        server.join_room(session.session_id, "record-17")
        with pytest.raises(PermissionError_, match="annotate"):
            server.handle_operation(session.session_id, "imaging.ct_head", "zoom")
        # but choices are allowed
        server.handle_choice(session.session_id, "imaging.ct_head", "icon")

    def test_join_requires_view(self, store):
        policy = PermissionPolicy()
        policy.grant("banned", frozenset())
        server = InteractionServer(store, policy=policy)
        session = server.connect_session("banned")
        with pytest.raises(PermissionError_, match=PERM_VIEW):
            server.join_room(session.session_id, "record-17")

    def test_store_document_requires_modify(self, store):
        policy = PermissionPolicy()  # default consultant grant: no modify
        server = InteractionServer(store, policy=policy)
        session = server.connect_session("lee")
        with pytest.raises(PermissionError_, match="modify"):
            server.store_document(session.session_id, build_sample_medical_record())

    def test_unknown_permission_rejected(self):
        policy = PermissionPolicy()
        with pytest.raises(ValueError, match="unknown permission"):
            policy.grant("x", {"fly"})
        with pytest.raises(ValueError):
            policy.allows("x", "fly")


class TestStats:
    def test_snapshot_counts(self, server):
        s1 = server.connect_session("lee")
        s2 = server.connect_session("cho")
        server.join_room(s1.session_id, "record-17")
        server.join_room(s2.session_id, "record-17")
        server.handle_choice(s1.session_id, "labs", "hidden")
        server.handle_freeze(s1.session_id, "imaging.ct_head")
        stats = server.stats()
        assert stats["sessions"] == 2
        assert stats["rooms"] == 1
        assert stats["viewers_in_rooms"] == 2
        assert stats["buffered_changes"] >= 1
        assert stats["frozen_components"] == 1
        assert stats["spec_cache_misses"] >= 1

    def test_empty_server(self, server):
        stats = server.stats()
        assert stats == {
            "sessions": 0,
            "rooms": 0,
            "monitors": 0,
            "viewers_in_rooms": 0,
            "buffered_changes": 0,
            "frozen_components": 0,
            "spec_cache_hits": 0,
            "spec_cache_misses": 0,
            "completion_cache": {
                "entries": 0,
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "invalidations": 0,
            },
            "triggers": 0,
        }


class TestPayloads:
    def test_fetch_payload_by_media_ref(self, server, store):
        obj = store.store_image(b"ct pixels")
        session = server.connect_session("lee")
        assert server.fetch_payload(session.session_id, obj.media_ref) == b"ct pixels"

    def test_fetch_component_payload_size(self, server):
        session = server.connect_session("lee")
        server.join_room(session.session_id, "record-17")
        size = server.fetch_component_payload(
            session.session_id, "imaging.ct_head", "flat"
        )
        assert size == 512 * 1024
