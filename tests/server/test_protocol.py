"""Unit tests for protocol wire-size accounting and sessions."""


from repro.server import MessageKind, Session, encoded_size


class TestEncodedSize:
    def test_scalars(self):
        assert encoded_size(5) == 2  # tag + varint
        assert encoded_size(True) == 1  # single tag byte
        assert encoded_size(None) == 1  # single tag byte
        assert encoded_size("abc") == 5  # tag + varint length + utf-8

    def test_bytes_charged_raw_plus_framing(self):
        # Raw bytes cross the wire untouched: tag + varint(1000) + body.
        assert encoded_size(b"\x00" * 1000) == 1003

    def test_structures(self):
        flat = {"a": 1, "b": 2}
        assert encoded_size(flat) > encoded_size({"a": 1})
        assert encoded_size([1, 2, 3]) > encoded_size([1])

    def test_nested_bytes_dominate(self):
        payload = {"media_ref": "T:1", "data": b"\x01" * 10_000}
        assert encoded_size(payload) > 10_000

    def test_monotone_in_entries(self):
        small = {"changes": {"a": "x"}}
        large = {"changes": {f"c{i}": "value" for i in range(50)}}
        assert encoded_size(large) > 10 * encoded_size(small)

    def test_empty_containers(self):
        assert encoded_size({}) == 2
        assert encoded_size([]) == 2


class TestMessageKinds:
    def test_disjoint_directions(self):
        assert not set(MessageKind.CLIENT_KINDS) & set(MessageKind.SERVER_KINDS)

    def test_all_kinds_distinct(self):
        kinds = (
            MessageKind.CLIENT_KINDS
            + MessageKind.SERVER_KINDS
            + MessageKind.CLUSTER_KINDS
            + MessageKind.GATEWAY_KINDS
        )
        assert len(set(kinds)) == len(kinds)

    def test_cluster_kinds_are_backbone_only(self):
        # Cluster traffic never masquerades as client or server protocol.
        cluster = set(MessageKind.CLUSTER_KINDS)
        assert not cluster & set(MessageKind.CLIENT_KINDS)
        assert not cluster & set(MessageKind.SERVER_KINDS)
        assert {
            MessageKind.ROUTE,
            MessageKind.REPLICATE,
            MessageKind.ACK,
            MessageKind.HEARTBEAT,
            MessageKind.PROMOTE,
        } == cluster

    def test_gateway_kinds_are_control_plane_only(self):
        # Route-cache control traffic stays off every other vocabulary.
        gateway = set(MessageKind.GATEWAY_KINDS)
        assert not gateway & set(MessageKind.CLIENT_KINDS)
        assert not gateway & set(MessageKind.SERVER_KINDS)
        assert not gateway & set(MessageKind.CLUSTER_KINDS)
        assert {
            MessageKind.ROUTE_REPORT,
            MessageKind.ROUTE_LOOKUP,
            MessageKind.ROUTE_INFO,
            MessageKind.ROUTE_INVALIDATE,
        } == gateway


class TestSession:
    def test_spec_tracking(self):
        session = Session("s1", "lee", "node-1")
        assert not session.in_room
        session.remember_spec("doc", {"a": "x"})
        assert session.known_spec("doc") == {"a": "x"}
        session.forget_spec("doc")
        assert session.known_spec("doc") is None

    def test_remember_copies(self):
        session = Session("s1", "lee", "node-1")
        outcome = {"a": "x"}
        session.remember_spec("doc", outcome)
        outcome["a"] = "mutated"
        assert session.known_spec("doc") == {"a": "x"}
