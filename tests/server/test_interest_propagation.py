"""Interest-filtered fan-out at the server (repro.interest, PR 6).

Wire-byte assertions use a recording network: non-subscribers must cost
**zero** bytes on updates outside their interest, departed sessions must
cost zero bytes forever, and simulcast must ship smaller layer prefixes
to degraded viewers from one cached frame per (body, layer).
"""

import pytest

from repro import obs
from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore
from repro.document import build_sample_medical_record
from repro.interest import SIMULCAST_FLOOR, default_subscriptions, layer_prefix_size
from repro.net import SimulatedNetwork
from repro.presentation import (
    BANDWIDTH_LOW,
    TUNING_VARIABLE,
    install_bandwidth_tuning,
)
from repro.server import InteractionServer
from repro.server.protocol import MessageKind


class RecordingNetwork(SimulatedNetwork):
    """Counts every transmitted message per recipient (acks excluded)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.transmissions: list[tuple[str, str, int]] = []

    def _transmit(self, message):
        if message.kind != "net_ack":
            self.transmissions.append(
                (message.recipient, message.kind, message.size_bytes)
            )
        super()._transmit(message)

    def reset_recording(self):
        self.transmissions.clear()

    def to_node(self, node_id, kind=None):
        return [
            t
            for t in self.transmissions
            if t[0] == node_id and (kind is None or t[1] == kind)
        ]

    def bytes_to(self, node_id):
        return sum(size for rcpt, _, size in self.transmissions if rcpt == node_id)


def make_rig(tmp_path, name, interest_mode="off", with_tuning=False):
    db = Database(str(tmp_path / name))
    store = MultimediaObjectStore(db)
    doc = build_sample_medical_record()
    if with_tuning:
        install_bandwidth_tuning(doc)
    store.store_document(doc)
    network = RecordingNetwork()
    server = InteractionServer(store, network=network, interest_mode=interest_mode)
    return db, store, network, server


def attach(network, name, auto_fetch=False):
    client = ClientModule(name, network=network, auto_fetch=auto_fetch)
    network.attach_client(client)
    return client


@pytest.fixture
def rig(tmp_path):
    db, store, network, server = make_rig(tmp_path, "db")
    yield network, server
    db.close()


@pytest.fixture
def cpnet_rig(tmp_path):
    db, store, network, server = make_rig(
        tmp_path, "db-cpnet", interest_mode="cpnet", with_tuning=True
    )
    yield network, server
    db.close()


class TestFiltering:
    def test_nonsubscriber_costs_zero_wire_bytes(self, rig):
        network, server = rig
        actor, watcher, narrow = (attach(network, n) for n in ("a", "w", "n"))
        for client in (actor, watcher, narrow):
            client.join("record-17")
        network.run()
        narrow.subscribe(["labs"], replace=True)
        network.run()
        network.reset_recording()

        actor.choose("imaging.ct_head", "segmented")
        network.run()
        # The unsubscribed member gets nothing — not the update, not the
        # peer event; the implicit-ALL member gets both.
        assert network.bytes_to(narrow.node_id) == 0
        assert network.to_node(watcher.node_id, MessageKind.PRESENTATION_UPDATE)
        assert network.to_node(watcher.node_id, MessageKind.PEER_EVENT)
        assert narrow.displayed()["imaging.ct_head"] == "flat"
        assert watcher.displayed()["imaging.ct_head"] == "segmented"

    def test_actor_always_receives_own_changes(self, rig):
        network, server = rig
        actor = attach(network, "a")
        actor.join("record-17")
        network.run()
        actor.subscribe(["labs"], replace=True)
        network.run()
        actor.choose("imaging.ct_head", "icon")
        network.run()
        # Outside its subscription, but its own action: must come back.
        assert actor.displayed()["imaging.ct_head"] == "icon"

    def test_covered_update_still_flows(self, rig):
        network, server = rig
        actor, narrow = attach(network, "a"), attach(network, "n")
        actor.join("record-17")
        narrow.join("record-17")
        network.run()
        narrow.subscribe(["labs.ecg"], replace=True)
        network.run()
        # A child subscription covers the enclosing section's changes.
        actor.choose("labs", "hidden")
        network.run()
        assert narrow.displayed()["labs.ecg"] == "hidden"

    def test_unsubscribe_all_then_silence(self, rig):
        network, server = rig
        actor, quiet = attach(network, "a"), attach(network, "q")
        actor.join("record-17")
        quiet.join("record-17")
        network.run()
        quiet.unsubscribe()  # drop everything
        network.run()
        assert quiet.subscriptions == ()
        network.reset_recording()
        actor.choose("imaging.ct_head", "segmented")
        network.run()
        assert network.bytes_to(quiet.node_id) == 0


class TestCatchup:
    def test_subscribe_ack_carries_missed_state(self, rig):
        network, server = rig
        actor, laggard = attach(network, "a"), attach(network, "l")
        actor.join("record-17")
        laggard.join("record-17")
        network.run()
        laggard.subscribe(["labs"], replace=True)
        network.run()
        actor.choose("imaging.ct_head", "segmented")
        actor.choose("consult.voice_note", "transcript")
        network.run()
        assert laggard.displayed()["imaging.ct_head"] == "flat"  # filtered

        laggard.subscribe(["imaging.ct_head"])
        network.run()
        # The ack's catch-up diff healed exactly the newly covered path.
        assert laggard.subscriptions == ("imaging.ct_head", "labs")
        assert laggard.displayed()["imaging.ct_head"] == "segmented"
        # Still outside its interest: the other missed change stays out.
        assert laggard.displayed()["consult.voice_note"] == "play"

    def test_catchup_is_a_diff_not_a_snapshot(self, rig):
        network, server = rig
        client = attach(network, "c")
        client.join("record-17")
        network.run()
        network.reset_recording()
        # Nothing changed since join: re-subscribing to everything the
        # client already knows must carry an empty outcome.
        client.subscribe(["imaging.ct_head", "labs"])
        network.run()
        acks = network.to_node(client.node_id, MessageKind.SUBSCRIBE_ACK)
        assert len(acks) == 1
        assert client.displayed()["imaging.ct_head"] == "flat"


class TestCleanup:
    def test_departed_session_costs_zero_bytes(self, rig):
        """Regression: join, subscribe, leave — then total silence."""
        network, server = rig
        actor, ghost = attach(network, "a"), attach(network, "g")
        actor.join("record-17")
        ghost.join("record-17")
        network.run()
        ghost.subscribe(["imaging.ct_head"], replace=True)
        network.run()
        ghost.leave()
        network.run()
        room = server.room(server.room_ids[0])
        assert room.interest.session_ids == room.member_sessions
        network.reset_recording()
        actor.choose("imaging.ct_head", "segmented")
        actor.choose("labs", "hidden")
        network.run()
        assert network.bytes_to(ghost.node_id) == 0

    def test_disconnect_cleans_interest_too(self, rig):
        network, server = rig
        actor, ghost = attach(network, "a"), attach(network, "g")
        actor.join("record-17")
        ghost.join("record-17")
        network.run()
        ghost.subscribe(["labs"], replace=True)
        network.run()
        server.disconnect_session(ghost.session_id)
        room = server.room(server.room_ids[0])
        assert room.interest.session_ids == room.member_sessions
        network.reset_recording()
        actor.choose("labs", "hidden")
        network.run()
        assert network.bytes_to(ghost.node_id) == 0


class TestCpnetSeeding:
    def test_join_seeds_visible_primitives(self, cpnet_rig):
        network, server = cpnet_rig
        client = attach(network, "c")
        client.join("record-17")
        network.run()
        room = server.room(server.room_ids[0])
        subs = room.interest.subscriptions(client.session_id)
        assert subs is not None  # seeded, not implicit ALL
        spec = room.presentation_for("c")
        assert subs == default_subscriptions(room.document, spec.outcome)
        # Sections are never seeded; prefix coverage reaches them anyway.
        assert "imaging" not in subs
        assert room.interest.covers(client.session_id, "imaging")

    def test_explicit_subscribe_overrides_seed(self, cpnet_rig):
        network, server = cpnet_rig
        client = attach(network, "c")
        client.join("record-17")
        network.run()
        client.subscribe(["labs.ecg"], replace=True)
        network.run()
        room = server.room(server.room_ids[0])
        assert room.interest.subscriptions(client.session_id) == ("labs.ecg",)


class TestSimulcast:
    def test_degraded_viewer_ships_layer_prefix(self, cpnet_rig):
        network, server = cpnet_rig
        high, low = attach(network, "high"), attach(network, "low")
        high.join("record-17")
        low.join("record-17")
        network.run()
        low.choose(TUNING_VARIABLE, BANDWIDTH_LOW, scope="personal")
        network.run()
        size = (
            server.room(server.room_ids[0])
            .document.component("imaging.ct_head")
            .presentation_size("flat")
        )
        assert size >= SIMULCAST_FLOOR
        network.reset_recording()
        high.fetch_payload("imaging.ct_head", "flat")
        low.fetch_payload("imaging.ct_head", "flat")
        network.run()
        high_bytes = network.bytes_to(high.node_id)
        low_bytes = network.bytes_to(low.node_id)
        assert high_bytes >= size
        assert low_bytes <= layer_prefix_size(size, 1) + 64  # header slack
        assert low_bytes < high_bytes

    def test_one_cached_frame_per_body_and_layer(self, cpnet_rig):
        network, server = cpnet_rig
        clients = [attach(network, f"c{i}") for i in range(3)]
        for client in clients:
            client.join("record-17")
        network.run()
        room = server.room(server.room_ids[0])
        first = room.payload_frame("imaging.ct_head", "flat", 3, 524288)
        again = room.payload_frame("imaging.ct_head", "flat", 3, 524288)
        other_layer = room.payload_frame("imaging.ct_head", "flat", 1, 24966)
        assert first is again
        assert other_layer is not first

    def test_small_payloads_never_layered(self, cpnet_rig):
        network, server = cpnet_rig
        client = attach(network, "c")
        client.join("record-17")
        network.run()
        client.choose(TUNING_VARIABLE, BANDWIDTH_LOW, scope="personal")
        network.run()
        # Icons ship whole even at the lowest tuning level.
        shipped = server.fetch_component_payload(
            client.session_id, "imaging.ct_head", "icon"
        )
        assert shipped == 8192


class TestMetrics:
    def test_interest_counters_move(self, tmp_path):
        registry = obs.MetricsRegistry()
        with obs.use_registry(registry):
            db, store, network, server = make_rig(
                tmp_path, "db-metrics", interest_mode="cpnet", with_tuning=True
            )
            try:
                actor, narrow = attach(network, "a"), attach(network, "n")
                actor.join("record-17")
                narrow.join("record-17")
                network.run()
                narrow.subscribe(["labs"], replace=True)
                network.run()
                actor.choose("imaging.ct_head", "segmented")
                network.run()
                narrow.choose(TUNING_VARIABLE, BANDWIDTH_LOW, scope="personal")
                network.run()
                server.fetch_component_payload(
                    narrow.session_id, "imaging.ct_head", "flat"
                )
            finally:
                db.close()
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters.get("interest.updates_filtered", 0) >= 1
        assert counters.get("interest.bytes_saved", 0) > 0
        assert counters.get("interest.layer_downgrades", 0) >= 1
        gauges = snap["gauges"]
        assert any(key.startswith("interest.subscriptions") for key in gauges)
        # Cardinality stays bounded: one gauge series per room, flat
        # counters otherwise — never a per-session or per-component label.
        assert sum(1 for key in gauges if key.startswith("interest.")) == 1
        # And the standard dashboard surfaces the family with no wiring.
        panel = obs.render_dashboard(snap, include=("interest.",))
        assert "interest.updates_filtered" in panel
        assert "interest.bytes_saved" in panel
        assert "interest.subscriptions" in panel
