"""Unit tests for shared rooms."""

import pytest

from repro.document import build_sample_medical_record
from repro.errors import FrozenObjectError, RoomError
from repro.server import Room


@pytest.fixture
def room():
    room = Room("room-1", build_sample_medical_record())
    room.join("s1", "lee")
    room.join("s2", "cho")
    return room


class TestMembership:
    def test_join_leave(self, room):
        assert set(room.member_sessions) == {"s1", "s2"}
        assert room.leave("s1") == "lee"
        assert room.member_sessions == ("s2",)
        assert not room.is_empty
        room.leave("s2")
        assert room.is_empty

    def test_double_join_rejected(self, room):
        with pytest.raises(RoomError, match="already in room"):
            room.join("s1", "lee")

    def test_leave_unknown(self, room):
        with pytest.raises(RoomError, match="not in room"):
            room.leave("ghost")

    def test_viewer_of(self, room):
        assert room.viewer_of("s1") == "lee"

    def test_leaving_releases_freezes(self, room):
        room.freeze("lee", "imaging.ct_head")
        room.leave("s1")
        assert room.frozen_by("imaging.ct_head") is None

    def test_same_viewer_two_sessions(self, room):
        room.join("s3", "lee")
        room.leave("s1")
        # lee still has s3, so the engine keeps the viewer state.
        assert "lee" in room.engine.viewer_ids
        room.leave("s3")
        assert "lee" not in room.engine.viewer_ids


class TestCooperativeActions:
    def test_choice_changes_presentation(self, room):
        room.apply_choice("lee", "imaging.ct_head", "segmented")
        assert room.presentation_for("cho").value("imaging.ct_head") == "segmented"

    def test_operation_records_change(self, room):
        record, change = room.apply_operation("lee", "imaging.ct_head", "zoom")
        assert record.name == "imaging.ct_head.zoom"
        assert change.kind == "operation"
        assert change.data["global"] is False

    def test_annotation_stored(self, room):
        room.annotate("lee", "imaging.ct_head", {"type": "text", "text": "lesion", "x": 3, "y": 4})
        notes = room.annotations["imaging.ct_head"]
        assert notes[0]["viewer"] == "lee"
        assert notes[0]["text"] == "lesion"

    def test_annotation_unknown_component(self, room):
        with pytest.raises(Exception):
            room.annotate("lee", "no.such", {"type": "text"})


class TestFreeze:
    def test_freeze_blocks_others(self, room):
        room.freeze("lee", "imaging.ct_head")
        with pytest.raises(FrozenObjectError, match="frozen by"):
            room.apply_choice("cho", "imaging.ct_head", "icon")
        with pytest.raises(FrozenObjectError):
            room.apply_operation("cho", "imaging.ct_head", "zoom")
        with pytest.raises(FrozenObjectError):
            room.annotate("cho", "imaging.ct_head", {"type": "text"})

    def test_holder_may_still_act(self, room):
        room.freeze("lee", "imaging.ct_head")
        room.apply_choice("lee", "imaging.ct_head", "segmented")

    def test_double_freeze_by_other_rejected(self, room):
        room.freeze("lee", "imaging.ct_head")
        with pytest.raises(FrozenObjectError, match="already frozen"):
            room.freeze("cho", "imaging.ct_head")

    def test_release_only_by_holder(self, room):
        room.freeze("lee", "imaging.ct_head")
        with pytest.raises(FrozenObjectError, match="only"):
            room.release("cho", "imaging.ct_head")
        room.release("lee", "imaging.ct_head")
        room.apply_choice("cho", "imaging.ct_head", "icon")

    def test_release_unfrozen_rejected(self, room):
        with pytest.raises(FrozenObjectError, match="not frozen"):
            room.release("lee", "imaging.ct_head")


class TestChangeBuffer:
    def test_changes_accumulate_with_sequence(self, room):
        first = room.apply_choice("lee", "labs", "hidden")
        second = room.apply_choice("cho", "labs", "shown")
        assert (first.seq, second.seq) == (1, 2)
        assert [c.seq for c in room.changes_since(0)] == [1, 2]
        assert [c.seq for c in room.changes_since(1)] == [2]

    def test_discarded_when_acknowledged_by_all(self, room):
        room.apply_choice("lee", "labs", "hidden")
        room.apply_choice("cho", "labs", "shown")
        room.acknowledge("s1", 2)
        assert room.buffer_size == 2  # s2 has not acked yet
        room.acknowledge("s2", 2)
        assert room.buffer_size == 0

    def test_partial_ack_keeps_tail(self, room):
        room.apply_choice("lee", "labs", "hidden")
        room.apply_choice("cho", "labs", "shown")
        room.acknowledge("s1", 2)
        room.acknowledge("s2", 1)
        assert [c.seq for c in room.changes_since(0)] == [2]

    def test_leaver_stops_holding_buffer(self, room):
        room.apply_choice("lee", "labs", "hidden")
        room.acknowledge("s1", 1)
        assert room.buffer_size == 1  # waiting for s2
        room.leave("s2")
        assert room.buffer_size == 0

    def test_late_joiner_skips_history(self, room):
        room.apply_choice("lee", "labs", "hidden")
        room.join("s3", "kim")
        room.acknowledge("s1", 1)
        room.acknowledge("s2", 1)
        assert room.buffer_size == 0  # s3 does not block old changes

    def test_ack_requires_membership(self, room):
        with pytest.raises(RoomError):
            room.acknowledge("ghost", 1)

    def test_changes_since_keys_on_seq_not_position(self, room):
        """After a prefix trim, seq != list position — the bisect must
        key on the stored seq (PR 5 turns these into O(log n) paths)."""
        for i in range(6):
            room.apply_choice("lee", "labs", "hidden" if i % 2 else "shown")
        room.acknowledge("s1", 3)
        room.acknowledge("s2", 3)  # discards seqs 1..3
        assert room.buffer_size == 3
        assert [c.seq for c in room.changes_since(0)] == [4, 5, 6]
        assert [c.seq for c in room.changes_since(4)] == [5, 6]
        assert [c.seq for c in room.changes_since(6)] == []
        assert [c.seq for c in room.changes_since(99)] == []

    def test_monotone_acks_trim_incrementally(self, room):
        for i in range(4):
            room.apply_choice("lee", "labs", "hidden" if i % 2 else "shown")
        for seq in (1, 2, 3):
            room.acknowledge("s1", seq)
            room.acknowledge("s2", seq)
            assert [c.seq for c in room.changes_since(seq)] == list(
                range(seq + 1, 5)
            )
            assert room.buffer_size == 4 - seq
