"""Property-based tests: room invariants under random action sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.document import build_sample_medical_record
from repro.errors import FrozenObjectError, RoomError
from repro.server import Room

VIEWERS = ["lee", "cho", "kim"]
COMPONENTS = ["imaging.ct_head", "imaging.xray_chest", "labs", "consult.voice_note"]

actions = st.lists(
    st.one_of(
        st.tuples(st.just("join"), st.sampled_from(VIEWERS), st.none()),
        st.tuples(st.just("leave"), st.sampled_from(VIEWERS), st.none()),
        st.tuples(
            st.just("choice"),
            st.sampled_from(VIEWERS),
            st.tuples(st.sampled_from(COMPONENTS), st.integers(0, 2)),
        ),
        st.tuples(st.just("freeze"), st.sampled_from(VIEWERS), st.sampled_from(COMPONENTS)),
        st.tuples(st.just("release"), st.sampled_from(VIEWERS), st.sampled_from(COMPONENTS)),
        st.tuples(st.just("ack"), st.sampled_from(VIEWERS), st.none()),
    ),
    max_size=40,
)


@given(actions)
@settings(max_examples=40, deadline=None)
def test_room_invariants_hold_under_any_action_sequence(sequence):
    room = Room("prop", build_sample_medical_record())
    members: dict[str, str] = {}  # viewer -> session id
    frozen: dict[str, str] = {}
    for action, viewer, extra in sequence:
        session = f"s-{viewer}"
        try:
            if action == "join":
                if viewer in members:
                    continue
                room.join(session, viewer)
                members[viewer] = session
            elif action == "leave":
                if viewer not in members:
                    continue
                room.leave(session)
                del members[viewer]
                frozen = {c: v for c, v in frozen.items() if v != viewer}
            elif action == "choice":
                if viewer not in members:
                    continue
                component, value_index = extra
                domain = room.document.component(component).domain
                value = domain[value_index % len(domain)]
                holder = frozen.get(component)
                try:
                    room.apply_choice(viewer, component, value)
                    assert holder is None or holder == viewer
                except FrozenObjectError:
                    assert holder is not None and holder != viewer
            elif action == "freeze":
                if viewer not in members:
                    continue
                try:
                    room.freeze(viewer, extra)
                    frozen[extra] = viewer
                except FrozenObjectError:
                    assert extra in frozen and frozen[extra] != viewer
            elif action == "release":
                if viewer not in members:
                    continue
                try:
                    room.release(viewer, extra)
                    del frozen[extra]
                except FrozenObjectError:
                    assert frozen.get(extra) != viewer
            elif action == "ack":
                if viewer not in members:
                    continue
                room.acknowledge(members[viewer], room.latest_seq)
        except RoomError:
            raise AssertionError(f"unexpected RoomError on {action} by {viewer}")

        # --- invariants after every single action -----------------------
        assert set(room.viewer_ids) == set(members)
        assert set(room.engine.viewer_ids) == set(members)
        for member_viewer in members:
            spec = room.presentation_for(member_viewer)
            assert set(room.document.component_paths()) <= set(spec.outcome)
        for component, holder in frozen.items():
            assert room.frozen_by(component) == holder
        if not members:
            assert room.buffer_size == 0

    # Final: buffer only holds changes some member has not acknowledged.
    if members:
        for viewer, session in members.items():
            room.acknowledge(session, room.latest_seq)
        assert room.buffer_size == 0
