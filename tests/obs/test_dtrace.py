"""Unit tests for delivery tracing: store, tracer, analyzer, renderer."""

import pytest

from repro.obs import EventLog, MetricsRegistry
from repro.obs.dtrace import (
    HOP_BATCH_WAIT,
    HOP_DOWNLINK,
    HOP_GATEWAY_ROUTE,
    HOP_RETRANSMIT,
    HOP_SHARD_QUEUE,
    HOP_UPLINK,
    DeliveryTracer,
    NullDeliveryTracer,
    TraceContext,
    TraceStore,
    analyze_delivery,
    context_at,
    critical_path,
    get_dtrace,
    render_delivery_tree,
    use_dtrace,
)


def make_tracer(**kwargs):
    return DeliveryTracer(
        registry=MetricsRegistry(), event_log=EventLog(), **kwargs
    )


# ----- TraceStore -----------------------------------------------------------------

def test_store_ring_evicts_oldest():
    store = TraceStore(max_traces=3)
    for i in range(5):
        store.begin(f"client-{i}", "choice", float(i))
    assert len(store) == 3
    assert store.evicted == 2
    held = [record.trace_id for record in store]
    assert held == [3, 4, 5]  # ids 1 and 2 rolled off


def test_spans_for_evicted_trace_are_dropped_but_ids_advance():
    store = TraceStore(max_traces=1)
    first = store.begin("a", "choice", 0.0)
    store.begin("b", "choice", 1.0)  # evicts first
    span_id = store.add_span(first.trace_id, first.root_span_id, HOP_UPLINK, "g", 0.0, 0.1)
    assert store.dropped_spans == 1
    assert span_id > first.root_span_id  # allocation stays monotonic


def test_drop_origin_and_drop_room():
    store = TraceStore()
    store.begin("client-a", "choice", 0.0, room="room-1")
    store.begin("client-b", "choice", 0.0, room="room-2")
    store.begin("client-a", "operation", 1.0, room="room-2")
    assert store.drop_origin("client-a") == 2
    assert len(store) == 1
    assert store.drop_room("room-2") == 1
    assert len(store) == 0


# ----- DeliveryTracer -------------------------------------------------------------

def test_sampling_traces_every_nth_root():
    tracer = make_tracer(sample_every=4)
    contexts = [
        tracer.start_trace("client-a", "choice", float(i)) for i in range(8)
    ]
    sampled = [ctx for ctx in contexts if ctx is not None]
    assert len(sampled) == 2  # ops 0 and 4
    assert contexts[0] is not None and contexts[4] is not None
    assert len(tracer.store) == 2


def test_record_hop_advances_the_context():
    tracer = make_tracer()
    root = tracer.start_trace("client-a", "choice", 1.0, room="room-1")
    advanced = tracer.record_hop(root, HOP_UPLINK, "gateway", 1.0, 1.005)
    assert advanced.trace_id == root.trace_id
    assert advanced.span_id != root.span_id
    assert advanced.hop == root.hop + 1
    assert advanced.sent_at_s == pytest.approx(1.005)
    record = tracer.store.get(root.trace_id)
    assert [span.hop for span in record.spans] == [HOP_UPLINK]
    assert record.spans[0].parent_id == root.span_id


def test_inbound_scope_nests_and_restores():
    tracer = make_tracer()
    outer = context_at(1, 1, 0, 0.0)
    inner = context_at(1, 2, 1, 0.5)
    assert tracer.current() is None
    with tracer.inbound(outer):
        assert tracer.current() is outer
        with tracer.inbound(inner):
            assert tracer.current() is inner
        assert tracer.current() is outer
    assert tracer.current() is None


def test_finish_delivery_feeds_e2e_histogram():
    registry = MetricsRegistry()
    tracer = DeliveryTracer(registry=registry, event_log=EventLog())
    root = tracer.start_trace("client-a", "choice", 1.0, room="room-1")
    ctx = tracer.record_hop(root, HOP_UPLINK, "gateway", 1.0, 1.01)
    tracer.finish_delivery(ctx, "client-b", 1.05)
    histograms = registry.snapshot()["histograms"]
    e2e = histograms['dtrace.e2e.latency{room="room-1"}']
    assert e2e["count"] == 1
    assert e2e["total"] == pytest.approx(0.05)
    hop = histograms['dtrace.hop.latency{hop="uplink"}']
    assert hop["count"] == 1


def test_slo_breach_emits_event_with_breakdown():
    log = EventLog()
    tracer = DeliveryTracer(
        registry=MetricsRegistry(), event_log=log, slo_budget_s=0.01
    )
    root = tracer.start_trace("client-a", "choice", 0.0, room="room-1")
    ctx = tracer.record_hop(root, HOP_UPLINK, "gateway", 0.0, 0.02)
    tracer.finish_delivery(ctx, "client-b", 0.02)
    breaches = [e for e in log.events if e.name == "dtrace.slo_breach"]
    assert len(breaches) == 1
    event = breaches[0]
    assert event.severity == "WARN"
    assert event.fields["e2e_s"] == pytest.approx(0.02)
    assert event.fields["wire"] == pytest.approx(0.02)


def test_under_budget_delivery_does_not_breach():
    log = EventLog()
    tracer = DeliveryTracer(
        registry=MetricsRegistry(), event_log=log, slo_budget_s=1.0
    )
    root = tracer.start_trace("client-a", "choice", 0.0)
    ctx = tracer.record_hop(root, HOP_UPLINK, "gateway", 0.0, 0.02)
    tracer.finish_delivery(ctx, "client-b", 0.02)
    assert not [e for e in log.events if e.name == "dtrace.slo_breach"]


def test_drop_room_retires_the_e2e_series():
    registry = MetricsRegistry()
    tracer = DeliveryTracer(registry=registry, event_log=EventLog())
    root = tracer.start_trace("client-a", "choice", 0.0, room="room-1")
    ctx = tracer.record_hop(root, HOP_UPLINK, "gateway", 0.0, 0.01)
    tracer.finish_delivery(ctx, "client-b", 0.01)
    assert 'dtrace.e2e.latency{room="room-1"}' in registry.snapshot()["histograms"]
    tracer.drop_room("room-1")
    assert 'dtrace.e2e.latency{room="room-1"}' not in registry.snapshot()["histograms"]
    assert len(tracer.store) == 0


def test_default_tracer_is_null_and_inert():
    tracer = get_dtrace()
    assert isinstance(tracer, NullDeliveryTracer)
    assert not tracer.enabled
    assert tracer.start_trace("a", "choice", 0.0) is None
    ctx = context_at(1, 1, 0, 0.0)
    assert tracer.record_hop(ctx, HOP_UPLINK, "g", 0.0, 1.0) is ctx
    with tracer.inbound(ctx):
        assert tracer.current() is None
    assert len(tracer.store) == 0


def test_use_dtrace_restores_previous():
    tracer = make_tracer()
    before = get_dtrace()
    with use_dtrace(tracer):
        assert get_dtrace() is tracer
    assert get_dtrace() is before


# ----- analyzer -------------------------------------------------------------------

def build_delivery(tracer):
    """One synthetic delivery chain with a retransmitted wire hop."""
    root = tracer.start_trace("client-a", "choice", 0.0, room="room-1")
    up = tracer.record_hop(root, HOP_UPLINK, "gateway", 0.0, 0.010)
    routed = tracer.record_hop(up, HOP_GATEWAY_ROUTE, "shard-1", 0.010, 0.020)
    queued = tracer.record_hop(routed, HOP_SHARD_QUEUE, "shard-1", 0.020, 0.045)
    waited = tracer.record_hop(queued, HOP_BATCH_WAIT, "shard-1", 0.045, 0.065)
    # The downlink wire hop took 35 ms, 20 ms of which was one
    # retransmit's backoff — recorded as a sibling under the same parent.
    tracer.record_hop(waited, HOP_RETRANSMIT, "shard-1", 0.065, 0.085, attempt=1)
    down = tracer.record_hop(waited, HOP_DOWNLINK, "client-b", 0.065, 0.100)
    tracer.finish_delivery(down, "client-b", 0.100)
    return tracer.store.get(root.trace_id)


def test_critical_path_walks_root_to_leaf():
    tracer = make_tracer()
    record = build_delivery(tracer)
    path = critical_path(record, record.deliveries[0]["span_id"])
    assert [span.hop for span in path] == [
        HOP_UPLINK, HOP_GATEWAY_ROUTE, HOP_SHARD_QUEUE,
        HOP_BATCH_WAIT, HOP_DOWNLINK,
    ]


def test_analyze_delivery_attributes_categories():
    tracer = make_tracer()
    record = build_delivery(tracer)
    analysis = analyze_delivery(record, record.deliveries[0])
    categories = analysis["categories"]
    # uplink 10ms + route 10ms + (downlink 35ms - 20ms backoff) = 35ms wire
    assert categories["wire"] == pytest.approx(0.035)
    assert categories["queueing"] == pytest.approx(0.025)
    assert categories["batch_window"] == pytest.approx(0.020)
    assert categories["retransmit_backoff"] == pytest.approx(0.020)
    assert analysis["e2e"] == pytest.approx(0.100)
    assert analysis["other"] == pytest.approx(0.0)
    assert sum(categories.values()) + analysis["other"] == pytest.approx(0.100)


def test_retransmit_backoff_clamped_to_wire_leg():
    """Backoff longer than the hop it delayed cannot go negative."""
    tracer = make_tracer()
    root = tracer.start_trace("client-a", "choice", 0.0)
    up = tracer.record_hop(root, HOP_UPLINK, "gateway", 0.0, 0.010)
    tracer.record_hop(root, HOP_RETRANSMIT, "client-a", 0.0, 0.050, attempt=1)
    tracer.finish_delivery(up, "gateway", 0.010)
    record = tracer.store.get(root.trace_id)
    analysis = analyze_delivery(record, record.deliveries[0])
    assert analysis["categories"]["wire"] == pytest.approx(0.0)
    assert analysis["categories"]["retransmit_backoff"] == pytest.approx(0.010)


def test_render_delivery_tree_marks_deliveries():
    tracer = make_tracer()
    record = build_delivery(tracer)
    text = render_delivery_tree(record)
    lines = text.splitlines()
    assert "trace 1 'choice' from client-a room=room-1 deliveries=1" in lines[0]
    assert any("uplink @gateway" in line for line in lines)
    assert any("retransmit @shard-1" in line for line in lines)
    assert any("← delivered e2e=100.000ms" in line for line in lines)
    # Depth encodes the tree: downlink is nested under batch_wait.
    downlink = next(line for line in lines if "downlink" in line)
    batch = next(line for line in lines if "batch_wait" in line)
    assert len(downlink) - len(downlink.lstrip()) > len(batch) - len(batch.lstrip())


def test_trace_context_is_hashable_and_compact():
    ctx = TraceContext(1, 2, 3, 4_000_000)
    assert ctx.sent_at_s == pytest.approx(4.0)
    assert hash(ctx) == hash(TraceContext(1, 2, 3, 4_000_000))
