"""Exporters: JSON, line format, and snapshot diffing."""

import json

from repro.obs import MetricsRegistry, diff, to_json, to_lines


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("db.rows_scanned").inc(100)
    registry.gauge("server.room_occupancy").set(3)
    histogram = registry.histogram("db.query_latency_s", bounds=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.005, 0.05):
        histogram.observe(value)
    return registry


class TestJson:
    def test_round_trips_and_sorts_keys(self):
        rendered = to_json(_registry().snapshot())
        parsed = json.loads(rendered)
        assert parsed["counters"]["db.rows_scanned"] == 100
        assert list(parsed) == ["counters", "gauges", "histograms"]

    def test_identical_state_is_byte_identical(self):
        assert to_json(_registry().snapshot()) == to_json(_registry().snapshot())


class TestLines:
    def test_flat_format(self):
        lines = to_lines(_registry().snapshot()).splitlines()
        assert "counter db.rows_scanned 100" in lines
        assert "gauge server.room_occupancy 3" in lines
        histogram_lines = [l for l in lines if l.startswith("histogram")]
        assert len(histogram_lines) == 1
        assert "count=3" in histogram_lines[0]
        assert "p50=0.01" in histogram_lines[0]

    def test_empty_histogram_renders_count_zero(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        assert to_lines(registry.snapshot()) == "histogram h count=0"


class TestDiff:
    def test_counters_subtract_and_unmoved_are_omitted(self):
        registry = _registry()
        before = registry.snapshot()
        registry.counter("db.rows_scanned").inc(20)
        registry.counter("db.queries").inc(1)
        delta = diff(before, registry.snapshot())
        assert delta["counters"] == {"db.queries": 1, "db.rows_scanned": 20}

    def test_gauges_report_after_value_only_when_changed(self):
        registry = _registry()
        before = registry.snapshot()
        registry.gauge("server.room_occupancy").set(5)
        registry.gauge("untouched").set(0)
        delta = diff(before, registry.snapshot())
        assert delta["gauges"] == {"server.room_occupancy": 5}

    def test_histograms_subtract_bucketwise(self):
        registry = _registry()
        before = registry.snapshot()
        histogram = registry.histogram("db.query_latency_s")
        for _ in range(10):
            histogram.observe(0.005)
        delta = diff(before, registry.snapshot())
        summary = delta["histograms"]["db.query_latency_s"]
        assert summary["count"] == 10
        assert summary["bucket_counts"] == [0, 10, 0, 0]
        # Every new observation fell in the <=0.01 bucket.
        assert summary["p50"] == 0.01
        assert summary["p99"] == 0.01
        assert abs(summary["total"] - 0.05) < 1e-12

    def test_no_activity_diffs_to_empty(self):
        registry = _registry()
        snapshot = registry.snapshot()
        assert diff(snapshot, registry.snapshot()) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_instrument_created_after_before_snapshot(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.counter("fresh").inc(7)
        registry.histogram("fresh_h", bounds=(1.0,)).observe(0.5)
        delta = diff(before, registry.snapshot())
        assert delta["counters"] == {"fresh": 7}
        assert delta["histograms"]["fresh_h"]["count"] == 1


class TestGaugesAbsent:
    def test_gauge_vanishing_is_reported(self):
        before = {
            "counters": {},
            "gauges": {"server.rooms_open": 4, "stable": 1},
            "histograms": {},
        }
        after = {"counters": {}, "gauges": {"stable": 1}, "histograms": {}}
        delta = diff(before, after)
        # Last-known value going to absent, not silently dropped.
        assert delta["gauges_absent"] == {"server.rooms_open": 4}
        assert delta["gauges"] == {}

    def test_registry_recreated_between_snapshots(self):
        first = MetricsRegistry()
        first.gauge("server.sessions_connected").set(3)
        before = first.snapshot()
        after = MetricsRegistry().snapshot()  # reset: gauge is gone
        delta = diff(before, after)
        assert delta["gauges_absent"] == {"server.sessions_connected": 3}

    def test_key_absent_when_nothing_disappeared(self):
        registry = _registry()
        delta = diff(registry.snapshot(), registry.snapshot())
        assert "gauges_absent" not in delta

    def test_lines_render_absent_gauges(self):
        delta = diff(
            {"counters": {}, "gauges": {"g": 7}, "histograms": {}},
            {"counters": {}, "gauges": {}, "histograms": {}},
        )
        assert "gauge g absent last=7" in to_lines(delta)
