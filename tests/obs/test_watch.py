"""Slow-op watchdog: budgets, deterministic firing, tracer integration."""

import pytest

from repro.obs.events import WARN, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.obs.watch import Watchdog


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def rig():
    clock = FakeClock()
    log = EventLog(clock=clock)
    registry = MetricsRegistry()
    watchdog = Watchdog(event_log=log, registry=registry)
    return clock, log, registry, watchdog


class TestBudgets:
    def test_within_budget_is_silent(self, rig):
        clock, log, registry, watchdog = rig
        watchdog.set_budget("db.select", 0.050)
        assert watchdog.check("db.select", 0.050) is False  # inclusive budget
        assert log.events == ()
        assert registry.snapshot()["counters"] == {}

    def test_violation_emits_one_warn_and_counts(self, rig):
        clock, log, registry, watchdog = rig
        watchdog.set_budget("db.select", 0.050)
        assert watchdog.check("db.select", 0.051) is True
        events = log.filter(min_severity=WARN)
        assert len(events) == 1
        event = events[0]
        assert event.name == "watch.slow_op"
        assert event.fields["op"] == "db.select"
        assert event.fields["budget_s"] == 0.050
        assert registry.snapshot()["counters"] == {
            'watch.violations{op="db.select"}': 1
        }

    def test_unbudgeted_ops_never_fire(self, rig):
        clock, log, registry, watchdog = rig
        assert watchdog.check("anything", 1e9) is False
        assert log.events == ()

    def test_clear_budget(self, rig):
        clock, log, registry, watchdog = rig
        watchdog.set_budget("op", 0.01)
        watchdog.clear_budget("op")
        assert watchdog.check("op", 1.0) is False

    def test_budget_must_be_positive(self, rig):
        *_, watchdog = rig
        with pytest.raises(ValueError):
            watchdog.set_budget("op", 0.0)


class TestTracerIntegration:
    def test_fires_exactly_once_per_violation_under_sim_clock(self, rig):
        clock, log, registry, watchdog = rig
        tracer = Tracer(clock=clock)
        tracer.add_listener(watchdog.on_span)
        watchdog.set_budget("server.propagate", 0.100)

        for duration in (0.050, 0.250, 0.080, 0.300):
            with tracer.span("server.propagate"):
                clock.advance(duration)

        violations = log.filter(name="watch.slow_op")
        assert len(violations) == 2  # one per violating span, none repeated
        assert [event.fields["duration_s"] for event in violations] == [0.25, 0.3]
        assert registry.counter(
            'watch.violations{op="server.propagate"}'
        ).value == 2

    def test_nested_spans_are_budgeted_independently(self, rig):
        clock, log, registry, watchdog = rig
        tracer = Tracer(clock=clock)
        tracer.add_listener(watchdog.on_span)
        watchdog.set_budget("outer", 10.0)
        watchdog.set_budget("inner", 0.010)
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.advance(0.5)
        violations = log.filter(name="watch.slow_op")
        assert [event.fields["op"] for event in violations] == ["inner"]

    def test_deterministic_across_runs(self, rig):
        clock, log, registry, watchdog = rig

        def run() -> tuple:
            run_clock = FakeClock()
            run_log = EventLog(clock=run_clock)
            run_watchdog = Watchdog(event_log=run_log, registry=MetricsRegistry())
            run_watchdog.set_budget("op", 0.1)
            tracer = Tracer(clock=run_clock)
            tracer.add_listener(run_watchdog.on_span)
            for duration in (0.05, 0.2, 0.15):
                with tracer.span("op"):
                    run_clock.advance(duration)
            return tuple(event.to_dict() for event in run_log.events)

        assert run() == run()


class TestDefaultWiring:
    def test_package_default_watchdog_listens_to_default_tracer(self):
        from repro import obs

        log = obs.EventLog()
        with obs.use_event_log(log):
            watchdog = obs.get_watchdog()
            watchdog.set_budget("test.slow_block", 1e-12)
            try:
                with obs.trace.span("test.slow_block"):
                    pass
                assert [e.name for e in log.events].count("watch.slow_op") == 1
            finally:
                watchdog.clear_budget("test.slow_block")
