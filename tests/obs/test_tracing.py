"""Span trees, the context-local stack, and deterministic clocks."""

import json

from repro.net.simclock import SimClock
from repro.obs import MetricsRegistry, Tracer, render_span_tree, timeit
from repro.obs.tracing import Span


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert tracer.last() is root

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_roots_are_bounded(self):
        tracer = Tracer(max_roots=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.roots] == ["s2", "s3", "s4"]
        tracer.clear()
        assert tracer.roots == ()

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        span = tracer.last()
        assert span is not None and span.end is not None

    def test_registry_records_span_durations(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("server.propagate"):
            pass
        assert registry.histogram("trace.server.propagate").count == 1


class TestDeterministicClock:
    def _run_session(self) -> Span:
        """One simclock-driven trace; identical every time by construction."""
        clock = SimClock()
        tracer = Tracer(clock=lambda: clock.now)
        with tracer.span("session"):
            clock.run_until(0.25)
            with tracer.span("server.join_room"):
                clock.run_until(1.0)
            with tracer.span("server.propagate"):
                clock.run_until(3.5)
        span = tracer.last()
        assert span is not None
        return span

    def test_simclock_drives_span_times(self):
        span = self._run_session()
        assert span.start == 0.0 and span.end == 3.5
        join, propagate = span.children
        assert (join.start, join.end) == (0.25, 1.0)
        assert (propagate.start, propagate.end) == (1.0, 3.5)

    def test_exports_are_byte_identical_across_runs(self):
        first, second = self._run_session(), self._run_session()
        assert render_span_tree(first) == render_span_tree(second)
        dumps = [
            json.dumps(s.to_dict(), sort_keys=True, separators=(",", ": "))
            for s in (first, second)
        ]
        assert dumps[0].encode() == dumps[1].encode()

    def test_render_shows_hierarchy_and_durations(self):
        rendered = render_span_tree(self._run_session())
        lines = rendered.splitlines()
        assert lines[0].startswith("session  3500.000 ms")
        assert lines[1].startswith("  server.join_room  750.000 ms")
        assert lines[2].startswith("  server.propagate  2500.000 ms")


class TestTimeit:
    def test_timeit_prints_and_traces(self):
        clock = SimClock()
        tracer = Tracer(clock=lambda: clock.now)
        printed = []
        with timeit("retrieve", tracer=tracer, printer=printed.append):
            clock.run_until(0.002)
        assert printed == ["[timeit] retrieve: 2.000 ms"]
        assert tracer.last().name == "retrieve"

    def test_timeit_defaults_to_package_tracer(self):
        from repro import obs

        printed = []
        with timeit("quick", printer=printed.append):
            pass
        assert printed and printed[0].startswith("[timeit] quick: ")
        assert obs.trace.last() is not None


class TestSpanErrors:
    def test_successful_span_has_no_error(self):
        tracer = Tracer()
        with tracer.span("ok") as span:
            pass
        assert span.error is None
        assert span.to_dict()["error"] is None

    def test_raising_block_records_exception_type(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed") as span:
                raise ValueError("boom")
        except ValueError:
            pass
        assert span.error == "ValueError"
        assert span.end is not None  # still closed
        assert tracer.last() is span  # still retained

    def test_error_counted_in_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        try:
            with tracer.span("op"):
                raise KeyError("x")
        except KeyError:
            pass
        assert registry.counter("trace.op.errors").value == 1
        assert registry.histogram("trace.op").count == 1  # duration still observed

    def test_nested_error_propagates_through_both_spans(self):
        tracer = Tracer()
        try:
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    raise RuntimeError("deep")
        except RuntimeError:
            pass
        assert inner.error == "RuntimeError"
        assert outer.error == "RuntimeError"

    def test_render_marks_errored_spans(self):
        clock = SimClock()
        tracer = Tracer(clock=lambda: clock.now)
        try:
            with tracer.span("flaky") as span:
                raise OSError("disk")
        except OSError:
            pass
        rendered = render_span_tree(span)
        assert "!error=OSError" in rendered

    def test_listeners_see_finished_spans(self):
        tracer = Tracer()
        finished = []
        listener = tracer.add_listener(finished.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [span.name for span in finished] == ["b", "a"]
        tracer.remove_listener(listener)
        with tracer.span("c"):
            pass
        assert [span.name for span in finished] == ["b", "a"]

    def test_span_ids_unique_and_reset_by_clear(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert (a.span_id, b.span_id) == (1, 2)
        tracer.clear()
        with tracer.span("c") as c:
            pass
        assert c.span_id == 1
