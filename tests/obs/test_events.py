"""Flight recorder: emit, correlate, evict, subscribe."""

import contextvars

import pytest

from repro.obs.events import DEBUG, ERROR, INFO, WARN, Event, EventLog, NullEventLog, severity_rank
from repro.obs.tracing import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestEmit:
    def test_records_name_severity_fields_and_time(self):
        clock = FakeClock()
        log = EventLog(clock=clock)
        clock.advance(1.5)
        event = log.emit("db.checkpoint", severity=INFO, tables=3, journal_bytes=1024)
        assert event.name == "db.checkpoint"
        assert event.severity == INFO
        assert event.at == 1.5
        assert event.fields == {"tables": 3, "journal_bytes": 1024}
        assert log.events == (event,)

    def test_explicit_at_overrides_clock(self):
        log = EventLog(clock=FakeClock())
        event = log.emit("x", at=42.0)
        assert event.at == 42.0

    def test_sequence_numbers_are_monotonic(self):
        log = EventLog(clock=FakeClock())
        seqs = [log.emit("e").seq for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_unknown_severity_rejected(self):
        log = EventLog(clock=FakeClock())
        with pytest.raises(ValueError):
            log.emit("x", severity="LOUD")
        assert len(log) == 0

    def test_severity_ranks_are_ordered(self):
        assert (
            severity_rank(DEBUG)
            < severity_rank(INFO)
            < severity_rank(WARN)
            < severity_rank(ERROR)
        )

    def test_to_dict_is_deterministic(self):
        log = EventLog(clock=FakeClock())
        event = log.emit("x", b=2, a=1)
        assert event.to_dict() == {
            "seq": 1,
            "name": "x",
            "severity": "INFO",
            "at": 0.0,
            "span_id": None,
            "fields": {"a": 1, "b": 2},
        }

    def test_render_is_one_line(self):
        log = EventLog(clock=FakeClock())
        event = log.emit("net.drop", severity=WARN, at=1.25, node="c1")
        assert event.render() == "[    1.250] WARN  net.drop  node=c1"


class TestSpanCorrelation:
    def test_event_carries_open_span_id(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        log = EventLog(clock=clock, tracer=tracer)
        with tracer.span("outer") as outer:
            outside = log.emit("in_outer")
            with tracer.span("inner") as inner:
                inside = log.emit("in_inner")
        after = log.emit("after")
        assert outside.span_id == outer.span_id
        assert inside.span_id == inner.span_id
        assert after.span_id is None

    def test_interleaved_session_contexts_keep_their_span_ids(self):
        """Two simulated sessions interleave nested spans; every event
        lands on the span open in *its own* context at emit time."""
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        log = EventLog(clock=clock, tracer=tracer)
        ctx_a = contextvars.copy_context()
        ctx_b = contextvars.copy_context()
        state: dict[str, object] = {}

        def open_session(name):
            cm = tracer.span(f"{name}.request")
            span = cm.__enter__()
            state[name] = (cm, span)
            log.emit(f"{name}.started", session=name)
            return span

        def work(name):
            with tracer.span(f"{name}.work") as span:
                log.emit(f"{name}.worked", session=name)
            return span

        def close_session(name):
            cm, span = state.pop(name)
            cm.__exit__(None, None, None)
            return span

        root_a = ctx_a.run(open_session, "a")
        root_b = ctx_b.run(open_session, "b")
        work_a = ctx_a.run(work, "a")
        work_b = ctx_b.run(work, "b")
        ctx_b.run(close_session, "b")
        ctx_a.run(close_session, "a")

        by_name = {event.name: event for event in log.events}
        assert by_name["a.started"].span_id == root_a.span_id
        assert by_name["b.started"].span_id == root_b.span_id
        assert by_name["a.worked"].span_id == work_a.span_id
        assert by_name["b.worked"].span_id == work_b.span_id
        # Four distinct spans, four distinct correlation targets.
        assert len({e.span_id for e in log.events}) == 4


class TestRingBuffer:
    def test_eviction_keeps_the_newest(self):
        log = EventLog(capacity=3, clock=FakeClock())
        for index in range(7):
            log.emit(f"e{index}")
        assert [event.name for event in log.events] == ["e4", "e5", "e6"]
        assert len(log) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_tail(self):
        log = EventLog(clock=FakeClock())
        for index in range(5):
            log.emit(f"e{index}")
        assert [event.name for event in log.tail(2)] == ["e3", "e4"]
        assert log.tail(0) == ()

    def test_filter_by_severity_and_name(self):
        log = EventLog(clock=FakeClock())
        log.emit("db.checkpoint")
        log.emit("net.drop", severity=WARN)
        log.emit("net.sent", severity=DEBUG)
        assert [e.name for e in log.filter(min_severity=WARN)] == ["net.drop"]
        assert [e.name for e in log.filter(name="net.")] == ["net.drop", "net.sent"]

    def test_clear(self):
        log = EventLog(clock=FakeClock())
        log.emit("x")
        log.clear()
        assert log.events == ()


class TestSubscribers:
    def test_subscriber_sees_every_event(self):
        log = EventLog(clock=FakeClock())
        seen: list[Event] = []
        log.subscribe(seen.append)
        first = log.emit("one")
        second = log.emit("two")
        assert seen == [first, second]

    def test_unsubscribe(self):
        log = EventLog(clock=FakeClock())
        seen: list[Event] = []
        log.subscribe(seen.append)
        log.unsubscribe(seen.append)
        log.emit("one")
        assert seen == []

    def test_subscriber_outlives_ring_eviction(self):
        log = EventLog(capacity=1, clock=FakeClock())
        seen: list[str] = []
        log.subscribe(lambda event: seen.append(event.name))
        for index in range(4):
            log.emit(f"e{index}")
        assert seen == ["e0", "e1", "e2", "e3"]  # delivery is not bounded
        assert len(log) == 1                     # retention is


class TestNullEventLog:
    def test_is_inert(self):
        log = NullEventLog()
        assert log.emit("x", severity=WARN) is None
        assert log.events == ()
        assert len(log) == 0
        assert list(log) == []
        assert log.tail(5) == ()
        assert log.filter() == ()
        log.clear()
