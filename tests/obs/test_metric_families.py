"""Labelled metric families: canonical names, cardinality bounds, exporters."""

import pytest

from repro.obs.export import to_exposition, to_json, to_lines
from repro.obs.metrics import (
    OVERFLOW_LABEL,
    MetricsRegistry,
    NullRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestFamilies:
    def test_children_register_under_canonical_names(self, registry):
        family = registry.counter_family("db.rows_scanned", ("table",))
        family.labels("patients").inc(5)
        family.labels("images").inc(2)
        assert registry.counters['db.rows_scanned{table="patients"}'].value == 5
        assert registry.counters['db.rows_scanned{table="images"}'].value == 2

    def test_same_labels_resolve_to_same_child(self, registry):
        family = registry.counter_family("c", ("k",))
        assert family.labels("v") is family.labels("v")

    def test_label_values_coerced_to_str(self, registry):
        family = registry.gauge_family("g", ("shard",))
        assert family.labels(3) is family.labels("3")

    def test_multi_label_families(self, registry):
        family = registry.counter_family("bytes", ("room", "mode"))
        family.labels("room-1", "diff").inc(10)
        assert registry.counters['bytes{room="room-1",mode="diff"}'].value == 10

    def test_wrong_arity_rejected(self, registry):
        family = registry.counter_family("c", ("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")

    def test_needs_at_least_one_label(self, registry):
        with pytest.raises(ValueError):
            registry.counter_family("c", ())

    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter_family("c", ("k",))
        second = registry.counter_family("c", ("k",))
        assert first is second

    def test_kind_mismatch_rejected(self, registry):
        registry.counter_family("c", ("k",))
        with pytest.raises(ValueError):
            registry.gauge_family("c", ("k",))

    def test_label_name_mismatch_rejected(self, registry):
        registry.counter_family("c", ("k",))
        with pytest.raises(ValueError):
            registry.counter_family("c", ("other",))

    def test_label_values_escaped(self, registry):
        family = registry.counter_family("c", ("k",))
        family.labels('say "hi"').inc()
        assert 'c{k="say \\"hi\\""}' in registry.counters

    def test_histogram_family_custom_bounds(self, registry):
        family = registry.histogram_family("h", ("k",), bounds=(1.0, 2.0))
        child = family.labels("a")
        child.observe(1.5)
        assert child.bounds == (1.0, 2.0)
        assert child.count == 1

    def test_remove_drops_child_from_registry(self, registry):
        family = registry.gauge_family("g", ("room",))
        family.labels("room-1").set(5)
        family.remove("room-1")
        assert 'g{room="room-1"}' not in registry.gauges
        assert family.children == {}

    def test_reset_clears_families(self, registry):
        registry.counter_family("c", ("k",)).labels("v").inc()
        registry.reset()
        assert registry.families == {}
        assert registry.counters == {}


class TestCardinalityBound:
    def test_overflow_collapses_to_shared_child(self, registry):
        family = registry.counter_family("c", ("k",), max_series=2)
        family.labels("a").inc()
        family.labels("b").inc()
        overflow_1 = family.labels("c")
        overflow_2 = family.labels("d")
        assert overflow_1 is overflow_2
        assert overflow_1.name == f'c{{k="{OVERFLOW_LABEL}"}}'
        overflow_1.inc(3)
        # Two real series + one overflow series; no unbounded growth.
        assert len(family.children) == 3
        family.labels("e").inc()
        assert len(family.children) == 3

    def test_known_labels_still_resolve_after_overflow(self, registry):
        family = registry.counter_family("c", ("k",), max_series=1)
        child = family.labels("a")
        family.labels("b")  # overflow
        assert family.labels("a") is child


class TestExportersSeeChildren:
    def test_snapshot_and_lines_and_json(self, registry):
        registry.counter_family("db.rows", ("table",)).labels("patients").inc(7)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {'db.rows{table="patients"}': 7}
        assert 'counter db.rows{table="patients"} 7' in to_lines(snapshot)
        assert '"db.rows{table=\\"patients\\"}"' in to_json(snapshot)

    def test_exposition_renders_labels_and_types(self, registry):
        registry.counter_family("db.rows", ("table",)).labels("patients").inc(7)
        registry.gauge("server.rooms_open").set(2)
        text = to_exposition(registry.snapshot())
        assert "# TYPE db_rows counter" in text
        assert 'db_rows{table="patients"} 7' in text
        assert "# TYPE server_rooms_open gauge" in text
        assert "server_rooms_open 2" in text

    def test_exposition_histogram_buckets_are_cumulative(self, registry):
        hist = registry.histogram("lat", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = to_exposition(registry.snapshot())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_exposition_is_deterministic(self, registry):
        registry.counter_family("c", ("k",)).labels("b").inc()
        registry.counter_family("c", ("k",)).labels("a").inc()
        registry.counter("zz").inc()
        assert to_exposition(registry.snapshot()) == to_exposition(registry.snapshot())

    def test_exposition_empty_snapshot(self):
        assert to_exposition({"counters": {}, "gauges": {}, "histograms": {}}) == ""


class TestNullRegistryFamilies:
    def test_families_are_inert(self):
        registry = NullRegistry()
        family = registry.counter_family("c", ("k",))
        family.labels("v").inc(100)
        family.remove("v")
        assert registry.families == {}
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_all_family_kinds_share_the_null_family(self):
        registry = NullRegistry()
        assert registry.counter_family("a", ("k",)) is registry.gauge_family("b", ("k",))
        assert registry.histogram_family("c", ("k",)) is registry.counter_family("a", ("k",))
