"""Instrument and registry behavior."""

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounterGauge:
    def test_counter_counts(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(12)
        assert gauge.value == 3


class TestHistogram:
    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(3.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_bucket_assignment_inclusive_upper_edge(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 100.0, 1000.0):
            histogram.observe(value)
        # <=1 | <=10 | <=100 | overflow
        assert histogram.bucket_counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 1000.0

    def test_percentiles_are_bucket_upper_edges(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for _ in range(90):
            histogram.observe(0.5)
        for _ in range(10):
            histogram.observe(50.0)
        assert histogram.percentile(0.50) == 1.0
        assert histogram.percentile(0.90) == 1.0
        assert histogram.percentile(0.99) == 100.0

    def test_overflow_bucket_reports_observed_max(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.observe(123.0)
        assert histogram.percentile(0.99) == 123.0

    def test_empty_percentile_is_none(self):
        assert Histogram("h").percentile(0.5) is None

    def test_summary_shape(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(1.5)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["mean"] == 1.5
        assert summary["p50"] == 2.0
        assert summary["bucket_counts"] == [0, 1, 0]

    def test_bucket_presets_are_sorted(self):
        for preset in (LATENCY_BUCKETS, SIZE_BUCKETS, COUNT_BUCKETS):
            assert list(preset) == sorted(preset)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.histogram("x") is registry.histogram("x")

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"] == {"a": 2, "b": 1}
        assert snapshot["gauges"] == {"g": 7}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NullRegistry().enabled is False


class TestNullRegistry:
    def test_all_instruments_share_one_noop(self):
        registry = NullRegistry()
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        assert counter is registry.gauge("c")
        assert counter is registry.histogram("d")

    def test_noop_interface_is_complete(self):
        registry = NullRegistry()
        instrument = registry.counter("x")
        instrument.inc()
        instrument.inc(10)
        instrument.dec()
        instrument.set(5)
        instrument.observe(1.0)
        assert instrument.value == 0
        assert instrument.percentile(0.5) is None
        assert instrument.summary() == {}
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        registry.reset()
