"""The text dashboard: filtering, determinism, event rendering."""

from repro.obs.dashboard import render_dashboard
from repro.obs.events import WARN, EventLog
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("db.rows_scanned").inc(42)
    registry.counter_family("db.table.rows_scanned", ("table",)).labels("patients").inc(40)
    registry.gauge("server.rooms_open").set(1)
    registry.histogram("net.queue_delay_s", bounds=(0.01, 0.1)).observe(0.05)
    return registry.snapshot()


class TestRender:
    def test_sections_and_counts(self):
        out = render_dashboard(_snapshot(), title="t")
        assert out.startswith("== t ==")
        assert "counters (2)" in out
        assert 'db.table.rows_scanned{table="patients"}' in out
        assert "gauges (1)" in out
        assert "histograms (1)" in out
        assert "events (0 shown)" in out

    def test_include_prefix_filter(self):
        out = render_dashboard(_snapshot(), include=("db.",))
        assert "db.rows_scanned" in out
        assert "server.rooms_open" not in out
        assert "counters (2)" in out
        assert "gauges (0)" in out

    def test_exclude_prefix_filter(self):
        out = render_dashboard(_snapshot(), exclude=("db.", "net."))
        assert "db.rows_scanned" not in out
        assert "histograms (0)" in out
        assert "server.rooms_open" in out

    def test_events_render_from_objects_and_dicts(self):
        clock = FakeClock()
        log = EventLog(clock=clock)
        clock.now = 2.5
        event = log.emit("net.drop", severity=WARN, node="c1")
        as_object = render_dashboard({}, [event])
        as_dict = render_dashboard({}, [event.to_dict()])
        assert as_object == as_dict
        assert "[    2.500] WARN  net.drop  node=c1" in as_object

    def test_max_events_keeps_newest(self):
        log = EventLog(clock=FakeClock())
        for index in range(5):
            log.emit(f"e{index}")
        out = render_dashboard({}, log.events, max_events=2)
        assert "events (2 shown)" in out
        assert "e4" in out and "e3" in out and "e2" not in out

    def test_gauges_absent_section(self):
        snapshot = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "gauges_absent": {"server.sessions_connected": 3},
        }
        out = render_dashboard(snapshot)
        assert "server.sessions_connected" in out
        assert "(absent)" in out

    def test_byte_identical_for_identical_inputs(self):
        log = EventLog(clock=FakeClock())
        log.emit("server.room_join", room="room-1")
        first = render_dashboard(_snapshot(), log.events, title="run")
        second = render_dashboard(_snapshot(), log.events, title="run")
        assert first.encode() == second.encode()
