"""Interpolated histogram quantiles and their exporter threading.

``Histogram.quantile`` interpolates inside the bucket holding the
fractional rank, clamped to the observed min/max; ``percentile`` keeps
its pinned upper-edge semantics untouched. The estimates surface as
``q50``/``q99`` in text lines, ``quantile=...`` series in exposition
format, and ``p50``/``p99`` columns on the dashboard.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.dashboard import render_dashboard
from repro.obs.export import summary_quantile, to_exposition, to_lines
from repro.obs.metrics import Histogram, quantile_from_buckets

BOUNDS = (0.1, 1.0, 10.0)


def test_empty_histogram_returns_none():
    h = Histogram("t", BOUNDS)
    assert h.quantile(0.5) is None
    assert h.quantile(0.0) is None


def test_out_of_range_fraction_rejected():
    h = Histogram("t", BOUNDS)
    with pytest.raises(ValueError):
        h.quantile(-0.1)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_extremes_clamp_to_observed_min_and_max():
    h = Histogram("t", BOUNDS)
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    assert h.quantile(0.0) == pytest.approx(0.05)
    assert h.quantile(1.0) == pytest.approx(5.0)


def test_interpolates_within_a_bucket():
    h = Histogram("t", BOUNDS)
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    # rank 1.5 falls in the (0.1, 1.0] bucket: halfway through one
    # observation -> halfway between the bucket edges.
    assert h.quantile(0.5) == pytest.approx(0.55)


def test_single_bucket_uses_observed_min_as_lower_edge():
    h = Histogram("t", BOUNDS)
    for value in (0.02, 0.04, 0.06, 0.08):
        h.observe(value)  # all in the first bucket
    q50 = h.quantile(0.5)
    assert 0.02 <= q50 <= 0.08
    # Both edges clamp to observations: min 0.02 + 0.5 * (max 0.08 - 0.02).
    assert q50 == pytest.approx(0.05)


def test_bucket_edge_values_stay_in_their_bucket():
    h = Histogram("t", BOUNDS)
    for _ in range(4):
        h.observe(0.1)  # exactly on the first bound: bisect_left -> bucket 0
    assert h.quantile(0.5) == pytest.approx(0.1)
    assert h.quantile(1.0) == pytest.approx(0.1)


def test_overflow_bucket_clamps_to_observed_max():
    h = Histogram("t", BOUNDS)
    for value in (50.0, 80.0, 110.0):
        h.observe(value)  # all beyond the last bound
    assert h.quantile(0.99) <= 110.0
    assert h.quantile(1.0) == pytest.approx(110.0)
    # percentile() keeps reporting the observed max for overflow...
    assert h.percentile(0.99) == pytest.approx(110.0)


def test_percentile_semantics_unchanged():
    """Pinned: the exporters' p50/p90/p99 stay bucket-upper-edge."""
    h = Histogram("t", BOUNDS)
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    assert h.percentile(0.50) == pytest.approx(1.0)  # upper edge, not 0.55
    summary = h.summary()
    assert summary["p50"] == pytest.approx(1.0)


def test_quantile_from_buckets_handles_empty_state():
    assert quantile_from_buckets(BOUNDS, [0, 0, 0, 0], 0, None, None, 0.5) is None


def test_summary_quantile_recovers_from_summary_dict():
    h = Histogram("t", BOUNDS)
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    summary = h.summary()
    assert summary_quantile(summary, 0.5) == pytest.approx(h.quantile(0.5))
    assert summary_quantile({}, 0.5) is None


def make_registry():
    registry = MetricsRegistry()
    h = registry.histogram("request.latency_s", BOUNDS)
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    return registry


def test_to_lines_carries_interpolated_quantiles():
    line = next(
        l for l in to_lines(make_registry().snapshot()).splitlines()
        if "request.latency_s" in l
    )
    assert "q50=0.55" in line
    assert "q99=" in line
    assert "p50=1" in line  # the pinned upper-edge percentile stays too


def test_exposition_emits_quantile_series():
    text = to_exposition(make_registry().snapshot())
    assert 'request_latency_s{quantile="0.5"} 0.55' in text
    assert 'request_latency_s{quantile="0.99"}' in text


def test_dashboard_shows_p50_and_p99():
    board = render_dashboard(make_registry().snapshot())
    line = next(l for l in board.splitlines() if "request.latency_s" in l)
    assert "p50=" in line
    assert "p99=" in line
