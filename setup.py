"""Setup shim: enables ``pip install -e .`` in environments without the
``wheel`` package (legacy editable installs need a setup.py)."""

from setuptools import setup

setup()
