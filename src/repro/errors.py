"""Exception hierarchy for the ``repro`` package.

Every subsystem raises exceptions derived from :class:`ReproError`, so
callers can catch the library root without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class CPNetError(ReproError):
    """Base class for CP-network errors."""


class CyclicNetworkError(CPNetError):
    """The CP-network dependency graph contains a cycle."""


class UnknownVariableError(CPNetError, KeyError):
    """A variable name does not exist in the network."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable.
        return Exception.__str__(self)


class UnknownValueError(CPNetError, ValueError):
    """A value is not in the domain of its variable."""


class IncompleteTableError(CPNetError):
    """A CPT does not cover every assignment to the parent variables."""


class DocumentError(ReproError):
    """Base class for multimedia document errors."""


class DatabaseError(ReproError):
    """Base class for database engine errors."""


class SchemaError(DatabaseError):
    """Table or column definition is invalid, or data violates it."""


class DuplicateKeyError(DatabaseError):
    """A primary-key or unique-index constraint was violated."""


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. commit with none open)."""


class BlobError(DatabaseError):
    """Blob store corruption or unknown blob reference."""


class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class DeliveryFailed(NetworkError):
    """A reliable send exhausted its retry budget (or lost its endpoint).

    Carries enough context for the sender to react: re-route, degrade,
    or surface the loss to the user instead of livelocking on retries.
    """

    def __init__(
        self,
        sender: str,
        recipient: str,
        kind: str,
        seq: int,
        attempts: int,
        reason: str = "retry_budget_exhausted",
        payload: object = None,
    ) -> None:
        super().__init__(
            f"delivery failed {sender!r}->{recipient!r} kind={kind!r} "
            f"seq={seq} after {attempts} attempt(s): {reason}"
        )
        self.sender = sender
        self.recipient = recipient
        self.kind = kind
        self.seq = seq
        self.attempts = attempts
        self.reason = reason
        self.payload = payload


class ChaosError(ReproError):
    """Base class for fault-injection (repro.chaos) errors."""


class CrashInjected(ChaosError):
    """A failpoint simulated a crash at this code point (fail-stop)."""


class ServerError(ReproError):
    """Base class for interaction-server errors."""


class PermissionError_(ServerError):
    """The session lacks the permission required for the operation."""


class RoomError(ServerError):
    """Room membership or room state violation."""


class FrozenObjectError(ServerError):
    """The multimedia object is frozen by another participant."""


class ClusterError(ReproError):
    """Base class for cluster-tier errors (ring, gateway, replication)."""


class ClientError(ReproError):
    """Base class for client-module errors."""


class BufferFullError(ClientError):
    """The client buffer cannot admit the component even after eviction."""


class MediaError(ReproError):
    """Base class for media-processing errors."""


class CodecError(MediaError):
    """Encoding or decoding failed (corrupt stream, bad parameters)."""


class AudioError(MediaError):
    """Audio-processing failure (bad signal, untrained model, ...)."""


class PrefetchError(ReproError):
    """Base class for prefetch-module errors."""
