"""repro — reproduction of *Remote Conferencing with Multimedia Objects*
(Gudes, Domshlak, Orlov; EDBT 2002 Workshops, LNCS 2490).

A cooperative multimedia conferencing stack: a CP-network preference
engine driving document presentation, a multimedia document model, an
embedded object-relational database, a simulated network, an interaction
server with shared rooms, client simulators, preference-based
pre-fetching, and image/voice processing modules.

Subpackages
-----------
``repro.cpnet``
    CP-network preference engine (the paper's core contribution).
``repro.document``
    Hierarchical multimedia documents and presentation alternatives.
``repro.db``
    Embedded object-relational database with BLOB storage (Fig. 7 schema).
``repro.net``
    Discrete-event simulated network (bandwidth / latency).
``repro.server``
    Interaction server: rooms, sessions, change propagation.
``repro.client``
    Headless client modules with bounded buffers.
``repro.presentation``
    The presentation module binding documents, CP-nets and viewer events.
``repro.prefetch``
    Preference-based component pre-fetching (paper §4.4).
``repro.media``
    Image processing + multi-layer codec; CD-HMM voice processing.
``repro.workloads``
    Synthetic medical-record corpora and scripted consultation sessions.
"""

__version__ = "1.0.0"

from repro.cpnet import CPNet, CPNetBuilder, best_completion, optimal_outcome
from repro.client import ClientModule
from repro.db import Database, MultimediaObjectStore, connect
from repro.document import DocumentBuilder, MultimediaDocument, build_sample_medical_record
from repro.net import Link, SimulatedNetwork
from repro.presentation import PresentationEngine, install_bandwidth_tuning
from repro.server import InteractionServer

__all__ = [
    "CPNet",
    "CPNetBuilder",
    "ClientModule",
    "Database",
    "DocumentBuilder",
    "InteractionServer",
    "Link",
    "MultimediaDocument",
    "MultimediaObjectStore",
    "PresentationEngine",
    "SimulatedNetwork",
    "__version__",
    "best_completion",
    "build_sample_medical_record",
    "connect",
    "install_bandwidth_tuning",
    "optimal_outcome",
]
