"""Deterministic identifier generation.

The simulation layers (server, rooms, transfers) need ids that are unique
*and* reproducible run-to-run, so tests and benchmarks are deterministic.
We therefore use per-prefix counters rather than UUIDs.
"""

from __future__ import annotations

import itertools
import threading
from collections import defaultdict


class IdGenerator:
    """Thread-safe generator of ids like ``"room-1"``, ``"room-2"``, ...

    Each :class:`IdGenerator` keeps an independent counter per prefix, so a
    fresh generator always restarts numbering — which is what simulations
    want for reproducibility.
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = defaultdict(lambda: itertools.count(1))
        self._lock = threading.Lock()

    def next(self, prefix: str) -> str:
        """Return the next id for *prefix*."""
        with self._lock:
            return f"{prefix}-{next(self._counters[prefix])}"

    def reset(self) -> None:
        """Restart every counter at 1."""
        with self._lock:
            self._counters.clear()


_default_generator = IdGenerator()


def new_id(prefix: str) -> str:
    """Return a process-wide unique id with the given *prefix*."""
    return _default_generator.next(prefix)
