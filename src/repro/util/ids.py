"""Deterministic identifier generation.

The simulation layers (server, rooms, transfers) need ids that are unique
*and* reproducible run-to-run, so tests and benchmarks are deterministic.
We therefore use per-prefix counters rather than UUIDs.
"""

from __future__ import annotations

import itertools
import threading
from collections import defaultdict


class IdGenerator:
    """Thread-safe generator of ids like ``"room-1"``, ``"room-2"``, ...

    Each :class:`IdGenerator` keeps an independent counter per prefix, so a
    fresh generator always restarts numbering — which is what simulations
    want for reproducibility.

    With a *namespace* every id is prefixed ``"<namespace>:"`` — two
    generators with distinct namespaces can never mint the same id, which
    is what keeps room/session ids from different ``InteractionServer``
    instances collision-free at the cluster gateway.
    """

    def __init__(self, namespace: str | None = None) -> None:
        self.namespace = namespace
        self._counters: dict[str, itertools.count] = defaultdict(lambda: itertools.count(1))
        self._lock = threading.Lock()

    def next(self, prefix: str) -> str:
        """Return the next id for *prefix*."""
        with self._lock:
            number = next(self._counters[prefix])
        if self.namespace is not None:
            return f"{self.namespace}:{prefix}-{number}"
        return f"{prefix}-{number}"

    def reset(self) -> None:
        """Restart every counter at 1."""
        with self._lock:
            self._counters.clear()


_default_generator = IdGenerator()


def new_id(prefix: str) -> str:
    """Return a process-wide unique id with the given *prefix*."""
    return _default_generator.next(prefix)
