"""Small shared utilities: id generation, validation helpers, sizes."""

from repro.util.ids import IdGenerator, new_id
from repro.util.sizes import human_size
from repro.util.validation import check_identifier, check_positive, check_probability

__all__ = [
    "IdGenerator",
    "new_id",
    "human_size",
    "check_identifier",
    "check_positive",
    "check_probability",
]
