"""Small shared utilities: id generation, validation helpers, sizes,
failpoints."""

from repro.util.failpoints import (
    Failpoints,
    get_failpoints,
    set_failpoints,
    use_failpoints,
)
from repro.util.ids import IdGenerator, new_id
from repro.util.sizes import human_size
from repro.util.validation import check_identifier, check_positive, check_probability

__all__ = [
    "Failpoints",
    "IdGenerator",
    "new_id",
    "get_failpoints",
    "human_size",
    "check_identifier",
    "check_positive",
    "check_probability",
    "set_failpoints",
    "use_failpoints",
]
