"""Byte-size formatting helpers."""

from __future__ import annotations

_UNITS = ["B", "KB", "MB", "GB", "TB"]


def human_size(num_bytes: int) -> str:
    """Render a byte count like ``"1.5 MB"`` (powers of 1024).

    >>> human_size(0)
    '0 B'
    >>> human_size(1536)
    '1.5 KB'
    """
    if num_bytes < 0:
        raise ValueError(f"size must be >= 0, got {num_bytes}")
    size = float(num_bytes)
    for unit in _UNITS:
        if size < 1024 or unit == _UNITS[-1]:
            if unit == "B":
                return f"{int(size)} {unit}"
            return f"{size:.1f} {unit}"
        size /= 1024
    raise AssertionError("unreachable")
