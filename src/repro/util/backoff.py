"""Deterministic backoff jitter for the simulated cluster.

Every retry loop in the repro needs jitter (synchronized retries after a
failover arrive as a second stampede) but must stay deterministic: the
chaos convergence harness asserts byte-identical end states, and a
``random`` draw would entangle retry timing with every other consumer of
the module-level RNG. :func:`seeded_jitter` hashes the caller-supplied
identity parts instead — same inputs, same jitter, on every run and
every platform.
"""

from __future__ import annotations

import zlib


def seeded_jitter(*parts: object) -> float:
    """A deterministic pseudo-random float in ``[0, 1)`` from *parts*.

    Callers pass whatever identifies the retry (node id, message kind,
    attempt number); distinct identities decorrelate, identical ones
    repeat exactly. CRC-32 is plenty: this spreads retry timestamps, it
    does not need cryptographic quality.
    """
    key = ":".join(str(part) for part in parts)
    return zlib.crc32(key.encode("utf-8")) / 2**32
