"""Named failpoints: deterministic crash/fault injection at code points.

A component that participates in chaos testing calls
``failpoints.fire("subsystem.point", **context)`` at the places where a
real deployment could die mid-operation (a journal append, a replication
ship, an ack apply). In production-shaped runs nothing is armed and the
call is a dictionary miss. A test (or a :class:`~repro.chaos.FaultPlan`)
arms a point with :meth:`Failpoints.arm`; the next matching ``fire``
returns the armed *mode* string and the component acts it out — tearing
a write, crashing a shard — at exactly that point, every run.

Like the ``repro.obs`` defaults, there is one process-wide instance
(:func:`get_failpoints`); components resolve it at construction, and
tests isolate themselves with :func:`use_failpoints`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class _Arm:
    """One armed trigger at a failpoint."""

    mode: str
    after: int = 0           # skip this many matching hits first
    count: int = 1           # then trigger this many times
    match: dict[str, Any] = field(default_factory=dict)

    def matches(self, context: dict[str, Any]) -> bool:
        return all(context.get(key) == value for key, value in self.match.items())


class Failpoints:
    """A registry of armed failure triggers, keyed by point name."""

    def __init__(self) -> None:
        self._arms: dict[str, list[_Arm]] = {}
        #: every (point, mode) that actually triggered, in order.
        self.fired: list[tuple[str, str]] = []
        #: hit counts per point (armed or not) — lets tests assert that a
        #: crash point is actually on the exercised code path.
        self.hits: dict[str, int] = {}

    def arm(
        self,
        point: str,
        mode: str = "fire",
        after: int = 0,
        count: int = 1,
        match: dict[str, Any] | None = None,
    ) -> None:
        """Arm *point*: after *after* matching hits, trigger *count* times.

        *match* restricts the trigger to calls whose context includes the
        given key/value pairs (e.g. ``match={"shard": "shard-2"}``).
        """
        if after < 0 or count < 1:
            raise ValueError(f"need after >= 0 and count >= 1, got {after}/{count}")
        self._arms.setdefault(point, []).append(
            _Arm(mode=mode, after=after, count=count, match=dict(match or {}))
        )

    def fire(self, point: str, **context: Any) -> str | None:
        """Report reaching *point*; returns the armed mode when triggered."""
        self.hits[point] = self.hits.get(point, 0) + 1
        arms = self._arms.get(point)
        if not arms:
            return None
        for arm in arms:
            if not arm.matches(context):
                continue
            if arm.after > 0:
                arm.after -= 1
                continue
            arm.count -= 1
            if arm.count <= 0:
                arms.remove(arm)
                if not arms:
                    del self._arms[point]
            self.fired.append((point, arm.mode))
            return arm.mode
        return None

    def armed(self, point: str) -> bool:
        return bool(self._arms.get(point))

    def clear(self) -> None:
        self._arms.clear()
        self.fired.clear()
        self.hits.clear()


_failpoints = Failpoints()


def get_failpoints() -> Failpoints:
    """The process-default failpoint registry."""
    return _failpoints


def set_failpoints(failpoints: Failpoints) -> Failpoints:
    """Replace the default registry; returns it."""
    global _failpoints
    _failpoints = failpoints
    return failpoints


@contextmanager
def use_failpoints(failpoints: Failpoints | None = None) -> Iterator[Failpoints]:
    """Temporarily install *failpoints* (default: a fresh registry)."""
    if failpoints is None:
        failpoints = Failpoints()
    previous = get_failpoints()
    set_failpoints(failpoints)
    try:
        yield failpoints
    finally:
        set_failpoints(previous)
