"""Input-validation helpers used across subsystems."""

from __future__ import annotations

import re

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


def check_identifier(name: str, what: str = "identifier") -> str:
    """Validate that *name* is a usable symbolic name and return it.

    Names are used as dict keys, protocol fields and file-name fragments,
    so we restrict them to a safe alphabet.
    """
    if not isinstance(name, str):
        raise TypeError(f"{what} must be a string, got {type(name).__name__}")
    if not _IDENTIFIER_RE.match(name):
        raise ValueError(f"invalid {what}: {name!r}")
    return name


def check_positive(value: float, what: str = "value") -> float:
    """Validate that *value* is a finite positive number and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{what} must be a number, got {type(value).__name__}")
    if not value > 0 or value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"{what} must be finite and > 0, got {value!r}")
    return value


def check_probability(value: float, what: str = "probability") -> float:
    """Validate that *value* lies in [0, 1] and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{what} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{what} must be in [0, 1], got {value!r}")
    return float(value)
