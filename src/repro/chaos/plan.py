"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the complete description of one chaos run: the
per-frame fault rates (drop, duplicate, reorder, delay, corrupt), the
partition windows and link flaps on the time axis, and the single RNG —
``random.Random(seed)`` — every probabilistic decision is drawn from.
Same seed, same workload, same faults: a chaos failure is a test case
you can re-run, not a flake you chase.

The plan is pure policy. The enforcement hook is
:class:`repro.chaos.network.ChaosNetwork`, which consults
:meth:`FaultPlan.decide` for every frame it is about to put on a wire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ChaosError
from repro.util.validation import check_probability

#: Fault action names (the labels on the ``chaos.injected`` counter).
DROP = "drop"
DUPLICATE = "duplicate"
REORDER = "reorder"
DELAY = "delay"
CORRUPT = "corrupt"
PARTITION_DROP = "partition_drop"
FLAP_DROP = "flap_drop"

#: Kinds chaos never touches unless explicitly told to. Heartbeats are
#: exempt by default: lossy-link failure *detection* is a different
#: experiment from lossy-link *delivery* — a spurious promotion makes
#: "byte-identical to the control" the wrong assertion. Partitions and
#: flaps still cut heartbeats (a partition severs everything).
DEFAULT_PROTECTED_KINDS = ("heartbeat",)


@dataclass(frozen=True)
class PartitionWindow:
    """All traffic between node sets *a* and *b* is cut in [start, end)."""

    a: frozenset[str]
    b: frozenset[str]
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ChaosError(f"empty partition window [{self.start}, {self.end})")
        if self.a & self.b:
            raise ChaosError(f"partition sides overlap: {sorted(self.a & self.b)}")

    def cuts(self, sender: str, recipient: str, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return (sender in self.a and recipient in self.b) or (
            sender in self.b and recipient in self.a
        )


@dataclass(frozen=True)
class LinkFlap:
    """One node's links go dark (both directions) in [start, end)."""

    node: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ChaosError(f"empty flap window [{self.start}, {self.end})")

    def cuts(self, sender: str, recipient: str, now: float) -> bool:
        return self.start <= now < self.end and self.node in (sender, recipient)


@dataclass
class FaultPlan:
    """Seeded fault policy for one chaos run.

    Rates are independent per-frame probabilities, applied in priority
    order drop > corrupt > duplicate > delay > reorder (at most one
    fault per transmission, so a 30%-loss experiment means 30% loss).
    ``kinds`` (when set) restricts probabilistic faults to those message
    kinds; ``protected_kinds`` always exempts its kinds.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    reorder_max_s: float = 0.05
    delay_max_s: float = 1.0
    kinds: tuple[str, ...] | None = None
    protected_kinds: tuple[str, ...] = DEFAULT_PROTECTED_KINDS
    partitions: list[PartitionWindow] = field(default_factory=list)
    flaps: list[LinkFlap] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "reorder_rate", "delay_rate", "corrupt_rate"):
            check_probability(getattr(self, name), name)
        if self.reorder_max_s <= 0 or self.delay_max_s <= 0:
            raise ChaosError("reorder_max_s and delay_max_s must be > 0")
        self._rng = random.Random(self.seed)

    # ----- schedule construction --------------------------------------------------

    def partition(
        self, a: Iterable[str], b: Iterable[str], start: float, end: float
    ) -> PartitionWindow:
        """Add (and return) a partition window between node sets."""
        window = PartitionWindow(frozenset(a), frozenset(b), start, end)
        self.partitions.append(window)
        return window

    def flap(self, node: str, start: float, end: float) -> LinkFlap:
        """Add (and return) a link-flap window for one node."""
        flap = LinkFlap(node, start, end)
        self.flaps.append(flap)
        return flap

    # ----- per-frame decisions -----------------------------------------------------

    def severed(self, sender: str, recipient: str, now: float) -> str | None:
        """Partition/flap verdict for a frame, or None when the path is up."""
        for window in self.partitions:
            if window.cuts(sender, recipient, now):
                return PARTITION_DROP
        for flap in self.flaps:
            if flap.cuts(sender, recipient, now):
                return FLAP_DROP
        return None

    def decide(self, kind: str) -> tuple[str, float] | None:
        """Probabilistic fault for one transmission: (action, extra_delay).

        Returns None for clean transmission. Deterministic in the
        sequence of calls — all randomness comes from the plan's seed.
        """
        if kind in self.protected_kinds:
            return None
        if self.kinds is not None and kind not in self.kinds:
            return None
        roll = self._rng.random
        if self.drop_rate and roll() < self.drop_rate:
            return (DROP, 0.0)
        if self.corrupt_rate and roll() < self.corrupt_rate:
            return (CORRUPT, 0.0)
        if self.dup_rate and roll() < self.dup_rate:
            return (DUPLICATE, 0.0)
        if self.delay_rate and roll() < self.delay_rate:
            return (DELAY, roll() * self.delay_max_s)
        if self.reorder_rate and roll() < self.reorder_rate:
            return (REORDER, roll() * self.reorder_max_s)
        return None

    @property
    def horizon(self) -> float:
        """Latest scheduled window edge (0.0 with no windows)."""
        edges = [w.end for w in self.partitions] + [f.end for f in self.flaps]
        return max(edges, default=0.0)
