"""Deterministic chaos: seeded fault injection for the simulated stack.

The subsystem has three moving parts:

- :class:`FaultPlan` — a declarative, seeded description of one chaos
  run: per-frame fault rates (drop / duplicate / reorder / delay /
  corrupt), partition windows, link flaps. One ``random.Random(seed)``
  drives every probabilistic decision, so a failing run replays exactly.
- :class:`ChaosNetwork` — a :class:`~repro.net.network.SimulatedNetwork`
  that consults the plan for every frame it puts on a wire (including
  retransmissions and acks). Injected faults are counted in the
  ``chaos.injected`` metric family and logged to the flight recorder.
- :mod:`repro.util.failpoints` (re-exported here) — named crash points
  inside the durability and replication paths (``journal.append``,
  ``cluster.replicate``, ``cluster.ack``) that simulate torn writes and
  mid-replication process crashes.

The counterpart — what makes chaos survivable — is the reliable
transport in :mod:`repro.net.reliable` and the convergence harness in
:mod:`repro.chaos.convergence`, which asserts that a conference run
under N chaos seeds ends byte-identical to its fault-free control.
"""

from repro.chaos.network import CORRUPTED_PAYLOAD, ChaosNetwork
from repro.chaos.plan import (
    CORRUPT,
    DEFAULT_PROTECTED_KINDS,
    DELAY,
    DROP,
    DUPLICATE,
    FLAP_DROP,
    FaultPlan,
    LinkFlap,
    PARTITION_DROP,
    PartitionWindow,
    REORDER,
)
from repro.util.failpoints import (
    Failpoints,
    get_failpoints,
    set_failpoints,
    use_failpoints,
)

__all__ = [
    "CORRUPT",
    "CORRUPTED_PAYLOAD",
    "ChaosNetwork",
    "DEFAULT_PROTECTED_KINDS",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "FLAP_DROP",
    "FaultPlan",
    "Failpoints",
    "LinkFlap",
    "PARTITION_DROP",
    "PartitionWindow",
    "REORDER",
    "get_failpoints",
    "set_failpoints",
    "use_failpoints",
]
