"""Convergence harness: chaos runs must end where the control run ends.

The strongest claim the reliability layer makes is not "fewer errors" —
it is *exactly-once, in-order delivery*, and the observable consequence
is that a conference driven under loss, duplication, reordering, a
partition window and a primary crash finishes with every client
displaying **byte-for-byte** the state of the fault-free control run.

:func:`run_convergence` runs the control once and the chaos scenario
under N seeds, each in its own isolated metrics registry/event log, and
compares. ``python -m repro.chaos.convergence --seeds 1 2 3 4 5`` is the
CI entry point: exit status 1 on any divergence.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable

from repro import obs
from repro.chaos.plan import FaultPlan
from repro.db.engine import Database
from repro.db.orm import MultimediaObjectStore
from repro.workloads.chaos import run_chaos_conference

#: Fault rates of the acceptance scenario: lossy enough that repair
#: mechanisms demonstrably fire, survivable within the retry budget.
DEFAULT_RATES = {
    "drop_rate": 0.06,
    "dup_rate": 0.05,
    "reorder_rate": 0.08,
    "corrupt_rate": 0.02,
}

DEFAULT_SEEDS = (1, 2, 3, 4, 5)


def _one_run(
    root: str,
    name: str,
    plan: FaultPlan | None,
    tracing: bool = False,
    runner: Any = run_chaos_conference,
    interpreted: bool = False,
    **kwargs: Any,
) -> dict[str, Any]:
    """One isolated conference run (fresh obs context, fresh database)."""
    from contextlib import nullcontext

    from repro.cpnet.compiled import interpreted_mode

    registry = obs.MetricsRegistry()
    with obs.use_registry(registry):
        log = obs.EventLog()
        with obs.use_event_log(log):
            tracer = (
                obs.use_dtrace(obs.DeliveryTracer(sample_every=1))
                if tracing
                else nullcontext()
            )
            engine_mode = interpreted_mode() if interpreted else nullcontext()
            db = Database(f"{root}/{name}")
            try:
                with tracer, engine_mode:
                    store = MultimediaObjectStore(db)
                    result = runner(store, plan=plan, **kwargs)
            finally:
                db.close()
            counters = registry.snapshot()["counters"]
            result["counters"] = {
                key: value
                for key, value in counters.items()
                if key.startswith(("net.", "chaos.", "gateway.route", "cpnet."))
            }
            result.pop("harness", None)
            return result


def run_convergence(
    root: str,
    seeds: Iterable[int] = DEFAULT_SEEDS,
    quick: bool = False,
    crash: bool = True,
    partition: bool = True,
    interest_churn: bool = False,
    tracing: bool = False,
    gateway_crash: bool = False,
    megaconf: bool = False,
    cpnet_compiled: bool = False,
) -> dict[str, Any]:
    """Control + one chaos run per seed; report agreement.

    *root* is a scratch directory for the runs' databases. ``quick``
    trims the workload (fewer events) for CI smoke jobs. The returned
    report has ``converged`` per seed plus the overall ``ok`` verdict:
    every seed byte-identical to control, zero client-visible errors,
    zero delivery failures, and — to prove chaos was actually on — at
    least one injected fault and one retransmission per seed.
    ``interest_churn`` runs the scenario with CP-net interest management
    on and subscriptions churning across the fault windows (see
    :func:`~repro.workloads.chaos.run_chaos_conference`).
    ``tracing`` turns full-sampling delivery tracing on for the seeded
    chaos runs only — the control stays untraced, so convergence then
    also proves trace trailers are invisible to the data plane.
    ``gateway_crash`` routes the whole scenario through the sharded
    gateway tier and fail-stops one gateway mid-conference — in both
    the control and the seeded runs, so the replay/op_seq machinery must
    reconverge byte-identically under faults too.
    ``megaconf`` swaps the three-phase conference for the mega-conference
    keynote flash crowd (:func:`~repro.workloads.megaconf
    .run_megaconf_convergence`): admission control is on, JOIN deferral
    engages during the keynote wave, and the fault window (plus the
    optional gateway crash) lands mid-keynote — overload shedding and
    chaos repair must *compose* without breaking byte-identity.
    ``cpnet_compiled`` makes the *control* run on the interpreted CP-net
    engine while the seeded chaos runs keep compiled evaluation and the
    shared completion cache on — so convergence then also proves the
    compiled hot path (with caching, across a shard crash) is
    byte-identical to the reference sweeps; each seed must additionally
    register completion-cache hits to prove sharing actually happened.
    """
    if megaconf:
        from repro.workloads.megaconf import run_megaconf_convergence

        runner: Any = run_megaconf_convergence
        kwargs: dict[str, Any] = dict(quick=quick, gateway_crash=gateway_crash)
        seed_kwargs: dict[str, Any] = {}
    else:
        runner = run_chaos_conference
        events_per_room = 3 if quick else 6
        kwargs = dict(
            events_per_room=events_per_room,
            crash_owner_of="case-0" if crash else None,
            interest_churn=interest_churn,
            gateway_crash=gateway_crash,
        )
        seed_kwargs = dict(partition=partition)
    control = _one_run(
        root, "control", None, runner=runner, interpreted=cpnet_compiled, **kwargs
    )
    report: dict[str, Any] = {
        "control": {
            "displayed": control["displayed"],
            "errors": control["errors"],
            "sim_seconds": control["sim_seconds"],
        },
        "seeds": {},
    }
    ok = not control["errors"]
    for seed in seeds:
        plan = FaultPlan(seed=seed, **DEFAULT_RATES)
        result = _one_run(
            root, f"seed-{seed}", plan,
            tracing=tracing, runner=runner, **seed_kwargs, **kwargs,
        )
        retries = sum(
            value
            for key, value in result["counters"].items()
            if key.startswith("net.retries")
        )
        injected = sum(result["injected"].values())
        converged = result["displayed"] == control["displayed"]
        cache_hits = int(
            result["counters"].get("cpnet.completion_cache.hits", 0)
        )
        seed_ok = (
            converged
            and not result["errors"]
            and not result["delivery_failures"]
            and injected > 0
            and retries > 0
            # Compiled mode must prove the cache actually shared work,
            # not just that the compiled sweep happened to agree.
            and (not cpnet_compiled or cache_hits > 0)
        )
        ok = ok and seed_ok
        report["seeds"][seed] = {
            "ok": seed_ok,
            "converged": converged,
            "completion_cache_hits": cache_hits,
            "errors": result["errors"],
            "delivery_failures": result["delivery_failures"],
            "injected": result["injected"],
            "retries": retries,
            "failovers": len(result["failovers"]),
            "gateway_failovers": len(result.get("gateway_failovers", [])),
            "expected_delivery_failures": len(
                result.get("expected_delivery_failures", [])
            ),
            "victim": result["victim"],
            "gateway_victim": result.get("gateway_victim"),
            "sim_seconds": result["sim_seconds"],
        }
    report["ok"] = ok
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos convergence suite: N seeded runs vs fault-free control."
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS))
    parser.add_argument("--quick", action="store_true", help="trimmed CI workload")
    parser.add_argument("--no-crash", action="store_true")
    parser.add_argument("--no-partition", action="store_true")
    parser.add_argument(
        "--interest-churn",
        action="store_true",
        help="churn subscriptions across the fault windows (repro.interest)",
    )
    parser.add_argument(
        "--tracing",
        action="store_true",
        help="trace the chaos runs at full sampling (control stays untraced)",
    )
    parser.add_argument(
        "--gateway-crash",
        action="store_true",
        help="run through the gateway tier and kill one gateway mid-conference",
    )
    parser.add_argument(
        "--megaconf",
        action="store_true",
        help="keynote flash crowd with admission control instead of the "
        "three-phase conference (faults land mid-keynote)",
    )
    parser.add_argument(
        "--cpnet-compiled",
        action="store_true",
        help="interpreted control vs compiled+cached chaos runs: proves the "
        "compiled CP-net hot path is byte-identical under faults",
    )
    parser.add_argument("--root", default=None, help="scratch dir (default: mkdtemp)")
    args = parser.parse_args(argv)
    root = args.root
    if root is None:
        import tempfile

        root = tempfile.mkdtemp(prefix="chaos-convergence-")
    report = run_convergence(
        root,
        seeds=args.seeds,
        quick=args.quick,
        crash=not args.no_crash,
        partition=not args.no_partition,
        interest_churn=args.interest_churn,
        tracing=args.tracing,
        gateway_crash=args.gateway_crash,
        megaconf=args.megaconf,
        cpnet_compiled=args.cpnet_compiled,
    )
    for seed, entry in report["seeds"].items():
        status = "ok" if entry["ok"] else "DIVERGED"
        print(
            f"seed {seed}: {status}  injected={sum(entry['injected'].values())} "
            f"retries={entry['retries']} failovers={entry['failovers']} "
            f"gateway_failovers={entry['gateway_failovers']} "
            f"errors={len(entry['errors'])} "
            f"delivery_failures={len(entry['delivery_failures'])}"
        )
    if not report["ok"]:
        print(json.dumps(report, indent=2, default=str), file=sys.stderr)
        return 1
    print(f"all {len(report['seeds'])} seeds converged to the control run")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
