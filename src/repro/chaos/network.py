"""A :class:`SimulatedNetwork` that attacks its own traffic.

``ChaosNetwork`` overrides the single transmission hook
(:meth:`SimulatedNetwork._transmit`) — the choke point every first send,
duplicate and retransmission passes through — and consults its
:class:`~repro.chaos.plan.FaultPlan` there. Faults therefore compose
correctly with the reliable transport: a retransmission can itself be
dropped, a duplicated frame is deduplicated downstream, a corrupted
frame fails its checksum at delivery.

Every injected fault increments the ``chaos.injected`` counter family
(labelled by fault) and leaves a flight-recorder event, so a chaos run
explains itself in the same telemetry as a healthy one.
"""

from __future__ import annotations

from dataclasses import replace

from repro.chaos.plan import (
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    FaultPlan,
    FLAP_DROP,
    LinkFlap,
    PARTITION_DROP,
    PartitionWindow,
    REORDER,
)
from repro.net.message import Message
from repro.net.network import SimulatedNetwork
from repro.net.reliable import RetryPolicy
from repro.net.simclock import SimClock

#: Payload substituted into a corrupted frame. With the reliable layer
#: on, the stale checksum quarantines it; without, the receiver gets
#: garbage — which is the point of the experiment.
CORRUPTED_PAYLOAD = {"__chaos_corrupted__": True}


class ChaosNetwork(SimulatedNetwork):
    """The simulated star network, plus a deterministic adversary."""

    def __init__(
        self,
        clock: SimClock | None = None,
        reliability: RetryPolicy | bool | None = None,
        plan: FaultPlan | None = None,
    ) -> None:
        super().__init__(clock, reliability=reliability)
        self.plan = plan
        self._f_injected = self._obs.counter_family("chaos.injected", ("fault",))
        self._announced: set[PartitionWindow | LinkFlap] = set()

    # ----- fault injection -------------------------------------------------------

    def _transmit(self, message: Message) -> None:
        plan = self.plan
        if plan is None:
            super()._transmit(message)
            return
        cut = plan.severed(message.sender, message.recipient, self.clock.now)
        if cut is not None:
            self._announce_windows()
            self._inject(cut, message)
            return
        decision = plan.decide(message.kind)
        if decision is None:
            super()._transmit(message)
            return
        action, extra_delay = decision
        self._inject(action, message)
        if action == DROP:
            return
        if action == CORRUPT:
            super()._transmit(replace(message, payload=CORRUPTED_PAYLOAD))
            return
        if action == DUPLICATE:
            super()._transmit(message)
            super()._transmit(message)
            return
        # DELAY / REORDER: defer the transmission; frames sent in the
        # meantime overtake it on the link. The deferred copy goes out
        # clean (one fault per transmission keeps the rates honest).
        assert action in (DELAY, REORDER)
        self.clock.schedule(
            extra_delay, lambda: SimulatedNetwork._transmit(self, message)
        )

    def _inject(self, fault: str, message: Message) -> None:
        self._f_injected.labels(fault).inc()
        self._events.emit(
            "chaos.injected",
            severity="DEBUG",
            at=self.clock.now,
            fault=fault,
            sender=message.sender,
            recipient=message.recipient,
            kind=message.kind,
            seq=message.seq,
        )

    def _announce_windows(self) -> None:
        """Emit open/close flight-recorder events for active windows."""
        now = self.clock.now
        for window in self.plan.partitions:
            if window in self._announced or not (window.start <= now < window.end):
                continue
            self._announced.add(window)
            self._events.emit(
                "chaos.partition_open",
                severity="WARN",
                at=now,
                a=sorted(window.a),
                b=sorted(window.b),
                until=window.end,
            )
            self.clock.schedule_at(
                window.end,
                lambda w=window: self._events.emit(
                    "chaos.partition_close",
                    severity="INFO",
                    at=self.clock.now,
                    a=sorted(w.a),
                    b=sorted(w.b),
                ),
            )
        for flap in self.plan.flaps:
            if flap in self._announced or not (flap.start <= now < flap.end):
                continue
            self._announced.add(flap)
            self._events.emit(
                "chaos.link_flap_open",
                severity="WARN", at=now, node=flap.node, until=flap.end,
            )
            self.clock.schedule_at(
                flap.end,
                lambda f=flap: self._events.emit(
                    "chaos.link_flap_close", severity="INFO",
                    at=self.clock.now, node=f.node,
                ),
            )

    # ----- introspection ----------------------------------------------------------

    def injected_counts(self) -> dict[str, int]:
        """Faults injected so far, by kind of fault."""
        children = getattr(self._f_injected, "children", None) or {}
        return {labels[0]: counter.value for labels, counter in children.items()}


#: Fault label for a severed path, re-exported for test readability.
SEVERED_FAULTS = (PARTITION_DROP, FLAP_DROP)
