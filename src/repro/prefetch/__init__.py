"""Preference-based pre-fetching (paper §4.4, second option; ref. [12]).

"We download components most likely to be requested by the user, using
the user's buffer as a cache. Thus, the model for CP-net based multimedia
systems is extended by a preference-based optimized pre-fetching of the
document components."

* :mod:`repro.prefetch.predictor` — ranks presentation payloads by how
  likely the viewer is to request them next, straight off the CP-net;
* :mod:`repro.prefetch.simulator` — replays a viewer session against a
  bounded buffer and a bandwidth-limited link under a pluggable prefetch
  policy (none / random / CP-net), reporting hit rates and waiting time.
"""

from repro.prefetch.predictor import CPNetPredictor, PrefetchCandidate
from repro.prefetch.simulator import (
    POLICIES,
    POLICY_CPNET,
    POLICY_NONE,
    POLICY_RANDOM,
    PrefetchReport,
    PrefetchSimulator,
)

__all__ = [
    "CPNetPredictor",
    "POLICIES",
    "POLICY_CPNET",
    "POLICY_NONE",
    "POLICY_RANDOM",
    "PrefetchCandidate",
    "PrefetchReport",
    "PrefetchSimulator",
]
