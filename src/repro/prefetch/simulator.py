"""Session replay under a prefetch policy.

Models the §4.4 situation directly: a viewer interacts with a document
over a bandwidth-limited link, holding a bounded buffer. Each viewer
choice triggers a reconfiguration; payloads newly on screen but absent
from the buffer must be transferred *while the viewer waits* (that wait
is the response time the paper worries about). Between choices there is
think time, during which the policy may prefetch payloads into the
buffer for free — bounded by what the link can carry in that time.

Policies: ``none`` (pure demand caching), ``random`` (prefetch random
payloads) and ``cpnet`` (prefetch the predictor's top candidates).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import PrefetchError
from repro.obs import LATENCY_BUCKETS, get_registry
from repro.client.buffer import ClientBuffer, entry_key
from repro.document.component import PrimitiveMultimediaComponent
from repro.document.document import MultimediaDocument
from repro.prefetch.predictor import CPNetPredictor
from repro.presentation.tuning import (
    BANDWIDTH_HIGH,
    BANDWIDTH_LOW,
    BANDWIDTH_MEDIUM,
    TUNING_VARIABLE,
)

POLICY_NONE = "none"
POLICY_RANDOM = "random"
POLICY_CPNET = "cpnet"
POLICIES = (POLICY_NONE, POLICY_RANDOM, POLICY_CPNET)


@dataclass
class PrefetchReport:
    """Outcome of one replayed session."""

    policy: str
    events: int = 0
    demand_requests: int = 0
    demand_hits: int = 0
    demand_bytes: int = 0
    prefetch_bytes: int = 0
    wasted_prefetch_bytes: int = 0
    total_wait_s: float = 0.0
    waits: list[float] = field(default_factory=list)
    retries: int = 0
    #: (event index, level) each time the session stepped itself down.
    degradations: list[tuple[int, str]] = field(default_factory=list)
    tuning_level: str | None = None

    @property
    def hit_rate(self) -> float:
        return self.demand_hits / self.demand_requests if self.demand_requests else 0.0

    @property
    def mean_wait_s(self) -> float:
        return self.total_wait_s / len(self.waits) if self.waits else 0.0

    @property
    def max_wait_s(self) -> float:
        return max(self.waits) if self.waits else 0.0


class PrefetchSimulator:
    """Replay one viewer's choice sequence under a prefetch policy."""

    def __init__(
        self,
        document: MultimediaDocument,
        policy: str = POLICY_CPNET,
        buffer_bytes: int = 1_000_000,
        bandwidth_bps: float = 2_000_000,
        think_time_s: float = 3.0,
        latency_s: float = 0.02,
        seed: int = 0,
        loss_rate: float = 0.0,
        degrade_on_loss: bool = False,
        degrade_wait_s: float = 2.0,
    ) -> None:
        if policy not in POLICIES:
            raise PrefetchError(f"unknown policy {policy!r}; know {POLICIES}")
        if not 0.0 <= loss_rate < 1.0:
            raise PrefetchError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.document = document
        self.policy = policy
        self.buffer = ClientBuffer(buffer_bytes, owner=f"prefetch-{policy}")
        self.bandwidth_bps = bandwidth_bps
        self.think_time_s = think_time_s
        self.latency_s = latency_s
        self.loss_rate = loss_rate
        self.degrade_on_loss = degrade_on_loss
        self.degrade_wait_s = degrade_wait_s
        self._rng = random.Random(seed)
        self._predictor = CPNetPredictor(document)
        self._prefetched_unused: set[str] = set()
        self._displayed: dict[str, str] = {}
        self._retries = 0
        self._tuning_level: str | None = None

    # ----- mechanics ---------------------------------------------------------------

    def _transfer_time(self, size_bytes: int) -> float:
        base = self.latency_s + (size_bytes * 8) / self.bandwidth_bps
        if self.loss_rate <= 0.0:
            return base
        # Lossy link: each attempt independently fails with loss_rate and
        # is retransmitted whole (ARQ), inflating the viewer-visible wait.
        attempts = 1
        while attempts < 8 and self._rng.random() < self.loss_rate:
            attempts += 1
        self._retries += attempts - 1
        return base * attempts

    def _required_payloads(self, outcome: Mapping[str, str]) -> list[tuple[str, str, int]]:
        """(component, value, size) of every on-screen payload."""
        required = []
        for path, node in self.document.components().items():
            if not isinstance(node, PrimitiveMultimediaComponent):
                continue
            value = outcome.get(path)
            if value is None:
                continue
            size = node.presentation_size(value)
            if size > 0:
                required.append((path, value, size))
        return required

    def _serve(self, outcome: Mapping[str, str], report: PrefetchReport) -> float:
        """Demand-fetch newly needed on-screen payloads; returns the wait.

        A payload already rendered on screen (same component, same value
        as before) stays rendered — only *changed* components generate
        demand requests. The cache question is whether the new form is
        already in the buffer.
        """
        self.buffer.unpin_all()
        wait = 0.0
        for path, value, size in self._required_payloads(outcome):
            key = entry_key(path, value)
            if self._displayed.get(path) == value:
                self.buffer.pin(key)  # keep display-resident entries safe
                continue
            report.demand_requests += 1
            if self.buffer.lookup(key) is not None:
                report.demand_hits += 1
                self._prefetched_unused.discard(key)
            else:
                wait += self._transfer_time(size)
                report.demand_bytes += size
                self.buffer.admit(key, size, priority=1.0)
            self.buffer.pin(key)
        self._displayed = {
            path: value for path, value, _ in self._required_payloads(outcome)
        }
        return wait

    def _prefetch(
        self,
        outcome: Mapping[str, str],
        evidence: Mapping[str, str],
        recent_choices: list[str],
    ) -> int:
        """Fill idle think time with policy-chosen payloads; returns bytes."""
        budget = int(self.bandwidth_bps * self.think_time_s / 8)
        if self.policy == POLICY_NONE or budget <= 0:
            return 0
        if self.policy == POLICY_CPNET:
            candidates = self._predictor.candidates(
                outcome, evidence, recent_choices=recent_choices
            )
        else:  # random
            pool = [
                (path, value, node.presentation_size(value))
                for path, node in self.document.components().items()
                if isinstance(node, PrimitiveMultimediaComponent)
                for value in node.domain
                if node.presentation_size(value) > 0 and outcome.get(path) != value
            ]
            self._rng.shuffle(pool)
            candidates = [
                type("C", (), {"component": p, "value": v, "size_bytes": s, "score": 0.0})()
                for p, v, s in pool
            ]
        fetched = 0
        for candidate in candidates:
            key = entry_key(candidate.component, candidate.value)
            if key in self.buffer:
                continue
            if fetched + candidate.size_bytes > budget:
                continue
            # Prefetched entries rank strictly below demand-cached ones
            # (priority < 1.0): a speculative payload must never evict
            # something the viewer actually displayed.
            score = getattr(candidate, "score", 0.0)
            priority = 0.5 * score / (1.0 + score)
            if self.buffer.admit(
                key, candidate.size_bytes, priority=priority, evict_below=priority
            ):
                fetched += candidate.size_bytes
                self._prefetched_unused.add(key)
        return fetched

    # ----- replay -------------------------------------------------------------------------

    def run(self, events: Iterable[tuple[str, str]]) -> PrefetchReport:
        """Replay a session: initial display, then one reconfig per event."""
        report = PrefetchReport(policy=self.policy)
        evidence: dict[str, str] = {}
        recent: list[str] = []
        outcome = self.document.default_presentation()
        report.waits.append(self._serve(outcome, report))
        report.total_wait_s = sum(report.waits)
        report.prefetch_bytes += self._prefetch(outcome, evidence, recent)
        for component, value in events:
            report.events += 1
            evidence[component] = value
            recent.append(component)
            outcome = self.document.reconfig_presentation(evidence)
            wait = self._serve(outcome, report)
            report.waits.append(wait)
            report.total_wait_s += wait
            self._maybe_degrade(wait, evidence, report)
            report.prefetch_bytes += self._prefetch(outcome, evidence, recent)
        report.wasted_prefetch_bytes = sum(
            self.buffer.lookup(key).size
            for key in list(self._prefetched_unused)
            if key in self.buffer
        )
        # Undo the statistics distortion of the waste audit's lookups.
        report_hits = report.demand_hits
        self.buffer.hits = report_hits
        report.retries = self._retries
        report.tuning_level = self._tuning_level
        self._record_metrics(report)
        return report

    def _maybe_degrade(
        self, wait: float, evidence: dict[str, str], report: PrefetchReport
    ) -> None:
        """§4.4 graceful degradation: waits over budget step the tuning down.

        Only active when the document carries the ``tuning.bandwidth``
        variable (see :func:`repro.presentation.install_bandwidth_tuning`).
        The stepped-down evidence re-partitions every heavy component's
        preference order toward affordable presentations, so subsequent
        reconfigurations stop demanding payloads the link cannot carry.
        """
        if not self.degrade_on_loss or wait <= self.degrade_wait_s:
            return
        if TUNING_VARIABLE not in self.document.network:
            return
        current = self._tuning_level or BANDWIDTH_HIGH
        if current == BANDWIDTH_HIGH:
            next_level = BANDWIDTH_MEDIUM
        elif current == BANDWIDTH_MEDIUM:
            next_level = BANDWIDTH_LOW
        else:
            return  # already at the floor
        self._tuning_level = next_level
        evidence[TUNING_VARIABLE] = next_level
        report.degradations.append((report.events, next_level))

    def _record_metrics(self, report: PrefetchReport) -> None:
        """Publish one replayed session's totals to the registry."""
        obs = get_registry()
        obs.counter("prefetch.sessions").inc()
        obs.counter("prefetch.events").inc(report.events)
        obs.counter("prefetch.demand_requests").inc(report.demand_requests)
        obs.counter("prefetch.demand_hits").inc(report.demand_hits)
        obs.counter("prefetch.demand_misses").inc(
            report.demand_requests - report.demand_hits
        )
        obs.counter("prefetch.demand_bytes").inc(report.demand_bytes)
        obs.counter("prefetch.prefetch_bytes").inc(report.prefetch_bytes)
        obs.counter("prefetch.wasted_prefetch_bytes").inc(report.wasted_prefetch_bytes)
        obs.counter("prefetch.retries").inc(report.retries)
        obs.counter("prefetch.degradations").inc(len(report.degradations))
        wait_histogram = obs.histogram("prefetch.wait_s", LATENCY_BUCKETS)
        for wait in report.waits:
            wait_histogram.observe(wait)
