"""Predicting likely components from the CP-network.

The predictor reasons the way reference [12] suggests: the viewer's next
explicit choice is most likely a presentation form the author considers
*good* in the current context, and granting that choice drags correlated
components with it (via :func:`best_completion`). Concretely, for every
primitive component we walk the author's conditional order given the
current outcome — alternatives high in that order get geometrically more
weight — and we add the payloads of the components that would *change as
a consequence* of each hypothetical choice, at a discount.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cpnet.compiled import compile_cpnet, compiled_enabled
from repro.cpnet.reasoning import best_completion
from repro.document.component import PrimitiveMultimediaComponent
from repro.document.document import MultimediaDocument


@dataclass(frozen=True)
class PrefetchCandidate:
    """One payload worth prefetching."""

    component: str
    value: str
    score: float
    size_bytes: int

    @property
    def key(self) -> str:
        return f"{self.component}={self.value}"


class CPNetPredictor:
    """Likelihood ranking of presentation payloads.

    Parameters
    ----------
    document:
        The open document (its network is consulted live, so §4.2 updates
        are automatically reflected).
    rank_decay:
        Weight ratio between consecutive ranks in an author order.
    consequence_discount:
        Weight multiplier for payloads pulled in as side effects of a
        hypothetical choice rather than by the choice itself.
    """

    def __init__(
        self,
        document: MultimediaDocument,
        rank_decay: float = 0.5,
        consequence_discount: float = 0.4,
    ) -> None:
        if not 0 < rank_decay < 1:
            raise ValueError(f"rank_decay must be in (0,1), got {rank_decay}")
        if not 0 <= consequence_discount <= 1:
            raise ValueError(
                f"consequence_discount must be in [0,1], got {consequence_discount}"
            )
        self.document = document
        self.rank_decay = rank_decay
        self.consequence_discount = consequence_discount

    def candidates(
        self,
        outcome: Mapping[str, str],
        evidence: Mapping[str, str] | None = None,
        recent_choices: list[str] | None = None,
        locality_boost: float = 4.0,
        max_candidates: int | None = None,
    ) -> list[PrefetchCandidate]:
        """Payloads the viewer is likely to need next, best first.

        *outcome* is the currently displayed configuration; *evidence*
        the standing explicit choices (kept fixed in hypotheticals);
        *recent_choices* the components the viewer touched last —
        candidates in the same top-level section get ``locality_boost``,
        modelling attention locality within the document hierarchy.
        """
        evidence = dict(evidence or {})
        hot_sections = {
            path.split(".")[0] for path in (recent_choices or [])[-2:]
        }
        network = self.document.network
        # The hypothetical sweep below runs one best_completion per
        # (component, alternative) pair; compiling the net once up front
        # turns every sweep into flat-table lookups. A whole predictor
        # run reuses one compilation (the regression test pins this).
        evaluator = compile_cpnet(network) if compiled_enabled() else None
        scores: dict[tuple[str, str], float] = {}
        components = self.document.components()
        for path, node in components.items():
            if not isinstance(node, PrimitiveMultimediaComponent):
                continue
            if evaluator is not None:
                order = evaluator.order_for(path, outcome)
            else:
                order = network.cpt(path).order_for(outcome)
            weight = 1.0
            for value in order:
                if value == outcome.get(path):
                    continue  # already on screen
                if node.presentation_size(value) > 0:
                    key = (path, value)
                    scores[key] = scores.get(key, 0.0) + weight
                # Consequences of hypothetically choosing this value.
                hypothetical_evidence = {**evidence, path: value}
                if evaluator is not None:
                    hypothetical = evaluator.best_completion(hypothetical_evidence)
                else:
                    hypothetical = best_completion(network, hypothetical_evidence)
                for other_path, other_value in hypothetical.items():
                    if other_path == path or other_path not in components:
                        continue
                    if other_value == outcome.get(other_path):
                        continue
                    other_node = components[other_path]
                    if not isinstance(other_node, PrimitiveMultimediaComponent):
                        continue
                    if other_node.presentation_size(other_value) > 0:
                        key = (other_path, other_value)
                        scores[key] = scores.get(key, 0.0) + (
                            weight * self.consequence_discount
                        )
                weight *= self.rank_decay
        if hot_sections:
            scores = {
                (path, value): (
                    score * locality_boost
                    if path.split(".")[0] in hot_sections
                    else score
                )
                for (path, value), score in scores.items()
            }
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        if max_candidates is not None:
            ranked = ranked[:max_candidates]
        return [
            PrefetchCandidate(
                component=path,
                value=value,
                score=score,
                size_bytes=components[path].presentation_size(value),
            )
            for (path, value), score in ranked
        ]
