"""Similar-case retrieval (the paper's Section 1 scenario).

"While discussing the case, some of them would like to consider similar
cases either from the same database or from other medical databases" —
and the related-work section points at fuzzy multimedia queries (Fagin
[14]) and image/spatial indexing (Samet [16]). This package provides
those retrieval capabilities over the embedded database:

* :mod:`repro.retrieval.features` — compact image descriptors
  (intensity histogram + wavelet sub-band energy signature);
* :mod:`repro.retrieval.image_index` — query-by-example over stored
  images, descriptors persisted next to the Fig. 7 tables;
* :mod:`repro.retrieval.fuzzy` — graded predicates with t-norm scoring
  and Fagin-style top-k evaluation over relational rows;
* :mod:`repro.retrieval.spatial` — a point quadtree over stored image
  annotations ("marks on the images ... for future search").
"""

from repro.retrieval.features import descriptor_distance, image_descriptor
from repro.retrieval.fuzzy import (
    FuzzyQuery,
    about,
    at_least,
    at_most,
    fuzzy_and,
    fuzzy_or,
)
from repro.retrieval.image_index import SimilarImageIndex
from repro.retrieval.spatial import AnnotationSpatialIndex, Quadtree

__all__ = [
    "AnnotationSpatialIndex",
    "FuzzyQuery",
    "Quadtree",
    "SimilarImageIndex",
    "about",
    "at_least",
    "at_most",
    "descriptor_distance",
    "fuzzy_and",
    "fuzzy_or",
    "image_descriptor",
]
