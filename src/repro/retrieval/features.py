"""Compact image descriptors for query-by-example.

The descriptor concatenates two complementary views of an image:

* a normalized 32-bin intensity histogram (what tissue densities are
  present — CT windows, X-ray exposure);
* the normalized energy of each wavelet sub-band over a 3-level Haar
  decomposition (where the detail lives — texture and structure scale).

Both halves are scale-invariant in image size, so phantoms of different
resolutions compare sensibly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MediaError
from repro.media.image.image import Image
from repro.media.image.wavelet import haar_forward

HISTOGRAM_BINS = 32
WAVELET_LEVELS = 3
#: 3 detail bands per level + 1 final approximation band.
DESCRIPTOR_DIM = HISTOGRAM_BINS + 3 * WAVELET_LEVELS + 1


def _padded_to_pow2(image: Image, levels: int) -> np.ndarray:
    """Edge-pad so both sides divide by 2**levels (descriptor-only copy)."""
    factor = 2 ** levels
    height = ((image.height + factor - 1) // factor) * factor
    width = ((image.width + factor - 1) // factor) * factor
    if (height, width) == image.shape:
        return image.pixels
    return np.pad(
        image.pixels,
        ((0, height - image.height), (0, width - image.width)),
        mode="edge",
    )


def image_descriptor(image: Image) -> np.ndarray:
    """The (DESCRIPTOR_DIM,) feature vector of an image."""
    histogram, _ = np.histogram(image.pixels, bins=HISTOGRAM_BINS, range=(0, 256))
    histogram = histogram.astype(np.float64)
    histogram /= max(histogram.sum(), 1.0)

    pixels = _padded_to_pow2(image, WAVELET_LEVELS)
    coeffs = haar_forward(pixels, levels=WAVELET_LEVELS)
    height, width = pixels.shape
    energies: list[float] = []
    for level in range(WAVELET_LEVELS):
        h = height >> level
        w = width >> level
        half_h, half_w = h // 2, w // 2
        # The three detail quadrants of this level (LH, HL, HH).
        energies.append(float(np.mean(coeffs[:half_h, half_w:w] ** 2)))
        energies.append(float(np.mean(coeffs[half_h:h, :half_w] ** 2)))
        energies.append(float(np.mean(coeffs[half_h:h, half_w:w] ** 2)))
    final_h = height >> WAVELET_LEVELS
    final_w = width >> WAVELET_LEVELS
    energies.append(float(np.mean(coeffs[:final_h, :final_w] ** 2)))
    bands = np.log1p(np.array(energies))
    bands /= max(np.linalg.norm(bands), 1e-9)
    return np.concatenate([histogram, bands])


def descriptor_distance(first: np.ndarray, second: np.ndarray) -> float:
    """L2 distance between two descriptors (0 = identical signature)."""
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise MediaError(
            f"descriptor shape mismatch: {first.shape} vs {second.shape}"
        )
    return float(np.linalg.norm(first - second))


def descriptor_similarity(first: np.ndarray, second: np.ndarray) -> float:
    """Distance mapped to (0, 1]: 1 = identical."""
    return 1.0 / (1.0 + descriptor_distance(first, second))
