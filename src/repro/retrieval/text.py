"""Full-text article search (the paper's §1 literature lookup).

"Some of them may like to support their views with articles from
databases on the web, whether from known sources or from dynamically
searched sites." This module is the "known sources" half: an inverted
index with TF-IDF ranking over an article corpus stored in the embedded
database, supporting ranked free-text queries, required/excluded terms
and exact phrases.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.errors import DatabaseError
from repro.db.engine import Database
from repro.db.schema import Column, TableSchema
from repro.db.types import INTEGER, TEXT

ARTICLES_TABLE = "ARTICLES_TABLE"

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words too common to carry signal.
STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or that the this to was with".split()
)


def articles_schema() -> TableSchema:
    return TableSchema(
        name=ARTICLES_TABLE,
        columns=(
            Column("ID", INTEGER, primary_key=True, autoincrement=True),
            Column("FLD_TITLE", TEXT, nullable=False),
            Column("FLD_SOURCE", TEXT),
            Column("FLD_BODY", TEXT, nullable=False),
        ),
    )


def tokenize(text: str) -> list[str]:
    """Lowercase alphanumeric tokens, stopwords removed."""
    return [t for t in _TOKEN_RE.findall(text.lower()) if t not in STOPWORDS]


@dataclass(frozen=True)
class ArticleHit:
    """One ranked search result."""

    article_id: int
    title: str
    source: str | None
    score: float
    snippet: str


@dataclass(frozen=True)
class ParsedQuery:
    """A parsed free-text query."""

    terms: tuple[str, ...]      # ranked (optional) terms
    required: tuple[str, ...]   # +term — must appear
    excluded: tuple[str, ...]   # -term — must not appear
    phrases: tuple[tuple[str, ...], ...]  # "exact phrase"


def parse_query(query: str) -> ParsedQuery:
    """Parse ``ct lesion +contrast -pediatric "follow up"`` style queries."""
    phrases = tuple(
        tuple(tokenize(match)) for match in re.findall(r'"([^"]+)"', query)
    )
    rest = re.sub(r'"[^"]*"', " ", query)
    terms: list[str] = []
    required: list[str] = []
    excluded: list[str] = []
    for raw in rest.split():
        if raw.startswith("+"):
            required.extend(tokenize(raw[1:]))
        elif raw.startswith("-"):
            excluded.extend(tokenize(raw[1:]))
        else:
            terms.extend(tokenize(raw))
    # Phrase words also rank.
    for phrase in phrases:
        terms.extend(phrase)
    if not (terms or required or phrases):
        raise DatabaseError(f"query {query!r} has no searchable terms")
    return ParsedQuery(
        terms=tuple(terms),
        required=tuple(required),
        excluded=tuple(excluded),
        phrases=tuple(p for p in phrases if p),
    )


class ArticleSearchEngine:
    """Inverted index + TF-IDF ranking over the article table."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.db.create_table(articles_schema(), if_not_exists=True)
        self._postings: dict[str, dict[int, int]] = defaultdict(dict)
        self._doc_tokens: dict[int, list[str]] = {}
        self._doc_lengths: dict[int, int] = {}
        for row in self.db.select(ARTICLES_TABLE):
            self._index_row(row)

    # ----- corpus management ---------------------------------------------------

    def add_article(self, title: str, body: str, source: str | None = None) -> int:
        """Store and index one article; returns its id."""
        row = self.db.insert(
            ARTICLES_TABLE,
            {"FLD_TITLE": title, "FLD_SOURCE": source, "FLD_BODY": body},
        )
        self._index_row(row)
        return row["ID"]

    def remove_article(self, article_id: int) -> None:
        self.db.delete(ARTICLES_TABLE, article_id)
        tokens = self._doc_tokens.pop(article_id, [])
        self._doc_lengths.pop(article_id, None)
        for token in set(tokens):
            self._postings[token].pop(article_id, None)
            if not self._postings[token]:
                del self._postings[token]

    def _index_row(self, row: dict) -> None:
        article_id = row["ID"]
        tokens = tokenize(f"{row['FLD_TITLE']} {row['FLD_BODY']}")
        self._doc_tokens[article_id] = tokens
        self._doc_lengths[article_id] = len(tokens)
        for token, count in Counter(tokens).items():
            self._postings[token][article_id] = count

    def __len__(self) -> int:
        return len(self._doc_tokens)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    # ----- search ----------------------------------------------------------------

    def _idf(self, term: str) -> float:
        containing = len(self._postings.get(term, {}))
        if containing == 0:
            return 0.0
        return math.log(1.0 + len(self._doc_tokens) / containing)

    def _has_phrase(self, article_id: int, phrase: tuple[str, ...]) -> bool:
        tokens = self._doc_tokens.get(article_id, [])
        span = len(phrase)
        return any(
            tuple(tokens[i : i + span]) == phrase
            for i in range(len(tokens) - span + 1)
        )

    def search(self, query: str, k: int = 5) -> list[ArticleHit]:
        """Ranked results for a free-text query."""
        if k < 1:
            raise DatabaseError(f"k must be >= 1, got {k}")
        parsed = parse_query(query)
        # Candidates: any doc containing a ranked or required term.
        candidates: set[int] = set()
        for term in parsed.terms + parsed.required:
            candidates |= set(self._postings.get(term, {}))
        # Hard constraints.
        for term in parsed.required:
            candidates &= set(self._postings.get(term, {}))
        for term in parsed.excluded:
            candidates -= set(self._postings.get(term, {}))
        for phrase in parsed.phrases:
            candidates = {c for c in candidates if self._has_phrase(c, phrase)}
        # TF-IDF scoring with length normalization.
        scored: list[tuple[float, int]] = []
        for article_id in candidates:
            length = max(self._doc_lengths[article_id], 1)
            score = sum(
                (self._postings.get(term, {}).get(article_id, 0) / length)
                * self._idf(term)
                for term in parsed.terms
            )
            scored.append((score, article_id))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        hits = []
        for score, article_id in scored[:k]:
            row = self.db.get(ARTICLES_TABLE, article_id)
            hits.append(
                ArticleHit(
                    article_id=article_id,
                    title=row["FLD_TITLE"],
                    source=row["FLD_SOURCE"],
                    score=score,
                    snippet=self._snippet(row["FLD_BODY"], parsed.terms),
                )
            )
        return hits

    @staticmethod
    def _snippet(body: str, terms: tuple[str, ...], width: int = 80) -> str:
        lowered = body.lower()
        position = min(
            (lowered.find(term) for term in terms if term in lowered),
            default=0,
        )
        start = max(position - width // 4, 0)
        clip = body[start : start + width].strip()
        prefix = "..." if start > 0 else ""
        suffix = "..." if start + width < len(body) else ""
        return f"{prefix}{clip}{suffix}"
