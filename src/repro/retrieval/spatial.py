"""Spatial indexing of image annotations (Samet [16] territory).

Consultation marks carry positions ("marks on the images ... may be
stored in the file ... for future search and reference"). The point
quadtree here answers the queries a review tool asks: which marks fall in
this zoomed region, and which mark is closest to this click?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import DatabaseError


@dataclass(frozen=True)
class SpatialHit:
    """One indexed point with its payload."""

    x: float
    y: float
    payload: Any


class _Node:
    __slots__ = ("x0", "y0", "x1", "y1", "points", "children")

    CAPACITY = 8

    def __init__(self, x0: float, y0: float, x1: float, y1: float) -> None:
        self.x0, self.y0, self.x1, self.y1 = x0, y0, x1, y1
        self.points: list[SpatialHit] = []
        self.children: list["_Node"] | None = None

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def intersects(self, x0: float, y0: float, x1: float, y1: float) -> bool:
        return not (x1 < self.x0 or x0 > self.x1 or y1 < self.y0 or y0 > self.y1)

    def _split(self) -> None:
        mx = (self.x0 + self.x1) / 2
        my = (self.y0 + self.y1) / 2
        self.children = [
            _Node(self.x0, self.y0, mx, my),
            _Node(mx, self.y0, self.x1, my),
            _Node(self.x0, my, mx, self.y1),
            _Node(mx, my, self.x1, self.y1),
        ]
        for hit in self.points:
            self._child_for(hit.x, hit.y).insert(hit)
        self.points = []

    def _child_for(self, x: float, y: float) -> "_Node":
        assert self.children is not None
        mx = (self.x0 + self.x1) / 2
        my = (self.y0 + self.y1) / 2
        index = (1 if x > mx else 0) + (2 if y > my else 0)
        return self.children[index]

    def insert(self, hit: SpatialHit) -> None:
        if self.children is not None:
            self._child_for(hit.x, hit.y).insert(hit)
            return
        self.points.append(hit)
        degenerate = (self.x1 - self.x0) < 1e-9 or (self.y1 - self.y0) < 1e-9
        if len(self.points) > self.CAPACITY and not degenerate:
            self._split()

    def query_rect(
        self, x0: float, y0: float, x1: float, y1: float, out: list[SpatialHit]
    ) -> None:
        if not self.intersects(x0, y0, x1, y1):
            return
        if self.children is not None:
            for child in self.children:
                child.query_rect(x0, y0, x1, y1, out)
            return
        for hit in self.points:
            if x0 <= hit.x <= x1 and y0 <= hit.y <= y1:
                out.append(hit)

    def nearest(self, x: float, y: float, best: tuple[float, SpatialHit | None]) -> tuple[float, SpatialHit | None]:
        # Prune: minimal possible distance from (x, y) to this cell.
        dx = max(self.x0 - x, 0.0, x - self.x1)
        dy = max(self.y0 - y, 0.0, y - self.y1)
        if dx * dx + dy * dy >= best[0]:
            return best
        if self.children is not None:
            # Visit children nearest-first for better pruning.
            ordered = sorted(
                self.children,
                key=lambda c: max(c.x0 - x, 0.0, x - c.x1) ** 2
                + max(c.y0 - y, 0.0, y - c.y1) ** 2,
            )
            for child in ordered:
                best = child.nearest(x, y, best)
            return best
        for hit in self.points:
            distance = (hit.x - x) ** 2 + (hit.y - y) ** 2
            if distance < best[0]:
                best = (distance, hit)
        return best


class Quadtree:
    """A bounded point quadtree."""

    def __init__(self, width: float, height: float) -> None:
        if width <= 0 or height <= 0:
            raise DatabaseError(f"bounds must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self._root = _Node(0.0, 0.0, width, height)
        self._count = 0

    def insert(self, x: float, y: float, payload: Any = None) -> SpatialHit:
        if not self._root.contains(x, y):
            raise DatabaseError(
                f"point ({x}, {y}) outside bounds {self.width}x{self.height}"
            )
        hit = SpatialHit(x=x, y=y, payload=payload)
        self._root.insert(hit)
        self._count += 1
        return hit

    def __len__(self) -> int:
        return self._count

    def query_rect(self, x0: float, y0: float, x1: float, y1: float) -> list[SpatialHit]:
        """All points within the axis-aligned rectangle (inclusive)."""
        if x1 < x0 or y1 < y0:
            raise DatabaseError(f"empty rectangle ({x0},{y0})-({x1},{y1})")
        out: list[SpatialHit] = []
        self._root.query_rect(x0, y0, x1, y1, out)
        out.sort(key=lambda h: (h.y, h.x))
        return out

    def nearest(self, x: float, y: float) -> SpatialHit | None:
        """The indexed point closest to (x, y); None when empty."""
        if self._count == 0:
            return None
        _, hit = self._root.nearest(x, y, (float("inf"), None))
        return hit


class AnnotationSpatialIndex:
    """Quadtree over a document's stored annotations.

    Built from :meth:`MultimediaObjectStore.annotations_for`; annotations
    without ``x``/``y`` (e.g. whole-component notes) are skipped.
    """

    def __init__(self, width: float, height: float) -> None:
        self._tree = Quadtree(width, height)
        self.skipped = 0

    @classmethod
    def from_store(
        cls, store, doc_id: str, component: str, width: float, height: float
    ) -> "AnnotationSpatialIndex":
        index = cls(width, height)
        for row in store.annotations_for(doc_id, component=component):
            data = row["FLD_DATA"]
            index.add(data, viewer=row["FLD_VIEWER"])
        return index

    def add(self, annotation: dict[str, Any], viewer: str | None = None) -> bool:
        x = annotation.get("x")
        y = annotation.get("y")
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            self.skipped += 1
            return False
        payload = dict(annotation)
        if viewer is not None:
            payload["viewer"] = viewer
        self._tree.insert(float(x), float(y), payload)
        return True

    def __len__(self) -> int:
        return len(self._tree)

    def marks_in_region(self, x0: float, y0: float, x1: float, y1: float) -> list[dict[str, Any]]:
        """Annotations inside a zoomed region."""
        return [hit.payload for hit in self._tree.query_rect(x0, y0, x1, y1)]

    def mark_near(self, x: float, y: float) -> dict[str, Any] | None:
        """The annotation nearest a click."""
        hit = self._tree.nearest(x, y)
        return hit.payload if hit is not None else None
