"""Fuzzy (graded) queries over relational rows — Fagin-style top-k.

Reference [14] of the paper (Fagin, "Fuzzy Queries in Multimedia Database
Systems") scores rows by *graded* predicates in [0, 1] combined with
t-norms, returning the best-k instead of a boolean filter — exactly what
"similar cases" needs: *age about 60*, *lesion diameter at least 8 mm*,
*ward preferably ICU*.

Graded predicates here are small callables built by :func:`about`,
:func:`at_least`, :func:`at_most` and :func:`equals`; combine with
:func:`fuzzy_and` (min or product t-norm) / :func:`fuzzy_or`; evaluate
with :class:`FuzzyQuery`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import DatabaseError

Row = Mapping[str, Any]
Grade = Callable[[Row], float]


def _numeric(row: Row, column: str) -> float | None:
    value = row.get(column)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def about(column: str, target: float, tolerance: float) -> Grade:
    """Triangular membership: 1 at *target*, 0 beyond *tolerance* away."""
    if tolerance <= 0:
        raise DatabaseError(f"tolerance must be > 0, got {tolerance}")

    def grade(row: Row) -> float:
        value = _numeric(row, column)
        if value is None:
            return 0.0
        return max(0.0, 1.0 - abs(value - target) / tolerance)

    return grade


def at_least(column: str, threshold: float, ramp: float) -> Grade:
    """0 below ``threshold - ramp``, 1 at/above *threshold*, linear between."""
    if ramp <= 0:
        raise DatabaseError(f"ramp must be > 0, got {ramp}")

    def grade(row: Row) -> float:
        value = _numeric(row, column)
        if value is None:
            return 0.0
        return min(1.0, max(0.0, (value - (threshold - ramp)) / ramp))

    return grade


def at_most(column: str, threshold: float, ramp: float) -> Grade:
    """1 at/below *threshold*, 0 above ``threshold + ramp``."""
    if ramp <= 0:
        raise DatabaseError(f"ramp must be > 0, got {ramp}")

    def grade(row: Row) -> float:
        value = _numeric(row, column)
        if value is None:
            return 0.0
        return min(1.0, max(0.0, ((threshold + ramp) - value) / ramp))

    return grade


def equals(column: str, value: Any, weight_if_match: float = 1.0, weight_otherwise: float = 0.0) -> Grade:
    """Crisp equality embedded in the graded algebra."""

    def grade(row: Row) -> float:
        return weight_if_match if row.get(column) == value else weight_otherwise

    return grade


def graded(function: Callable[[Row], float]) -> Grade:
    """Wrap an arbitrary scoring function, clamping to [0, 1]."""

    def grade(row: Row) -> float:
        return min(1.0, max(0.0, float(function(row))))

    return grade


def fuzzy_and(*grades: Grade, t_norm: str = "min") -> Grade:
    """Conjunction under the chosen t-norm (``min`` or ``product``)."""
    if not grades:
        raise DatabaseError("fuzzy_and needs at least one predicate")
    if t_norm not in ("min", "product"):
        raise DatabaseError(f"unknown t-norm {t_norm!r}; know min/product")

    def grade(row: Row) -> float:
        values = [g(row) for g in grades]
        if t_norm == "min":
            return min(values)
        result = 1.0
        for value in values:
            result *= value
        return result

    return grade


def fuzzy_or(*grades: Grade) -> Grade:
    """Disjunction under the max t-conorm."""
    if not grades:
        raise DatabaseError("fuzzy_or needs at least one predicate")

    def grade(row: Row) -> float:
        return max(g(row) for g in grades)

    return grade


@dataclass(frozen=True)
class ScoredRow:
    """One top-k result."""

    score: float
    row: dict[str, Any]


class FuzzyQuery:
    """Top-k evaluation of one graded predicate over rows."""

    def __init__(self, grade: Grade) -> None:
        self.grade = grade

    def top_k(self, rows: Iterable[Row], k: int = 5, floor: float = 0.0) -> list[ScoredRow]:
        """The k best rows by grade (ties broken stably), above *floor*."""
        if k < 1:
            raise DatabaseError(f"k must be >= 1, got {k}")
        heap: list[tuple[float, int, dict]] = []
        for index, row in enumerate(rows):
            score = self.grade(row)
            if score <= floor:
                continue
            entry = (score, -index, dict(row))
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        ranked = sorted(heap, key=lambda e: (-e[0], -e[1]))
        return [ScoredRow(score=score, row=row) for score, _, row in ranked]
