"""Query-by-example over stored images.

Descriptors live in their own table next to the Fig. 7 object tables (the
same "add new types as the system evolves" mechanism), so the index
survives restarts and can be rebuilt from stored payloads at any time.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import DatabaseError
from repro.obs import LATENCY_BUCKETS, get_registry
from repro.db.engine import Database
from repro.db.orm import MultimediaObjectStore, StoredObject
from repro.db.query import Eq
from repro.db.schema import Column, TableSchema
from repro.db.types import INTEGER, JSONB, TEXT
from repro.media.image.image import Image
from repro.retrieval.features import descriptor_similarity, image_descriptor

IMAGE_FEATURES_TABLE = "IMAGE_FEATURES_TABLE"


def image_features_schema() -> TableSchema:
    return TableSchema(
        name=IMAGE_FEATURES_TABLE,
        columns=(
            Column("ID", INTEGER, primary_key=True, autoincrement=True),
            Column("FLD_MEDIAREF", TEXT, nullable=False),
            Column("FLD_LABEL", TEXT),
            Column("FLD_VECTOR", JSONB, nullable=False),
        ),
    )


@dataclass(frozen=True)
class SimilarImage:
    """One query hit."""

    media_ref: str
    label: str | None
    similarity: float  # (0, 1], 1 = identical signature


class SimilarImageIndex:
    """Content-based index over the image object table."""

    def __init__(self, store: MultimediaObjectStore) -> None:
        self.store = store
        self.db: Database = store.db
        self.db.create_table(image_features_schema(), if_not_exists=True)
        existing = self.db.table(IMAGE_FEATURES_TABLE)
        if existing.index_on("FLD_MEDIAREF") is None:
            self.db.create_index(IMAGE_FEATURES_TABLE, "FLD_MEDIAREF", kind="hash")
        obs = get_registry()
        self._m_indexed = obs.counter("retrieval.images_indexed")
        self._m_queries = obs.counter("retrieval.queries")
        self._m_scored = obs.counter("retrieval.candidates_scored")
        self._m_latency = obs.histogram("retrieval.query_latency_s", LATENCY_BUCKETS)

    # ----- registration ---------------------------------------------------------

    def add(self, handle: StoredObject | str, label: str | None = None) -> np.ndarray:
        """Compute and persist the descriptor of a stored image."""
        media_ref = handle.media_ref if isinstance(handle, StoredObject) else handle
        _, payload = self.store.fetch(media_ref)
        descriptor = image_descriptor(Image.from_bytes(payload))
        existing = self.db.select(IMAGE_FEATURES_TABLE, Eq("FLD_MEDIAREF", media_ref))
        row = {
            "FLD_MEDIAREF": media_ref,
            "FLD_LABEL": label,
            "FLD_VECTOR": descriptor.tolist(),
        }
        if existing:
            self.db.update(IMAGE_FEATURES_TABLE, existing[0]["ID"], row)
        else:
            self.db.insert(IMAGE_FEATURES_TABLE, row)
        self._m_indexed.inc()
        return descriptor

    def add_image(
        self, image: Image, label: str | None = None, quality: int = 0
    ) -> StoredObject:
        """Store a new image and index it in one step."""
        handle = self.store.store_image(image.to_bytes(), quality=quality)
        self.add(handle, label=label)
        return handle

    def remove(self, media_ref: str) -> None:
        rows = self.db.select(IMAGE_FEATURES_TABLE, Eq("FLD_MEDIAREF", media_ref))
        if not rows:
            raise DatabaseError(f"no indexed image {media_ref!r}")
        for row in rows:
            self.db.delete(IMAGE_FEATURES_TABLE, row["ID"])

    def rebuild(self) -> int:
        """Re-derive every descriptor from the stored payloads."""
        rows = self.db.select(IMAGE_FEATURES_TABLE)
        for row in rows:
            self.add(row["FLD_MEDIAREF"], label=row["FLD_LABEL"])
        return len(rows)

    def __len__(self) -> int:
        return self.db.count(IMAGE_FEATURES_TABLE)

    # ----- querying ------------------------------------------------------------------

    def query(
        self,
        example: Image,
        k: int = 5,
        exclude: str | None = None,
    ) -> list[SimilarImage]:
        """The *k* most similar stored images to an example image."""
        if k < 1:
            raise DatabaseError(f"k must be >= 1, got {k}")
        started = perf_counter()
        probe = image_descriptor(example)
        hits = []
        for row in self.db.select(IMAGE_FEATURES_TABLE):
            if exclude is not None and row["FLD_MEDIAREF"] == exclude:
                continue
            similarity = descriptor_similarity(probe, np.array(row["FLD_VECTOR"]))
            hits.append(
                SimilarImage(
                    media_ref=row["FLD_MEDIAREF"],
                    label=row["FLD_LABEL"],
                    similarity=similarity,
                )
            )
        hits.sort(key=lambda hit: (-hit.similarity, hit.media_ref))
        self._m_queries.inc()
        self._m_scored.inc(len(hits))
        self._m_latency.observe(perf_counter() - started)
        return hits[:k]

    def query_by_ref(self, media_ref: str, k: int = 5) -> list[SimilarImage]:
        """Similar cases to an already-stored image (itself excluded)."""
        _, payload = self.store.fetch(media_ref)
        return self.query(Image.from_bytes(payload), k=k, exclude=media_ref)
