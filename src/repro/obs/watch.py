"""Slow-op watchdog: per-span-name latency budgets.

A :class:`Watchdog` holds a budget (in clock seconds) per span name.
Hooked to a tracer via ``tracer.add_listener(watchdog.on_span)`` — or
called directly with ``check(name, duration)`` — it emits one WARN
event (``watch.slow_op``) into the flight recorder per violation and
counts it in the ``watch.violations`` counter family, labelled by
operation. Under a simulated clock every firing is deterministic:
budgets compare against span durations the simulation computed, so the
same run produces the same slow-op log byte for byte.

The watchdog is the reproduction's slow-query and slow-propagation log:
set budgets like ``watchdog.set_budget("db.select", 0.050)`` and
``watchdog.set_budget("server.propagate", 0.100)`` and read violations
off the event log.
"""

from __future__ import annotations

from typing import Any, Mapping


class Watchdog:
    """Emits WARN events when named operations exceed their budget.

    Parameters
    ----------
    event_log:
        Flight recorder to emit ``watch.slow_op`` WARN events into.
        When ``None``, the package-default event log is resolved lazily
        at first violation (so module import order does not matter).
    registry:
        Metrics registry for the ``watch.violations`` counter family
        (labelled by ``op``). Defaults to the package default, resolved
        lazily.
    """

    def __init__(self, event_log: Any = None, registry: Any = None) -> None:
        self._event_log = event_log
        self._registry = registry
        self._budgets: dict[str, float] = {}
        self._violations_family: Any = None

    # ----- configuration ---------------------------------------------------------

    def set_budget(self, name: str, seconds: float) -> None:
        """Operations named *name* slower than *seconds* are violations."""
        if seconds <= 0:
            raise ValueError(f"budget for {name!r} must be positive, got {seconds!r}")
        self._budgets[name] = float(seconds)

    def clear_budget(self, name: str) -> None:
        self._budgets.pop(name, None)

    @property
    def budgets(self) -> Mapping[str, float]:
        return dict(self._budgets)

    # ----- checking --------------------------------------------------------------

    def check(self, name: str, duration: float) -> bool:
        """Report one finished operation; returns True when it violated.

        Exactly one WARN event and one counter increment happen per
        violating call — callers that route every span through
        ``on_span`` therefore get exactly one firing per slow span.
        """
        budget = self._budgets.get(name)
        if budget is None or duration <= budget:
            return False
        self._resolve()
        self._violations_family.labels(name).inc()
        self._event_log.emit(
            "watch.slow_op",
            severity="WARN",
            op=name,
            duration_s=round(duration, 9),
            budget_s=budget,
        )
        return True

    def on_span(self, span: Any) -> None:
        """Tracer-listener form: ``tracer.add_listener(watchdog.on_span)``."""
        self.check(span.name, span.duration)

    def _resolve(self) -> None:
        """Bind the default event log / registry on first violation."""
        if self._event_log is None:
            from repro import obs

            self._event_log = obs.get_event_log()
        if self._violations_family is None:
            registry = self._registry
            if registry is None:
                from repro import obs

                registry = self._registry = obs.get_registry()
            self._violations_family = registry.counter_family("watch.violations", ("op",))

    def __repr__(self) -> str:
        return f"Watchdog({len(self._budgets)} budgets)"
