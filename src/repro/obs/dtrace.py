"""Delivery tracing: wire-propagated trace context across every hop.

Node-local spans (:mod:`repro.obs.tracing`) explain what one process did;
they cannot explain why a choice took 80 ms to reach the last interested
subscriber three nodes away. This module adds Dapper-style *delivery
tracing* on the simulated clock:

* a :class:`TraceContext` — trace id, parent span id, hop count and send
  timestamp, all LEB128 varints on the wire — stamped onto codec frames
  as an **optional trailer** (see :func:`repro.net.codec.stamp_frame`),
  so cached fan-out frames stay encode-once;
* a :class:`DeliveryTracer` that records :class:`HopSpan`\\ s as stamped
  frames cross the network (``uplink``, ``gateway_route``,
  ``shard_queue``, ``replicate``, ``batch_wait``, ``retransmit``,
  ``downlink``), feeding per-hop latency histograms
  (``dtrace.hop.latency{hop}``) and end-to-end per-room latency
  (``dtrace.e2e.latency{room}``, actor send → each subscriber delivery);
* a :class:`TraceStore` — a bounded ring keyed by trace id — plus a
  critical-path analyzer (:func:`analyze_delivery`) that reconstructs the
  delivery tree of any trace and attributes end-to-end time to queueing
  vs. batch window vs. retransmit backoff vs. wire, with a text view
  (:func:`render_delivery_tree`) and a flight-recorder event when a
  delivery breaches the SLO budget.

The default tracer is :class:`NullDeliveryTracer` (disabled): untraced
runs pay one attribute check per send site. Install a real tracer with
:func:`set_dtrace`/:func:`use_dtrace` *before* constructing the network
and nodes, exactly like the metrics registry. Trace and span ids come
from deterministic counters — tracing never perturbs the simulation.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

# ----- wire context ---------------------------------------------------------------

#: Microseconds per simulated second: send timestamps travel as integer
#: varints, not floats, so the trailer stays compact.
MICROS = 1_000_000


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One hop's worth of trace context, as carried on the wire."""

    trace_id: int
    span_id: int   # parent span for whatever the receiver records
    hop: int       # hops travelled so far (depth in the delivery tree)
    sent_at_us: int

    @property
    def sent_at_s(self) -> float:
        return self.sent_at_us / MICROS


#: Placeholder for untraced members inside a batch trailer: keeps the
#: context list aligned 1:1 with the batch entries.
NULL_CONTEXT = TraceContext(0, 0, 0, 0)


def context_at(trace_id: int, span_id: int, hop: int, now: float) -> TraceContext:
    """Build a context stamped at simulated time *now* (seconds)."""
    return TraceContext(trace_id, span_id, hop, int(round(now * MICROS)))


# ----- hop taxonomy ---------------------------------------------------------------

HOP_UPLINK = "uplink"
HOP_GATEWAY_ROUTE = "gateway_route"
HOP_GATEWAY_QUEUE = "gateway_queue"
HOP_DIRECTORY_LOOKUP = "directory_lookup"
HOP_SHARD_QUEUE = "shard_queue"
HOP_REPLICATE = "replicate"
HOP_BATCH_WAIT = "batch_wait"
HOP_RETRANSMIT = "retransmit"
HOP_DOWNLINK = "downlink"
HOP_SHED_WAIT = "shed_wait"

ALL_HOPS = (
    HOP_UPLINK,
    HOP_GATEWAY_ROUTE,
    HOP_GATEWAY_QUEUE,
    HOP_DIRECTORY_LOOKUP,
    HOP_SHARD_QUEUE,
    HOP_REPLICATE,
    HOP_BATCH_WAIT,
    HOP_RETRANSMIT,
    HOP_DOWNLINK,
    HOP_SHED_WAIT,
)

#: Critical-path attribution buckets. Everything not explicitly queueing,
#: batch window or retransmit backoff is time on the (simulated) wire.
#: A gateway's routing-capacity wait and a route-cache miss's round trip
#: to the directory are both queueing: time spent not moving bytes.
HOP_CATEGORY = {
    HOP_GATEWAY_QUEUE: "queueing",
    HOP_DIRECTORY_LOOKUP: "queueing",
    HOP_SHARD_QUEUE: "queueing",
    HOP_SHED_WAIT: "queueing",
    HOP_BATCH_WAIT: "batch_window",
    HOP_RETRANSMIT: "retransmit_backoff",
}

CATEGORIES = ("wire", "queueing", "batch_window", "retransmit_backoff")

#: Client message kinds that open a root trace at the actor.
TRACED_CLIENT_KINDS = frozenset(
    {"choice", "operation", "annotate", "freeze", "release"}
)


def hop_category(hop: str) -> str:
    return HOP_CATEGORY.get(hop, "wire")


# ----- recorded spans -------------------------------------------------------------

@dataclass(slots=True)
class HopSpan:
    """One recorded hop of one delivery (a node in the delivery tree)."""

    span_id: int
    parent_id: int
    trace_id: int
    hop: str
    node: str
    start: float
    end: float
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


@dataclass(slots=True)
class TraceRecord:
    """Everything the store knows about one trace."""

    trace_id: int
    origin: str
    kind: str
    room: str | None
    started_at: float
    root_span_id: int
    spans: list[HopSpan] = field(default_factory=list)
    deliveries: list[dict[str, Any]] = field(default_factory=list)


class TraceStore:
    """Bounded ring of :class:`TraceRecord`, keyed by trace id.

    Oldest traces are evicted once *max_traces* are held; spans arriving
    for an evicted trace are dropped silently (the histograms still see
    them — the store is the debugging view, not the metric source).
    """

    def __init__(self, max_traces: int = 256) -> None:
        self.max_traces = max_traces
        self._records: OrderedDict[int, TraceRecord] = OrderedDict()
        self._next_trace_id = 1
        self._next_span_id = 1
        self.evicted = 0
        self.dropped_spans = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records.values())

    def next_span_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def begin(
        self, origin: str, kind: str, now: float, room: str | None = None
    ) -> TraceRecord:
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        record = TraceRecord(
            trace_id=trace_id,
            origin=origin,
            kind=kind,
            room=room,
            started_at=now,
            root_span_id=self.next_span_id(),
        )
        self._records[trace_id] = record
        while len(self._records) > self.max_traces:
            self._records.popitem(last=False)
            self.evicted += 1
        return record

    def get(self, trace_id: int) -> TraceRecord | None:
        return self._records.get(trace_id)

    def add_span(
        self,
        trace_id: int,
        parent_id: int,
        hop: str,
        node: str,
        start: float,
        end: float,
        detail: dict[str, Any] | None = None,
    ) -> int:
        """Record one hop span; returns its span id (allocated even when
        the trace was already evicted, so child parenting stays stable)."""
        span_id = self.next_span_id()
        record = self._records.get(trace_id)
        if record is None:
            self.dropped_spans += 1
            return span_id
        record.spans.append(
            HopSpan(
                span_id=span_id,
                parent_id=parent_id,
                trace_id=trace_id,
                hop=hop,
                node=node,
                start=start,
                end=end,
                detail=detail or {},
            )
        )
        return span_id

    def record_delivery(
        self, trace_id: int, node: str, span_id: int, at: float
    ) -> dict[str, Any] | None:
        record = self._records.get(trace_id)
        if record is None:
            return None
        delivery = {
            "node": node,
            "span_id": span_id,
            "at": at,
            "e2e": max(0.0, at - record.started_at),
        }
        record.deliveries.append(delivery)
        return delivery

    def drop_origin(self, node: str) -> int:
        """Forget every trace originated by *node* (session departure)."""
        doomed = [t for t, r in self._records.items() if r.origin == node]
        for trace_id in doomed:
            del self._records[trace_id]
        return len(doomed)

    def drop_room(self, room: str) -> int:
        """Forget every trace recorded against *room* (room closed)."""
        doomed = [t for t, r in self._records.items() if r.room == room]
        for trace_id in doomed:
            del self._records[trace_id]
        return len(doomed)


# ----- the tracer -----------------------------------------------------------------

class DeliveryTracer:
    """Records delivery spans and latency histograms on the sim clock.

    ``sample_every=N`` traces every Nth root operation (deterministic
    counter, no randomness); sampled-out operations cost one modulo at
    the client and nothing anywhere else, which is how the production
    profile keeps wire overhead under the E15 budget. ``slo_budget_s``
    arms a flight-recorder event (``dtrace.slo_breach``) carrying the
    critical-path breakdown whenever a delivery lands over budget.
    """

    enabled = True

    def __init__(
        self,
        max_traces: int = 256,
        sample_every: int = 1,
        slo_budget_s: float | None = None,
        registry: Any | None = None,
        event_log: Any | None = None,
    ) -> None:
        if registry is None or event_log is None:
            from repro.obs import get_event_log, get_registry

            registry = registry if registry is not None else get_registry()
            event_log = event_log if event_log is not None else get_event_log()
        self.store = TraceStore(max_traces)
        self.sample_every = max(1, int(sample_every))
        self.slo_budget_s = slo_budget_s
        self._event_log = event_log
        self._h_hop = registry.histogram_family("dtrace.hop.latency", ("hop",))
        self._h_e2e = registry.histogram_family("dtrace.e2e.latency", ("room",))
        self._c_traces = registry.counter("dtrace.traces_started")
        self._c_sampled_out = registry.counter("dtrace.sampled_out")
        self._c_spans = registry.counter("dtrace.spans")
        self._c_deliveries = registry.counter("dtrace.deliveries")
        self._c_breaches = registry.counter("dtrace.slo_breaches")
        self._op_counter = 0
        self._inbound: TraceContext | None = None

    # -- roots and sampling --------------------------------------------------------

    def start_trace(
        self, origin: str, kind: str, now: float, room: str | None = None
    ) -> TraceContext | None:
        """Open a root trace at the actor; ``None`` when sampled out."""
        index = self._op_counter
        self._op_counter += 1
        if index % self.sample_every:
            self._c_sampled_out.inc()
            return None
        record = self.store.begin(origin, kind, now, room=room)
        self._c_traces.inc()
        return context_at(record.trace_id, record.root_span_id, 0, now)

    # -- hop recording -------------------------------------------------------------

    def record_hop(
        self,
        ctx: TraceContext,
        hop: str,
        node: str,
        start: float,
        end: float,
        **detail: Any,
    ) -> TraceContext:
        """Record one hop span under *ctx*; returns the advanced context
        (new parent span, hop+1, stamped at *end*) for onward sends."""
        span_id = self.store.add_span(
            ctx.trace_id, ctx.span_id, hop, node, start, end, detail or None
        )
        self._c_spans.inc()
        self._h_hop.labels(hop).observe(max(0.0, end - start))
        return context_at(ctx.trace_id, span_id, ctx.hop + 1, end)

    # -- inbound context plumbing --------------------------------------------------

    def current(self) -> TraceContext | None:
        """The context of the delivery currently being handled, if any."""
        return self._inbound

    @contextmanager
    def inbound(self, ctx: TraceContext | None) -> Iterator[None]:
        """Scope *ctx* over one ``receive`` (single-threaded sim)."""
        previous = self._inbound
        self._inbound = ctx
        try:
            yield
        finally:
            self._inbound = previous

    # -- terminal deliveries -------------------------------------------------------

    def finish_delivery(self, ctx: TraceContext, node: str, now: float) -> None:
        """A subscriber displayed the update: close the e2e measurement."""
        record = self.store.get(ctx.trace_id)
        if record is None:
            return
        delivery = self.store.record_delivery(ctx.trace_id, node, ctx.span_id, now)
        if delivery is None:
            return
        self._c_deliveries.inc()
        self._h_e2e.labels(record.room or "?").observe(delivery["e2e"])
        budget = self.slo_budget_s
        if budget is not None and delivery["e2e"] > budget:
            self._c_breaches.inc()
            breakdown = analyze_delivery(record, delivery)
            self._event_log.emit(
                "dtrace.slo_breach",
                severity="WARN",
                at=now,
                trace_id=record.trace_id,
                room=record.room,
                node=node,
                e2e_s=round(delivery["e2e"], 6),
                budget_s=budget,
                **{k: round(v, 6) for k, v in breakdown["categories"].items()},
            )

    # -- lifecycle hygiene ---------------------------------------------------------

    def drop_session(self, node: str) -> None:
        """Forget a departed session's traces (no per-session residue)."""
        self.store.drop_origin(node)

    def drop_room(self, room: str) -> None:
        """Room closed: retire its e2e series and stored traces."""
        self._h_e2e.remove(room)
        self.store.drop_room(room)


class NullDeliveryTracer:
    """Disabled tracer: every send site pays one attribute check."""

    enabled = False

    def __init__(self) -> None:
        self.store = TraceStore(0)
        self.sample_every = 1
        self.slo_budget_s = None

    def start_trace(self, origin, kind, now, room=None):
        return None

    def record_hop(self, ctx, hop, node, start, end, **detail):
        return ctx

    def current(self):
        return None

    @contextmanager
    def inbound(self, ctx):
        yield

    def finish_delivery(self, ctx, node, now):
        return None

    def drop_session(self, node):
        return None

    def drop_room(self, room):
        return None


_dtrace: DeliveryTracer | NullDeliveryTracer = NullDeliveryTracer()


def get_dtrace() -> DeliveryTracer | NullDeliveryTracer:
    """The process-default delivery tracer (Null unless installed)."""
    return _dtrace


def set_dtrace(
    tracer: DeliveryTracer | NullDeliveryTracer,
) -> DeliveryTracer | NullDeliveryTracer:
    """Replace the default delivery tracer; returns it.

    Components cache the handle at construction — install before
    building the network and nodes, like :func:`repro.obs.set_registry`.
    """
    global _dtrace
    _dtrace = tracer
    return tracer


@contextmanager
def use_dtrace(
    tracer: DeliveryTracer | NullDeliveryTracer,
) -> Iterator[DeliveryTracer | NullDeliveryTracer]:
    """Temporarily install *tracer* as the default (test isolation)."""
    previous = get_dtrace()
    set_dtrace(tracer)
    try:
        yield tracer
    finally:
        set_dtrace(previous)


# ----- critical-path analysis -----------------------------------------------------

def delivery_tree(record: TraceRecord) -> dict[int, list[HopSpan]]:
    """Children-by-parent-span-id index over the record's spans."""
    children: dict[int, list[HopSpan]] = {}
    for span in record.spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def critical_path(record: TraceRecord, span_id: int) -> list[HopSpan]:
    """The hop chain from the root down to *span_id* (delivery leaf)."""
    by_id = {span.span_id: span for span in record.spans}
    path: list[HopSpan] = []
    cursor = by_id.get(span_id)
    while cursor is not None:
        path.append(cursor)
        cursor = by_id.get(cursor.parent_id)
    path.reverse()
    return path


def analyze_delivery(
    record: TraceRecord, delivery: dict[str, Any]
) -> dict[str, Any]:
    """Attribute one delivery's end-to-end time to its cost categories.

    Queueing and batch-window time are measured directly by their spans.
    Retransmit backoff is carved out of the wire legs it delayed: a
    retransmit span is recorded as a *sibling* of the wire hop it
    repaired (same parent context), so each path hop's wire time is its
    duration minus its sibling retransmits. Whatever the spans do not
    cover (origin-side think time, scheduler slack) lands in ``other``.
    """
    path = critical_path(record, delivery["span_id"])
    siblings = delivery_tree(record)
    categories = dict.fromkeys(CATEGORIES, 0.0)
    hops: list[dict[str, Any]] = []
    for span in path:
        duration = span.duration
        category = hop_category(span.hop)
        if category == "wire":
            backoff = sum(
                other.duration
                for other in siblings.get(span.parent_id, ())
                if other.hop == HOP_RETRANSMIT
            )
            backoff = min(backoff, duration)
            categories["retransmit_backoff"] += backoff
            categories["wire"] += duration - backoff
        else:
            categories[category] += duration
        hops.append(
            {
                "hop": span.hop,
                "node": span.node,
                "duration": duration,
                "category": category,
            }
        )
    e2e = delivery["e2e"]
    covered = sum(categories.values())
    return {
        "trace_id": record.trace_id,
        "node": delivery["node"],
        "e2e": e2e,
        "categories": categories,
        "other": max(0.0, e2e - covered),
        "hops": hops,
    }


def render_delivery_tree(record: TraceRecord, unit: str = "ms") -> str:
    """Text rendering of one trace's delivery tree (for humans)."""
    scale = 1_000.0 if unit == "ms" else 1.0
    children = delivery_tree(record)
    delivered_at = {d["span_id"]: d for d in record.deliveries}
    lines = [
        f"trace {record.trace_id} {record.kind!r} from {record.origin}"
        f" room={record.room or '?'} deliveries={len(record.deliveries)}"
    ]

    def visit(parent_id: int, depth: int) -> None:
        for span in sorted(
            children.get(parent_id, ()), key=lambda s: (s.start, s.span_id)
        ):
            marker = ""
            delivery = delivered_at.get(span.span_id)
            if delivery is not None:
                marker = (
                    f"  ← delivered e2e={delivery['e2e'] * scale:.3f}{unit}"
                )
            lines.append(
                f"{'  ' * depth}- {span.hop} @{span.node} "
                f"{span.duration * scale:.3f}{unit}{marker}"
            )
            visit(span.span_id, depth + 1)

    visit(record.root_span_id, 1)
    return "\n".join(lines)
