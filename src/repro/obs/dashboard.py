"""Text dashboard over a metric snapshot (or diff) plus recent events.

``render_dashboard`` turns the two telemetry streams — a registry
snapshot/diff and a slice of the flight recorder — into one fixed-width
text panel. Everything is sorted and formatted deterministically, so a
simulated run renders byte-identical dashboards run to run (the monitor
channel's acceptance test relies on this).

``include`` / ``exclude`` are metric-name prefix filters: pass
``exclude=("db.query_latency_s", "trace.")`` to drop wall-clock
measurements from an otherwise sim-clock-deterministic panel.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.obs.export import summary_quantile

_RULE = "-" * 72


def _keep(name: str, include: Sequence[str] | None, exclude: Sequence[str]) -> bool:
    if any(name.startswith(prefix) for prefix in exclude):
        return False
    if include is not None:
        return any(name.startswith(prefix) for prefix in include)
    return True


def _num(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _event_fields(event: Any) -> dict[str, Any]:
    """Uniform view over Event objects and their ``to_dict`` form."""
    if isinstance(event, dict):
        return event
    return event.to_dict()


def render_dashboard(
    snapshot: dict[str, Any],
    events: Iterable[Any] = (),
    title: str = "repro telemetry",
    include: Sequence[str] | None = None,
    exclude: Sequence[str] = (),
    max_events: int = 20,
) -> str:
    """Render *snapshot* (a registry snapshot or an exporter diff) as text.

    *events* may be :class:`repro.obs.events.Event` objects or their
    ``to_dict`` dicts (the wire form the monitor channel delivers); the
    newest ``max_events`` are shown, oldest first.
    """
    lines: list[str] = [f"== {title} ==", _RULE]

    counters = {
        name: value
        for name, value in snapshot.get("counters", {}).items()
        if _keep(name, include, exclude)
    }
    lines.append(f"counters ({len(counters)})")
    for name in sorted(counters):
        lines.append(f"  {name:<48} {_num(counters[name]):>12}")

    gauges = {
        name: value
        for name, value in snapshot.get("gauges", {}).items()
        if _keep(name, include, exclude)
    }
    lines.append(f"gauges ({len(gauges)})")
    for name in sorted(gauges):
        lines.append(f"  {name:<48} {_num(gauges[name]):>12}")

    for name in sorted(snapshot.get("gauges_absent", {})):
        if _keep(name, include, exclude):
            lines.append(f"  {name:<48} {'(absent)':>12}")

    histograms = {
        name: summary
        for name, summary in snapshot.get("histograms", {}).items()
        if _keep(name, include, exclude)
    }
    lines.append(f"histograms ({len(histograms)})")
    for name in sorted(histograms):
        summary = histograms[name] or {}
        lines.append(
            f"  {name:<48} count={_num(summary.get('count', 0))}"
            f" mean={_num(summary.get('mean'))}"
            f" p50={_num(summary_quantile(summary, 0.50))}"
            f" p90={_num(summary.get('p90'))}"
            f" p99={_num(summary_quantile(summary, 0.99))}"
            f" max={_num(summary.get('max'))}"
        )

    shown = list(events)[-max_events:] if max_events > 0 else []
    lines.append(_RULE)
    lines.append(f"events ({len(shown)} shown)")
    for event in shown:
        data = _event_fields(event)
        fields = data.get("fields", {})
        rendered_fields = " ".join(f"{key}={fields[key]}" for key in sorted(fields))
        span = data.get("span_id")
        span_text = f" span={span}" if span is not None else ""
        lines.append(
            f"  [{data.get('at', 0.0):9.3f}] {data.get('severity', 'INFO'):<5}"
            f" {data.get('name', '?')}{span_text}"
            + (f"  {rendered_fields}" if rendered_fields else "")
        )
    lines.append(_RULE)
    return "\n".join(lines)
