"""Exporters over registry snapshots: JSON, flat lines, and diffs.

A *snapshot* is the plain-dict form returned by
``MetricsRegistry.snapshot()``::

    {"counters": {name: value},
     "gauges": {name: value},
     "histograms": {name: {count, total, mean, min, max, p50, p90, p99,
                           bounds, bucket_counts}}}

Everything here is deterministic: keys are emitted sorted and JSON is
rendered with fixed separators, so identical metric states produce
byte-identical output (the property benchmark diffs rely on).
"""

from __future__ import annotations

import json
from typing import Any

Snapshot = dict[str, Any]


def to_json(snapshot: Snapshot, indent: int | None = 2) -> str:
    """Canonical JSON rendering of a snapshot (sorted keys)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, separators=(",", ": "))


def to_lines(snapshot: Snapshot) -> str:
    """Flat one-instrument-per-line dump (grep-friendly)."""
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"counter {name} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f"gauge {name} {value}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        if not summary or not summary.get("count"):
            lines.append(f"histogram {name} count=0")
            continue
        mean = summary["mean"]
        lines.append(
            f"histogram {name} count={summary['count']} total={summary['total']:.9g} "
            f"mean={mean:.9g} min={summary['min']:.9g} max={summary['max']:.9g} "
            f"p50={summary['p50']:.9g} p90={summary['p90']:.9g} p99={summary['p99']:.9g}"
        )
    return "\n".join(lines)


def _diff_histogram(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """Bucket-wise subtraction; percentiles recomputed over the delta."""
    bounds = after.get("bounds", [])
    after_buckets = after.get("bucket_counts", [])
    before_buckets = before.get("bucket_counts", [0] * len(after_buckets))
    delta_buckets = [a - b for a, b in zip(after_buckets, before_buckets)]
    count = after.get("count", 0) - before.get("count", 0)
    total = after.get("total", 0.0) - before.get("total", 0.0)

    def percentile(fraction: float) -> float | None:
        if count <= 0:
            return None
        rank = max(1, int(fraction * count + 0.999999))
        cumulative = 0
        for index, bucket_count in enumerate(delta_buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                return bounds[index] if index < len(bounds) else after.get("max")
        return after.get("max")

    return {
        "count": count,
        "total": total,
        "mean": (total / count) if count > 0 else None,
        # Exact extremes of the interval are unrecoverable from buckets;
        # report the cumulative ones (None when nothing new arrived).
        "min": after.get("min") if count > 0 else None,
        "max": after.get("max") if count > 0 else None,
        "p50": percentile(0.50),
        "p90": percentile(0.90),
        "p99": percentile(0.99),
        "bounds": list(bounds),
        "bucket_counts": delta_buckets,
    }


def diff(before: Snapshot, after: Snapshot) -> Snapshot:
    """What happened between two snapshots of the *same* registry.

    Counters and histograms subtract; gauges report their ``after``
    value (a level, not a rate). Instruments that never moved are
    omitted, so a benchmark's diff contains exactly the activity of the
    benchmarked region.
    """
    counters_before = before.get("counters", {})
    counters: dict[str, Any] = {}
    for name, value in after.get("counters", {}).items():
        delta = value - counters_before.get(name, 0)
        if delta:
            counters[name] = delta
    gauges = {
        name: value
        for name, value in after.get("gauges", {}).items()
        if value != before.get("gauges", {}).get(name, 0)
    }
    histograms_before = before.get("histograms", {})
    histograms: dict[str, Any] = {}
    for name, summary in after.get("histograms", {}).items():
        if summary.get("count", 0) != histograms_before.get(name, {}).get("count", 0):
            histograms[name] = _diff_histogram(histograms_before.get(name, {}), summary)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
