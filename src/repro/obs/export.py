"""Exporters over registry snapshots: JSON, lines, diffs and exposition.

A *snapshot* is the plain-dict form returned by
``MetricsRegistry.snapshot()``::

    {"counters": {name: value},
     "gauges": {name: value},
     "histograms": {name: {count, total, mean, min, max, p50, p90, p99,
                           bounds, bucket_counts}}}

Labelled family children appear under their canonical names
(``db.rows_scanned{table="patients"}``), so every exporter handles
labels uniformly; :func:`to_exposition` additionally re-renders them in
Prometheus text format (sanitized metric names, ``le`` buckets,
``_sum``/``_count`` series).

Everything here is deterministic: keys are emitted sorted and JSON is
rendered with fixed separators, so identical metric states produce
byte-identical output (the property benchmark diffs rely on).
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.metrics import quantile_from_buckets

Snapshot = dict[str, Any]


def summary_quantile(summary: dict[str, Any], q: float) -> float | None:
    """Interpolated quantile recovered from a ``Histogram.summary()`` dict."""
    if not summary:
        return None
    return quantile_from_buckets(
        summary.get("bounds", ()),
        summary.get("bucket_counts", ()),
        summary.get("count", 0),
        summary.get("min"),
        summary.get("max"),
        q,
    )


def to_json(snapshot: Snapshot, indent: int | None = 2) -> str:
    """Canonical JSON rendering of a snapshot (sorted keys)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True, separators=(",", ": "))


def to_lines(snapshot: Snapshot) -> str:
    """Flat one-instrument-per-line dump (grep-friendly)."""
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"counter {name} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f"gauge {name} {value}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        if not summary or not summary.get("count"):
            lines.append(f"histogram {name} count=0")
            continue
        mean = summary["mean"]
        q50 = summary_quantile(summary, 0.50)
        q99 = summary_quantile(summary, 0.99)
        lines.append(
            f"histogram {name} count={summary['count']} total={summary['total']:.9g} "
            f"mean={mean:.9g} min={summary['min']:.9g} max={summary['max']:.9g} "
            f"p50={summary['p50']:.9g} p90={summary['p90']:.9g} p99={summary['p99']:.9g} "
            f"q50={q50:.9g} q99={q99:.9g}"
        )
    for name, value in sorted(snapshot.get("gauges_absent", {}).items()):
        lines.append(f"gauge {name} absent last={value}")
    return "\n".join(lines)


def _diff_histogram(before: dict[str, Any], after: dict[str, Any]) -> dict[str, Any]:
    """Bucket-wise subtraction; percentiles recomputed over the delta."""
    bounds = after.get("bounds", [])
    after_buckets = after.get("bucket_counts", [])
    before_buckets = before.get("bucket_counts", [0] * len(after_buckets))
    delta_buckets = [a - b for a, b in zip(after_buckets, before_buckets)]
    count = after.get("count", 0) - before.get("count", 0)
    total = after.get("total", 0.0) - before.get("total", 0.0)

    def percentile(fraction: float) -> float | None:
        if count <= 0:
            return None
        rank = max(1, int(fraction * count + 0.999999))
        cumulative = 0
        for index, bucket_count in enumerate(delta_buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                return bounds[index] if index < len(bounds) else after.get("max")
        return after.get("max")

    return {
        "count": count,
        "total": total,
        "mean": (total / count) if count > 0 else None,
        # Exact extremes of the interval are unrecoverable from buckets;
        # report the cumulative ones (None when nothing new arrived).
        "min": after.get("min") if count > 0 else None,
        "max": after.get("max") if count > 0 else None,
        "p50": percentile(0.50),
        "p90": percentile(0.90),
        "p99": percentile(0.99),
        "bounds": list(bounds),
        "bucket_counts": delta_buckets,
    }


def diff(before: Snapshot, after: Snapshot) -> Snapshot:
    """What happened between two snapshots of the *same* registry.

    Counters and histograms subtract; gauges report their ``after``
    value (a level, not a rate). Instruments that never moved are
    omitted, so a benchmark's diff contains exactly the activity of the
    benchmarked region.

    A gauge present in *before* but gone from *after* (the registry was
    reset or recreated between snapshots) is not silently dropped: it is
    reported under ``gauges_absent`` as its last-known value going to
    absent. The key is present only when something actually disappeared,
    so quiescent diffs keep the three-section shape.
    """
    counters_before = before.get("counters", {})
    counters: dict[str, Any] = {}
    for name, value in after.get("counters", {}).items():
        delta = value - counters_before.get(name, 0)
        if delta:
            counters[name] = delta
    gauges_after = after.get("gauges", {})
    gauges = {
        name: value
        for name, value in gauges_after.items()
        if value != before.get("gauges", {}).get(name, 0)
    }
    gauges_absent = {
        name: value
        for name, value in before.get("gauges", {}).items()
        if name not in gauges_after
    }
    histograms_before = before.get("histograms", {})
    histograms: dict[str, Any] = {}
    for name, summary in after.get("histograms", {}).items():
        if summary.get("count", 0) != histograms_before.get(name, {}).get("count", 0):
            histograms[name] = _diff_histogram(histograms_before.get(name, {}), summary)
    result: Snapshot = {"counters": counters, "gauges": gauges, "histograms": histograms}
    if gauges_absent:
        result["gauges_absent"] = gauges_absent
    return result


# ----- Prometheus-style exposition ------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _split_series(name: str) -> tuple[str, str]:
    """Split a canonical instrument name into (base, label-body)."""
    if name.endswith("}") and "{" in name:
        base, _, labels = name[:-1].partition("{")
        return base, labels
    return name, ""


def _metric_name(base: str) -> str:
    return _NAME_SANITIZE.sub("_", base)


def _series(name: str, labels: str, value: Any) -> str:
    body = f"{{{labels}}}" if labels else ""
    return f"{name}{body} {value}"


def _with_label(labels: str, extra: str) -> str:
    return f"{labels},{extra}" if labels else extra


def to_exposition(snapshot: Snapshot) -> str:
    """Prometheus text-format rendering of a snapshot.

    Metric names are sanitized (``db.rows_scanned`` becomes
    ``db_rows_scanned``); labelled family children keep their labels;
    histograms expand to cumulative ``_bucket`` series plus ``_sum`` and
    ``_count``. Output is sorted, so identical snapshots render
    byte-identical text.
    """
    by_base: dict[tuple[str, str], list[tuple[str, list[str]]]] = {}

    def add(kind: str, base: str, labels: str, lines: list[str]) -> None:
        by_base.setdefault((base, kind), []).append((labels, lines))

    for name, value in snapshot.get("counters", {}).items():
        base, labels = _split_series(name)
        metric = _metric_name(base)
        add("counter", metric, labels, [_series(metric, labels, value)])
    for name, value in snapshot.get("gauges", {}).items():
        base, labels = _split_series(name)
        metric = _metric_name(base)
        add("gauge", metric, labels, [_series(metric, labels, value)])
    for name, summary in snapshot.get("histograms", {}).items():
        base, labels = _split_series(name)
        metric = _metric_name(base)
        bounds = summary.get("bounds", []) if summary else []
        buckets = summary.get("bucket_counts", []) if summary else []
        count = summary.get("count", 0) if summary else 0
        total = summary.get("total", 0.0) if summary else 0.0
        lines: list[str] = []
        cumulative = 0
        for bound, bucket_count in zip(bounds, buckets):
            cumulative += bucket_count
            lines.append(
                _series(f"{metric}_bucket", _with_label(labels, f'le="{bound}"'), cumulative)
            )
        lines.append(
            _series(f"{metric}_bucket", _with_label(labels, 'le="+Inf"'), count)
        )
        lines.append(_series(f"{metric}_sum", labels, total))
        lines.append(_series(f"{metric}_count", labels, count))
        # Summary-style interpolated quantiles alongside the buckets, so
        # p50/p99 are readable without a PromQL histogram_quantile().
        if count:
            for q, label in ((0.5, "0.5"), (0.99, "0.99")):
                estimate = summary_quantile(summary, q)
                lines.append(
                    _series(
                        metric,
                        _with_label(labels, f'quantile="{label}"'),
                        f"{estimate:.9g}",
                    )
                )
        add("histogram", metric, labels, lines)

    output: list[str] = []
    for (metric, kind), series in sorted(by_base.items()):
        output.append(f"# TYPE {metric} {kind}")
        for _, lines in sorted(series):
            output.extend(lines)
    return "\n".join(output)
