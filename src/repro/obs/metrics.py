"""Counters, gauges and fixed-bucket histograms.

The registry is designed to be *always on*: instruments are plain
objects with ``__slots__`` whose hot methods do one attribute update
(counters/gauges) or one bisect (histograms). Call sites resolve their
instrument handles once — typically in ``__init__`` — and increment by
batch totals (``rows_scanned.inc(len(candidates))``) rather than per
element, so the cost per *operation* is a handful of nanoseconds.

When observability must be off entirely, install a
:class:`NullRegistry`: it hands out shared no-op instruments, so an
instrumented call site degenerates to one attribute lookup plus a no-op
call.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping, Sequence

#: Default bucket bounds for latency histograms (seconds, 1 µs → 30 s).
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
)

#: Default bucket bounds for byte-size histograms (64 B → 256 MB).
SIZE_BUCKETS: tuple[float, ...] = tuple(float(64 * 4**i) for i in range(12))

#: Default bucket bounds for count-valued histograms (1 → 1M).
COUNT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that goes up and down (occupancy, depth, live bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram with p50/p90/p99 summaries.

    ``bounds`` are the inclusive upper edges of the buckets; one overflow
    bucket catches everything above the last bound. Percentiles are
    estimated as the upper edge of the bucket containing the rank (the
    overflow bucket reports the observed maximum), which is deterministic
    and honest about bucket resolution.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, fraction: float) -> float | None:
        """Estimated value at *fraction* (0 < fraction <= 1) of the data."""
        if self.count == 0:
            return None
        rank = max(1, int(fraction * self.count + 0.999999))
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max  # pragma: no cover - defensive

    def summary(self) -> dict[str, Any]:
        """Deterministic serializable summary (used by the exporters)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": (self.total / self.count) if self.count else None,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Name-keyed store of instruments; get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ----- instruments -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # ----- introspection ---------------------------------------------------------

    @property
    def counters(self) -> Mapping[str, Counter]:
        return self._counters

    @property
    def gauges(self) -> Mapping[str, Gauge]:
        return self._gauges

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return self._histograms

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of every instrument (sorted, serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary() for n, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (handles held by call sites go stale)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass

    def percentile(self, fraction: float) -> None:
        return None

    def summary(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Observability off: every instrument is the shared no-op object."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    @property
    def counters(self) -> Mapping[str, Counter]:
        return {}

    @property
    def gauges(self) -> Mapping[str, Gauge]:
        return {}

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return {}

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass
