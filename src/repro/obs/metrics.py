"""Counters, gauges and fixed-bucket histograms.

The registry is designed to be *always on*: instruments are plain
objects with ``__slots__`` whose hot methods do one attribute update
(counters/gauges) or one bisect (histograms). Call sites resolve their
instrument handles once — typically in ``__init__`` — and increment by
batch totals (``rows_scanned.inc(len(candidates))``) rather than per
element, so the cost per *operation* is a handful of nanoseconds.

Labelled *families* add bounded dimensionality on top: a family is a
named group of instruments keyed by label values
(``registry.counter_family("db.rows_scanned", ("table",)).labels("patients")``).
Children are ordinary instruments registered under the canonical name
``db.rows_scanned{table="patients"}``, so every exporter (JSON, lines,
diff, exposition) sees them with no special casing. Cardinality is
bounded per family: once ``max_series`` distinct label sets exist, new
label sets collapse into one shared overflow child (labels
``"__other__"``) instead of growing without limit.

When observability must be off entirely, install a
:class:`NullRegistry`: it hands out shared no-op instruments, so an
instrumented call site degenerates to one attribute lookup plus a no-op
call.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Mapping, Sequence

#: Default bucket bounds for latency histograms (seconds, 1 µs → 30 s).
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
)

#: Default bucket bounds for byte-size histograms (64 B → 256 MB).
SIZE_BUCKETS: tuple[float, ...] = tuple(float(64 * 4**i) for i in range(12))

#: Default bucket bounds for count-valued histograms (1 → 1M).
COUNT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A value that goes up and down (occupancy, depth, live bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram with p50/p90/p99 summaries.

    ``bounds`` are the inclusive upper edges of the buckets; one overflow
    bucket catches everything above the last bound. Percentiles are
    estimated as the upper edge of the bucket containing the rank (the
    overflow bucket reports the observed maximum), which is deterministic
    and honest about bucket resolution.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, fraction: float) -> float | None:
        """Estimated value at *fraction* (0 < fraction <= 1) of the data."""
        if self.count == 0:
            return None
        rank = max(1, int(fraction * self.count + 0.999999))
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max  # pragma: no cover - defensive

    def quantile(self, q: float) -> float | None:
        """Linear-interpolated quantile estimate (``0 <= q <= 1``).

        Unlike :meth:`percentile` (bucket upper edge, pinned by the
        exporters), this interpolates within the bucket containing the
        fractional rank ``q * count``: the first populated bucket's lower
        edge clamps to the observed minimum and the overflow bucket's
        upper edge to the observed maximum, so ``quantile(0) == min`` and
        ``quantile(1) == max``. Returns ``None`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction out of range: {q!r}")
        if self.count == 0:
            return None
        return quantile_from_buckets(
            self.bounds, self.bucket_counts, self.count, self.min, self.max, q
        )

    def summary(self) -> dict[str, Any]:
        """Deterministic serializable summary (used by the exporters)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": (self.total / self.count) if self.count else None,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


def quantile_from_buckets(
    bounds: Sequence[float],
    bucket_counts: Sequence[int],
    count: int,
    minimum: float | None,
    maximum: float | None,
    q: float,
) -> float | None:
    """Interpolated quantile from serialized histogram state.

    Shared by :meth:`Histogram.quantile` and the exporters, which only
    hold the ``summary()`` dict, not the live instrument.
    """
    if count <= 0:
        return None
    target = q * count
    cumulative = 0.0
    for index, bucket_count in enumerate(bucket_counts):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            if index == 0 or cumulative == 0.0:
                lo = minimum if minimum is not None else 0.0
            else:
                lo = bounds[index - 1]
            if index < len(bounds):
                hi = bounds[index]
            else:
                hi = maximum if maximum is not None else bounds[-1]
            if maximum is not None:
                hi = min(hi, maximum)
            lo = min(lo, hi)
            within = (target - cumulative) / bucket_count
            within = min(max(within, 0.0), 1.0)
            return lo + (hi - lo) * within
        cumulative += bucket_count
    return maximum


#: Label values a family collapses to once ``max_series`` is exceeded.
OVERFLOW_LABEL = "__other__"

#: Default per-family series bound.
DEFAULT_MAX_SERIES = 64


class MetricFamily:
    """A group of same-named instruments split by label values.

    ``labels(*values)`` resolves the child for one label set, creating it
    on first use. Call sites that know their labels at construction time
    resolve the child once and keep the handle — the hot path then pays
    exactly what an unlabelled instrument costs.
    """

    __slots__ = ("name", "kind", "label_names", "max_series", "_children", "_store", "_make")

    def __init__(
        self,
        name: str,
        kind: str,
        label_names: Sequence[str],
        max_series: int,
        store: dict[str, Any],
        make: Callable[[str], Any],
    ) -> None:
        if not label_names:
            raise ValueError(f"family {name!r} needs at least one label name")
        if max_series < 1:
            raise ValueError(f"family {name!r}: max_series must be >= 1")
        self.name = name
        self.kind = kind
        self.label_names = tuple(str(n) for n in label_names)
        self.max_series = max_series
        self._children: dict[tuple[str, ...], Any] = {}
        self._store = store
        self._make = make

    def labels(self, *values: Any) -> Any:
        """The child instrument for one label-value tuple."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"family {self.name!r} takes labels {self.label_names}, "
                f"got {len(values)} value(s)"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.max_series:
                key = (OVERFLOW_LABEL,) * len(self.label_names)
                child = self._children.get(key)
                if child is not None:
                    return child
            child = self._make(self.full_name(key))
            self._children[key] = child
            self._store[child.name] = child
        return child

    def full_name(self, values: Sequence[str]) -> str:
        """Canonical registered name of one child (Prometheus-style)."""
        labels = ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, values)
        )
        return f"{self.name}{{{labels}}}"

    def remove(self, *values: Any) -> None:
        """Drop one child (e.g. when its labelled entity is retired)."""
        key = tuple(str(v) for v in values)
        child = self._children.pop(key, None)
        if child is not None:
            self._store.pop(child.name, None)

    @property
    def children(self) -> Mapping[tuple[str, ...], Any]:
        return dict(self._children)

    def __repr__(self) -> str:
        return (
            f"MetricFamily({self.name!r}, {self.kind}, labels={self.label_names}, "
            f"{len(self._children)} series)"
        )


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


class MetricsRegistry:
    """Name-keyed store of instruments; get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._families: dict[str, MetricFamily] = {}

    # ----- instruments -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # ----- labelled families ------------------------------------------------------

    def counter_family(
        self,
        name: str,
        label_names: Sequence[str],
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> MetricFamily:
        return self._family(name, "counter", label_names, max_series, self._counters, Counter)

    def gauge_family(
        self,
        name: str,
        label_names: Sequence[str],
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> MetricFamily:
        return self._family(name, "gauge", label_names, max_series, self._gauges, Gauge)

    def histogram_family(
        self,
        name: str,
        label_names: Sequence[str],
        bounds: Sequence[float] = LATENCY_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> MetricFamily:
        return self._family(
            name, "histogram", label_names, max_series, self._histograms,
            lambda full_name: Histogram(full_name, bounds),
        )

    def _family(
        self,
        name: str,
        kind: str,
        label_names: Sequence[str],
        max_series: int,
        store: dict[str, Any],
        make: Callable[[str], Any],
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = MetricFamily(
                name, kind, label_names, max_series, store, make
            )
            return family
        if family.kind != kind:
            raise ValueError(
                f"family {name!r} already exists as a {family.kind} family"
            )
        if family.label_names != tuple(str(n) for n in label_names):
            raise ValueError(
                f"family {name!r} already declared with labels "
                f"{family.label_names}, not {tuple(label_names)}"
            )
        return family

    @property
    def families(self) -> Mapping[str, MetricFamily]:
        return self._families

    # ----- introspection ---------------------------------------------------------

    @property
    def counters(self) -> Mapping[str, Counter]:
        return self._counters

    @property
    def gauges(self) -> Mapping[str, Gauge]:
        return self._gauges

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return self._histograms

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time copy of every instrument (sorted, serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary() for n, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (handles held by call sites go stale)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._families.clear()


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: int | float) -> None:
        pass

    def percentile(self, fraction: float) -> None:
        return None

    def summary(self) -> dict[str, Any]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class _NullFamily:
    """Shared do-nothing family: every label set is the null instrument."""

    __slots__ = ()
    name = "null"
    kind = "null"
    label_names = ()
    max_series = 0
    children: Mapping[tuple[str, ...], Any] = {}

    def labels(self, *values: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def remove(self, *values: Any) -> None:
        pass


_NULL_FAMILY = _NullFamily()


class NullRegistry:
    """Observability off: every instrument is the shared no-op object."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counter_family(
        self, name: str, label_names: Sequence[str], max_series: int = DEFAULT_MAX_SERIES
    ) -> _NullFamily:
        return _NULL_FAMILY

    def gauge_family(
        self, name: str, label_names: Sequence[str], max_series: int = DEFAULT_MAX_SERIES
    ) -> _NullFamily:
        return _NULL_FAMILY

    def histogram_family(
        self,
        name: str,
        label_names: Sequence[str],
        bounds: Sequence[float] = LATENCY_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> _NullFamily:
        return _NULL_FAMILY

    @property
    def families(self) -> Mapping[str, MetricFamily]:
        return {}

    @property
    def counters(self) -> Mapping[str, Counter]:
        return {}

    @property
    def gauges(self) -> Mapping[str, Gauge]:
        return {}

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return {}

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass
