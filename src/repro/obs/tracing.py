"""Hierarchical trace spans with a context-local span stack.

Usage::

    with trace.span("server.propagate"):
        ...
        with trace.span("server.diff"):
            ...

Nesting is tracked per execution context (``contextvars``), so
concurrently traced flows never interleave their trees. The clock is
injectable: pass ``clock=lambda: simclock.now`` and a discrete-event
simulation drives fully deterministic span trees (the exporter output is
then byte-identical run to run).
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator


class Span:
    """One timed region; children are spans opened while it was open.

    ``span_id`` is unique within the owning tracer (a deterministic
    per-tracer sequence, so simulated runs produce identical ids) and is
    what flight-recorder events correlate to. ``error`` holds the
    exception type name when the traced block raised, ``None`` otherwise.
    """

    __slots__ = ("name", "start", "end", "children", "span_id", "error")

    def __init__(self, name: str, start: float, span_id: int = 0) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.children: list["Span"] = []
        self.span_id = span_id
        self.error: str | None = None

    @property
    def duration(self) -> float:
        """Elapsed clock time (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        """Deterministic serializable form of the subtree."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "error": self.error,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"


class Tracer:
    """Produces span trees; retains a bounded history of finished roots.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time. Defaults to
        ``time.perf_counter``; inject a simulated clock for determinism.
    registry:
        When given, every finished span also records its duration into
        the registry histogram ``trace.<name>``.
    max_roots:
        Completed root spans retained (oldest dropped first), so an
        always-on tracer cannot grow without bound.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        registry: Any = None,
        max_roots: int = 256,
    ) -> None:
        self._clock = clock if clock is not None else time.perf_counter
        self._registry = registry
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self._ids = itertools.count(1)
        self._listeners: list[Callable[[Span], None]] = []
        self._stack: ContextVar[tuple[Span, ...]] = ContextVar(
            "repro_obs_span_stack", default=()
        )

    def add_listener(self, listener: Callable[[Span], None]) -> Callable[[Span], None]:
        """Call *listener* with every finished span (watchdogs hook here)."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener: Callable[[Span], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a span named *name* under the innermost open span.

        A raising block still closes the span; the exception's type name
        is recorded on ``span.error`` and counted as
        ``trace.<name>.errors`` before the exception propagates.
        """
        opened = Span(name, self._clock(), span_id=next(self._ids))
        stack = self._stack.get()
        token = self._stack.set(stack + (opened,))
        try:
            yield opened
        except BaseException as exc:
            opened.error = type(exc).__name__
            raise
        finally:
            opened.end = self._clock()
            self._stack.reset(token)
            if stack:
                stack[-1].children.append(opened)
            else:
                self._roots.append(opened)
            if self._registry is not None:
                self._registry.histogram("trace." + name).observe(opened.duration)
                if opened.error is not None:
                    self._registry.counter(f"trace.{name}.errors").inc()
            for listener in tuple(self._listeners):
                listener(opened)

    @property
    def current(self) -> Span | None:
        """The innermost open span in this execution context."""
        stack = self._stack.get()
        return stack[-1] if stack else None

    @property
    def roots(self) -> tuple[Span, ...]:
        """Finished root spans, oldest first."""
        return tuple(self._roots)

    def last(self) -> Span | None:
        """The most recently finished root span."""
        return self._roots[-1] if self._roots else None

    def clear(self) -> None:
        """Drop retained roots and restart the span-id sequence.

        After ``clear()`` a repeated identical run produces identical
        span ids — what the byte-identical dashboard tests rely on.
        """
        self._roots.clear()
        self._ids = itertools.count(1)


def render_span_tree(span: Span, indent: str = "") -> str:
    """ASCII tree of a span and its descendants, durations in ms.

    Fully determined by span names and clock readings — with a simulated
    clock the output is byte-identical across runs.
    """
    error = f"  !error={span.error}" if span.error is not None else ""
    lines = [
        f"{indent}{span.name}  {span.duration * 1000:.3f} ms"
        f"  [{span.start:.6f} -> {span.end if span.end is not None else span.start:.6f}]"
        f"{error}"
    ]
    for child in span.children:
        lines.append(render_span_tree(child, indent + "  "))
    return "\n".join(lines)


@contextmanager
def timeit(
    label: str,
    tracer: Tracer | None = None,
    printer: Callable[[str], None] | None = None,
) -> Iterator[Span]:
    """Time a block as a span and report it CLI-style on exit.

    ``with timeit("retrieve"):`` opens a span on *tracer* (the package
    default when omitted) and prints ``[timeit] retrieve: 1.234 ms``
    through *printer* (default ``print``).
    """
    if tracer is None:
        from repro.obs import trace as tracer  # the package default

    with tracer.span(label) as span:
        yield span
    (printer or print)(f"[timeit] {label}: {span.duration * 1000:.3f} ms")
