"""Flight recorder: a bounded ring buffer of structured events.

Metrics say *how much*; the flight recorder says *what happened, in what
order*. Components emit events at decision points — a journal
checkpoint, a room emptying, a propagation fan-out, a prefetch eviction
— and the :class:`EventLog` keeps the most recent ``capacity`` of them,
evicting oldest first, so an always-on recorder cannot grow without
bound.

Each event carries a name, a severity (:data:`DEBUG` .. :data:`ERROR`),
free-form key/value fields, a timestamp from the injectable clock, and
the ``span_id`` of the trace span that was open when it was emitted (the
automatic correlation that lets a dashboard line up "what happened"
against "where time went"). Subscribers registered with
:meth:`EventLog.subscribe` see every event as it is emitted — the live
telemetry channel hangs off this hook.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Any, Callable, Iterator

#: Severity levels, ordered. Comparisons use the numeric rank.
DEBUG = "DEBUG"
INFO = "INFO"
WARN = "WARN"
ERROR = "ERROR"

SEVERITIES: tuple[str, ...] = (DEBUG, INFO, WARN, ERROR)
_SEVERITY_RANK: dict[str, int] = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (raises on unknown names)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(f"unknown severity {severity!r}; expected one of {SEVERITIES}")


class Event:
    """One recorded occurrence; immutable once emitted."""

    __slots__ = ("seq", "name", "severity", "at", "span_id", "fields")

    def __init__(
        self,
        seq: int,
        name: str,
        severity: str,
        at: float,
        span_id: int | None,
        fields: dict[str, Any],
    ) -> None:
        self.seq = seq
        self.name = name
        self.severity = severity
        self.at = at
        self.span_id = span_id
        self.fields = fields

    def to_dict(self) -> dict[str, Any]:
        """Deterministic serializable form (fields emitted sorted)."""
        return {
            "seq": self.seq,
            "name": self.name,
            "severity": self.severity,
            "at": self.at,
            "span_id": self.span_id,
            "fields": {key: self.fields[key] for key in sorted(self.fields)},
        }

    def render(self) -> str:
        """One-line human form: ``[  1.500] WARN  net.drop  node=c1``."""
        fields = " ".join(f"{key}={self.fields[key]}" for key in sorted(self.fields))
        span = f" span={self.span_id}" if self.span_id is not None else ""
        return f"[{self.at:9.3f}] {self.severity:<5} {self.name}{span}" + (
            f"  {fields}" if fields else ""
        )

    def __repr__(self) -> str:
        return f"Event({self.name!r}, {self.severity}, at={self.at:.6f})"


class EventLog:
    """Bounded ring buffer of :class:`Event` with live subscribers.

    Parameters
    ----------
    capacity:
        Events retained; the oldest is evicted when a new one arrives at
        capacity (flight-recorder semantics — the recent past survives).
    clock:
        Zero-argument callable supplying timestamps when ``emit`` is not
        given an explicit ``at``. Inject a simulated clock for
        determinism.
    tracer:
        When given, emitted events record the ``span_id`` of the
        tracer's innermost open span (``None`` outside any span).
    """

    def __init__(
        self,
        capacity: int = 1024,
        clock: Callable[[], float] | None = None,
        tracer: Any = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("EventLog capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock if clock is not None else time.perf_counter
        self._tracer = tracer
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._subscribers: list[Callable[[Event], None]] = []

    def emit(
        self,
        name: str,
        severity: str = INFO,
        at: float | None = None,
        **fields: Any,
    ) -> Event:
        """Record one event and fan it out to subscribers.

        The event correlates automatically to the innermost open span of
        the attached tracer; pass ``at`` to override the clock (events
        replayed from another timeline keep their original stamps).
        """
        severity_rank(severity)  # validate early; bad severities are bugs
        span = self._tracer.current if self._tracer is not None else None
        event = Event(
            seq=next(self._seq),
            name=name,
            severity=severity,
            at=at if at is not None else self._clock(),
            span_id=span.span_id if span is not None else None,
            fields=fields,
        )
        self._events.append(event)
        for subscriber in tuple(self._subscribers):
            subscriber(event)
        return event

    def subscribe(self, subscriber: Callable[[Event], None]) -> Callable[[Event], None]:
        """Call *subscriber* with every subsequent event; returns it."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Callable[[Event], None]) -> None:
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    # ----- reading the recorder --------------------------------------------------

    @property
    def events(self) -> tuple[Event, ...]:
        """Retained events, oldest first."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(tuple(self._events))

    def tail(self, count: int) -> tuple[Event, ...]:
        """The newest *count* retained events, oldest first."""
        if count <= 0:
            return ()
        return tuple(self._events)[-count:]

    def filter(
        self,
        name: str | None = None,
        min_severity: str = DEBUG,
        span_id: int | None = None,
    ) -> tuple[Event, ...]:
        """Retained events matching a name prefix / severity floor / span."""
        floor = severity_rank(min_severity)
        return tuple(
            event
            for event in self._events
            if _SEVERITY_RANK[event.severity] >= floor
            and (name is None or event.name.startswith(name))
            and (span_id is None or event.span_id == span_id)
        )

    def clear(self) -> None:
        self._events.clear()

    def __repr__(self) -> str:
        return f"EventLog({len(self._events)}/{self.capacity} events)"


class NullEventLog:
    """Flight recorder off: ``emit`` does nothing and retains nothing."""

    capacity = 0

    def emit(
        self,
        name: str,
        severity: str = INFO,
        at: float | None = None,
        **fields: Any,
    ) -> None:
        return None

    def subscribe(self, subscriber: Callable[[Event], None]) -> Callable[[Event], None]:
        return subscriber

    def unsubscribe(self, subscriber: Callable[[Event], None]) -> None:
        pass

    @property
    def events(self) -> tuple[Event, ...]:
        return ()

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Event]:
        return iter(())

    def tail(self, count: int) -> tuple[Event, ...]:
        return ()

    def filter(
        self,
        name: str | None = None,
        min_severity: str = DEBUG,
        span_id: int | None = None,
    ) -> tuple[Event, ...]:
        return ()

    def clear(self) -> None:
        pass
