"""``repro.obs`` — metrics, tracing and profiling for every tier.

The package keeps one process-wide default :class:`MetricsRegistry`
(always on — instruments are cheap) and one default :class:`Tracer`.
Instrumented components resolve their handles from
:func:`get_registry` at construction time; swap in a
:class:`NullRegistry` via :func:`set_registry` / :func:`use_registry`
*before* constructing components to turn observability off, or a fresh
:class:`MetricsRegistry` to isolate a test's counts.

Benchmarks never swap: they snapshot the default registry before and
after the measured region and report :func:`diff` of the two.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.export import diff, to_json, to_lines
from repro.obs.tracing import Span, Tracer, render_span_tree, timeit

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "Tracer",
    "diff",
    "get_registry",
    "render_span_tree",
    "set_registry",
    "snapshot",
    "timeit",
    "to_json",
    "to_lines",
    "trace",
    "use_registry",
]

_registry: MetricsRegistry | NullRegistry = MetricsRegistry()

#: Process-default tracer (wall clock). Components trace through this
#: unless handed their own Tracer.
trace = Tracer()


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-default registry instrumented code resolves handles from."""
    return _registry


def set_registry(registry: MetricsRegistry | NullRegistry) -> MetricsRegistry | NullRegistry:
    """Replace the default registry; returns it.

    Components cache instrument handles at construction, so swap before
    building whatever you want measured (or silenced).
    """
    global _registry
    _registry = registry
    return registry


@contextmanager
def use_registry(
    registry: MetricsRegistry | NullRegistry,
) -> Iterator[MetricsRegistry | NullRegistry]:
    """Temporarily install *registry* as the default (test isolation)."""
    previous = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def snapshot() -> dict:
    """Snapshot of the default registry."""
    return _registry.snapshot()
