"""``repro.obs`` — metrics, tracing, events and watchdogs for every tier.

The package keeps one process-wide default of each telemetry primitive
(always on — instruments are cheap):

- a :class:`MetricsRegistry` (:func:`get_registry`),
- a :class:`Tracer` (:data:`trace`),
- an :class:`EventLog` flight recorder (:func:`get_event_log`),
- a :class:`Watchdog` listening to the default tracer
  (:func:`get_watchdog`).

Instrumented components resolve their handles from the getters at
construction time; swap in the Null variants via the ``set_*`` /
``use_*`` helpers *before* constructing components to turn observability
off, or fresh instances to isolate a test's counts.

Benchmarks never swap: they snapshot the default registry before and
after the measured region and report :func:`diff` of the two.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_MAX_SERIES,
    LATENCY_BUCKETS,
    OVERFLOW_LABEL,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.export import diff, to_exposition, to_json, to_lines
from repro.obs.tracing import Span, Tracer, render_span_tree, timeit
from repro.obs.events import (
    DEBUG,
    ERROR,
    INFO,
    SEVERITIES,
    WARN,
    Event,
    EventLog,
    NullEventLog,
    severity_rank,
)
from repro.obs.watch import Watchdog
from repro.obs.dashboard import render_dashboard
from repro.obs.dtrace import (
    DeliveryTracer,
    NullDeliveryTracer,
    TraceContext,
    TraceStore,
    analyze_delivery,
    get_dtrace,
    render_delivery_tree,
    set_dtrace,
    use_dtrace,
)

__all__ = [
    "COUNT_BUCKETS",
    "DEBUG",
    "DEFAULT_MAX_SERIES",
    "ERROR",
    "Event",
    "EventLog",
    "INFO",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "NullEventLog",
    "NullRegistry",
    "OVERFLOW_LABEL",
    "SEVERITIES",
    "SIZE_BUCKETS",
    "Counter",
    "DeliveryTracer",
    "Gauge",
    "Histogram",
    "NullDeliveryTracer",
    "Span",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "WARN",
    "Watchdog",
    "analyze_delivery",
    "diff",
    "get_dtrace",
    "get_event_log",
    "get_registry",
    "get_watchdog",
    "render_dashboard",
    "render_delivery_tree",
    "render_span_tree",
    "set_dtrace",
    "set_event_log",
    "set_registry",
    "set_watchdog",
    "severity_rank",
    "snapshot",
    "timeit",
    "to_exposition",
    "to_json",
    "to_lines",
    "trace",
    "use_dtrace",
    "use_event_log",
    "use_registry",
    "use_watchdog",
]

_registry: MetricsRegistry | NullRegistry = MetricsRegistry()

#: Process-default tracer (wall clock). Components trace through this
#: unless handed their own Tracer.
trace = Tracer()

#: Process-default flight recorder, correlated to the default tracer.
_event_log: EventLog | NullEventLog = EventLog(tracer=trace)

#: Process-default watchdog. No budgets by default — it only acts once
#: :meth:`Watchdog.set_budget` is called — but it is already wired to
#: every span the default tracer finishes.
_watchdog: Watchdog = Watchdog(event_log=_event_log)


def _watchdog_listener(span: Span) -> None:
    _watchdog.check(span.name, span.duration)


trace.add_listener(_watchdog_listener)


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-default registry instrumented code resolves handles from."""
    return _registry


def set_registry(registry: MetricsRegistry | NullRegistry) -> MetricsRegistry | NullRegistry:
    """Replace the default registry; returns it.

    Components cache instrument handles at construction, so swap before
    building whatever you want measured (or silenced).
    """
    global _registry
    _registry = registry
    return registry


@contextmanager
def use_registry(
    registry: MetricsRegistry | NullRegistry,
) -> Iterator[MetricsRegistry | NullRegistry]:
    """Temporarily install *registry* as the default (test isolation)."""
    previous = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def get_event_log() -> EventLog | NullEventLog:
    """The process-default flight recorder."""
    return _event_log


def set_event_log(event_log: EventLog | NullEventLog) -> EventLog | NullEventLog:
    """Replace the default flight recorder; returns it.

    The default watchdog follows along: its violations land in the new
    log. Components cache their log handle at construction, so swap
    before building whatever should record into it.
    """
    global _event_log
    _event_log = event_log
    _watchdog._event_log = event_log
    return event_log


@contextmanager
def use_event_log(
    event_log: EventLog | NullEventLog,
) -> Iterator[EventLog | NullEventLog]:
    """Temporarily install *event_log* as the default (test isolation)."""
    previous = get_event_log()
    set_event_log(event_log)
    try:
        yield event_log
    finally:
        set_event_log(previous)


def get_watchdog() -> Watchdog:
    """The process-default watchdog (listening to the default tracer)."""
    return _watchdog


def set_watchdog(watchdog: Watchdog) -> Watchdog:
    """Replace the default watchdog; returns it."""
    global _watchdog
    _watchdog = watchdog
    return watchdog


@contextmanager
def use_watchdog(watchdog: Watchdog) -> Iterator[Watchdog]:
    """Temporarily install *watchdog* as the default (test isolation)."""
    previous = get_watchdog()
    set_watchdog(watchdog)
    try:
        yield watchdog
    finally:
        set_watchdog(previous)


def snapshot() -> dict:
    """Snapshot of the default registry."""
    return _registry.snapshot()
