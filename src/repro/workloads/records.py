"""Generated medical-record documents of controlled size.

"The amount of information (the number of different components) in a
multimedia document may be very large ... it arrives from different
clinics, diagnostic centers, home and nursing care, laboratories" — this
generator produces records with that growth pattern: a configurable
number of sections, each holding image/text/audio components with
realistic payload sizes, plus author preferences that couple components
within a section (so CP-net reasoning has real structure to chew on).
"""

from __future__ import annotations

import random

from repro.document.builder import DocumentBuilder
from repro.document.document import MultimediaDocument
from repro.document.presentation import AudioFragment, Hidden, Icon, JPGImage, Text

KB = 1024

_SECTIONS = ("imaging", "labs", "consult", "nursing", "pathology", "pharmacy", "homecare")
_IMAGE_KINDS = ("ct", "xray", "mri", "ultrasound")


def generate_record(
    doc_id: str,
    sections: int = 3,
    components_per_section: int = 3,
    seed: int = 0,
) -> MultimediaDocument:
    """One synthetic medical record.

    Every section is a composite; components alternate between images
    (flat/icon/hidden with multi-hundred-KB flats), texts and audio
    notes. The first image of a section is its "centrepiece": later
    components in the same section prefer to shrink when it is shown
    (the paper's CT/X-ray coupling, generalized).
    """
    if sections < 1 or components_per_section < 1:
        raise ValueError("need >= 1 sections and components per section")
    rng = random.Random(seed)
    builder = DocumentBuilder(doc_id, title=f"Generated record {doc_id}")
    for section_index in range(sections):
        section = f"{_SECTIONS[section_index % len(_SECTIONS)]}{section_index}"
        builder.composite(section)
        builder.prefer(section, ["shown", "hidden"])
        centrepiece: str | None = None
        for component_index in range(components_per_section):
            path = f"{section}.item{component_index}"
            kind = rng.choice(("image", "image", "text", "audio"))
            if kind == "image":
                flat_size = rng.randint(128, 768) * KB
                builder.primitive(
                    path,
                    [
                        JPGImage("flat", size_bytes=flat_size, resolution=2),
                        Icon("icon", size_bytes=rng.randint(4, 12) * KB),
                        Hidden(),
                    ],
                    description=rng.choice(_IMAGE_KINDS),
                )
            elif kind == "text":
                builder.primitive(
                    path,
                    [
                        Text("full", size_bytes=rng.randint(2, 24) * KB),
                        Text("summary", size_bytes=rng.randint(1, 2) * KB),
                        Hidden(),
                    ],
                )
            else:
                builder.primitive(
                    path,
                    [
                        AudioFragment(
                            "play",
                            size_bytes=rng.randint(256, 1024) * KB,
                            duration_s=rng.uniform(20, 90),
                        ),
                        Text("transcript", size_bytes=rng.randint(2, 8) * KB),
                        Hidden(),
                    ],
                )
            # A record is too large for total exposure (paper §4): authors
            # default each component to its compact form; viewers expand.
            if kind == "image":
                domain = ("icon", "flat", "hidden")
            elif kind == "text":
                domain = ("summary", "full", "hidden")
            else:
                domain = ("transcript", "play", "hidden")
            builder.depends(path, on=[section])
            builder.prefer_when(path, {section: "shown"}, list(domain))
            builder.prefer_when(
                path, {section: "hidden"}, ["hidden", domain[0], domain[1]]
            )
            if kind == "image" and centrepiece is None:
                centrepiece = path
            elif centrepiece is not None and rng.random() < 0.5:
                # Couple to the centrepiece (the paper's CT/X-ray example):
                # when it is expanded to full size, this component yields
                # screen space — hidden or compact preferred.
                builder.depends(path, on=[section, centrepiece])
                builder.prefer_when(
                    path,
                    {section: "shown", centrepiece: "flat"},
                    ["hidden", domain[0], domain[1]],
                )
    return builder.build()


def generate_record_corpus(
    count: int,
    sections: int = 3,
    components_per_section: int = 3,
    seed: int = 0,
) -> list[MultimediaDocument]:
    """A corpus of generated records (distinct seeds per record)."""
    return [
        generate_record(
            f"gen-record-{index}",
            sections=sections,
            components_per_section=components_per_section,
            seed=seed * 1000 + index,
        )
        for index in range(count)
    ]
