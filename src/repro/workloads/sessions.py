"""Scripted viewer behaviour.

Viewer sessions are sequences of explicit presentation choices. Real
viewers mostly follow their interests *within* what the author laid out
(click the form the author ranked next), with occasional surprises; the
``rationality`` knob controls that mix, which is exactly the axis the
prefetch predictor's value depends on.
"""

from __future__ import annotations

import random

from repro.document.component import PrimitiveMultimediaComponent
from repro.document.document import MultimediaDocument


def consultation_events(
    document: MultimediaDocument,
    num_events: int = 10,
    rationality: float = 0.8,
    locality: float = 0.7,
    seed: int = 0,
) -> list[tuple[str, str]]:
    """A plausible consultation: choices biased toward the author's order.

    With probability *rationality* the viewer picks, for the attended
    component, the author's next-preferred alternative given the current
    configuration; otherwise a uniformly random alternative. Attention
    has *locality*: with that probability the next touched component sits
    in the same top-level section as the previous one (physicians drill
    into imaging, then move to labs, ...).
    """
    if not 0 <= rationality <= 1:
        raise ValueError(f"rationality must be in [0,1], got {rationality}")
    if not 0 <= locality <= 1:
        raise ValueError(f"locality must be in [0,1], got {locality}")
    rng = random.Random(seed)
    primitives = [
        path
        for path, node in document.components().items()
        if isinstance(node, PrimitiveMultimediaComponent)
    ]
    if not primitives:
        raise ValueError("document has no primitive components")
    events: list[tuple[str, str]] = []
    evidence: dict[str, str] = {}
    outcome = document.default_presentation()
    last_section: str | None = None
    for _ in range(num_events):
        pool = primitives
        if last_section is not None and rng.random() < locality:
            local = [p for p in primitives if p.split(".")[0] == last_section]
            if local:
                pool = local
        path = rng.choice(pool)
        last_section = path.split(".")[0]
        current = outcome[path]
        order = document.network.cpt(path).order_for(outcome)
        alternatives = [value for value in order if value != current]
        if not alternatives:
            continue
        if rng.random() < rationality:
            value = alternatives[0]  # the author's next-best form
        else:
            value = rng.choice(alternatives)
        events.append((path, value))
        evidence[path] = value
        outcome = document.reconfig_presentation(evidence)
    return events


def random_choice_events(
    document: MultimediaDocument, num_events: int = 10, seed: int = 0
) -> list[tuple[str, str]]:
    """Uniformly random choices (the adversarial lower bound for prefetch)."""
    return consultation_events(
        document, num_events=num_events, rationality=0.0, seed=seed
    )
