"""Schedule-driven mega-conference workload: flash crowds on purpose.

A real multi-track conference is nothing like the uniform room workloads
the cluster grew up on: parallel tracks of small rooms, a keynote flash
crowd where *everyone* joins one room inside a narrow window, and
session-boundary migration where every attendee changes rooms at once.
This module drives the cluster through a whole conference day from a
declarative schedule spec:

* :class:`SessionSlot` / :class:`ConferenceSchedule` — the spec: who is
  in which room, when joins open, when the speaker talks, when everyone
  migrates. :func:`build_conference_schedule` generates a deterministic
  multi-track day whose keynote join rate is >=10x the steady-state
  track rate (the overload that admission control exists to absorb).
* :func:`run_megaconf` — pre-plots the whole day on the simulated clock
  (joins staggered across each slot's window, speaker choices through
  each session, leaves and migrations at the boundaries), runs it, and
  reports p50/p99 join latency split into track vs keynote phases plus
  the cluster's admission/queue accounting.
* :func:`run_megaconf_convergence` — the chaos variant: a seeded fault
  window (and optionally a gateway crash) during the keynote, returning
  the same result shape as :func:`repro.workloads.chaos
  .run_chaos_conference` so the convergence harness can require the run
  to end byte-identical to its fault-free control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chaos.plan import FaultPlan
from repro.cluster.admission import LANE_CONTROL, AdmissionConfig
from repro.cluster.config import ClusterConfig
from repro.cluster.harness import ClusterHarness
from repro.db.orm import MultimediaObjectStore
from repro.workloads.records import generate_record
from repro.workloads.sessions import consultation_events

#: How long a deferred speaker waits before re-checking for its session.
_SPEAKER_RETRY_S = 0.25
_SPEAKER_RETRY_LIMIT = 120


@dataclass(frozen=True)
class SessionSlot:
    """One scheduled session: a room, its attendees, and its timing."""

    doc_id: str
    track: int
    start_s: float
    join_window_s: float
    duration_s: float
    attendees: tuple[str, ...]
    events: int
    keynote: bool = False

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def join_rate(self) -> float:
        """Joins per second this slot throws at the cluster."""
        return len(self.attendees) / max(self.join_window_s, 1e-9)


@dataclass(frozen=True)
class ConferenceSchedule:
    """A full conference day as an ordered tuple of session slots."""

    slots: tuple[SessionSlot, ...]
    horizon_s: float

    @property
    def attendees(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for slot in self.slots:
            for attendee in slot.attendees:
                seen.setdefault(attendee)
        return tuple(seen)

    @property
    def docs(self) -> tuple[str, ...]:
        return tuple(slot.doc_id for slot in self.slots)

    @property
    def keynote(self) -> SessionSlot | None:
        for slot in self.slots:
            if slot.keynote:
                return slot
        return None

    @property
    def steady_join_rate(self) -> float:
        """Aggregate join rate of one wave of parallel track sessions."""
        rates = [s.join_rate for s in self.slots if not s.keynote]
        if not rates:
            return 0.0
        tracks = len({s.track for s in self.slots if not s.keynote})
        return sum(rates) / max(1, len(rates)) * tracks

    @property
    def keynote_join_ratio(self) -> float | None:
        """Keynote join rate over steady-state — the flash-crowd factor."""
        keynote = self.keynote
        steady = self.steady_join_rate
        if keynote is None or steady <= 0:
            return None
        return keynote.join_rate / steady


def build_conference_schedule(
    tracks: int = 3,
    slots_per_track: int = 2,
    attendees_per_session: int = 4,
    session_s: float = 4.0,
    join_window_s: float = 3.0,
    gap_s: float = 1.0,
    keynote_window_s: float = 0.25,
    keynote_s: float = 6.0,
    events_per_session: int = 4,
    keynote_events: int = 6,
    drain_s: float = 10.0,
) -> ConferenceSchedule:
    """A deterministic multi-track day ending in a keynote flash crowd.

    Every attendee sits in exactly one track session per wave; at each
    session boundary the track assignment rotates, so the whole pool
    migrates rooms at once (the churn consistent hashing cannot spread).
    The keynote packs the *entire* pool into one room inside
    ``keynote_window_s`` — with the defaults that is 48 joins/s against
    a 4/s steady state, a 12x flash crowd.
    """
    pool = [f"a-{i}" for i in range(tracks * attendees_per_session)]
    period = join_window_s + session_s + gap_s
    slots: list[SessionSlot] = []
    for wave in range(slots_per_track):
        start = wave * period
        for track in range(tracks):
            attendees = tuple(
                pool[i]
                for i in range(len(pool))
                if ((i // attendees_per_session) + wave) % tracks == track
            )
            slots.append(
                SessionSlot(
                    doc_id=f"track{track}-s{wave}",
                    track=track,
                    start_s=start,
                    join_window_s=join_window_s,
                    duration_s=join_window_s + session_s,
                    attendees=attendees,
                    events=events_per_session,
                )
            )
    keynote_start = slots_per_track * period
    slots.append(
        SessionSlot(
            doc_id="keynote",
            track=-1,
            start_s=keynote_start,
            join_window_s=keynote_window_s,
            duration_s=keynote_window_s + keynote_s,
            attendees=tuple(pool),
            events=keynote_events,
            keynote=True,
        )
    )
    horizon = keynote_start + keynote_window_s + keynote_s + drain_s
    return ConferenceSchedule(slots=tuple(slots), horizon_s=horizon)


def percentile(samples: list[float], q: float) -> float | None:
    """Exact linear-interpolation percentile over raw samples."""
    if not samples:
        return None
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = (len(xs) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def _latency_summary(samples: list[float]) -> dict[str, Any]:
    return {
        "n": len(samples),
        "p50": percentile(samples, 0.50),
        "p99": percentile(samples, 0.99),
        "max": max(samples) if samples else None,
    }


def _admission_totals(harness: ClusterHarness) -> dict[str, Any]:
    controllers = [
        shard.admission for shard in harness.shards.values() if shard.admission
    ] + [gw.admission for gw in harness.gateways.values() if gw.admission]
    shed_by_lane: dict[str, int] = {}
    for controller in controllers:
        for lane, count in controller.shed_by_lane.items():
            shed_by_lane[lane] = shed_by_lane.get(lane, 0) + count
    return {
        "accepted": sum(c.accepted for c in controllers),
        "deferred": sum(c.deferred for c in controllers),
        "shed": sum(c.shed for c in controllers),
        "resumed": sum(c.resumed for c in controllers),
        "dropped_dead": sum(c.dropped_dead for c in controllers),
        "shed_by_lane": shed_by_lane,
        "control_shed": shed_by_lane.get(LANE_CONTROL, 0),
        "max_depth_seen": max((c.max_depth_seen for c in controllers), default=0),
        "parked_residue": sum(c.parked_count for c in controllers),
    }


def _queue_depths(harness: ClusterHarness) -> dict[str, int]:
    depths = {
        shard_id: shard.queue.max_pending
        for shard_id, shard in harness.shards.items()
    }
    for gateway_id, gateway in harness.gateways.items():
        if gateway._route_queue is not None:
            depths[gateway_id] = gateway._route_queue.max_pending
    return depths


def run_megaconf(
    store: MultimediaObjectStore,
    schedule: ConferenceSchedule | None = None,
    config: ClusterConfig | None = None,
    seed: int = 0,
    reliability: Any = None,
    plan: FaultPlan | None = None,
    heartbeats: bool = False,
) -> dict[str, Any]:
    """Drive one conference day; report join latency and admission stats.

    The whole day is plotted on the simulated clock before it runs:
    joins staggered across each slot's window, one speaker (the slot's
    first attendee) issuing its choice stream through the session, every
    attendee leaving at the slot boundary and joining the next room.
    Join latency is sampled per slot at the boundary (still-pending
    joins — deferred by admission, still in a rejoin loop — are sampled
    once more after the day drains) and split into ``track`` and
    ``keynote`` phases.
    """
    if schedule is None:
        schedule = build_conference_schedule()
    if config is None:
        config = ClusterConfig(shards=4, gateways=2, admission=AdmissionConfig())
    streams: dict[str, list[tuple[str, str]]] = {}
    for index, slot in enumerate(schedule.slots):
        record = generate_record(
            slot.doc_id, sections=2, components_per_section=3, seed=seed + index
        )
        store.store_document(record)
        streams[slot.doc_id] = consultation_events(
            record, num_events=max(1, slot.events), seed=37 + seed + index
        )
    harness = ClusterHarness(store, config, reliability=reliability, plan=plan)
    clients = {name: harness.add_client(name) for name in schedule.attendees}
    clock = harness.clock

    join_samples: dict[str, list[float]] = {"track": [], "keynote": []}
    pending_samples: list[tuple[Any, str]] = []

    def plot_slot(slot: SessionSlot) -> None:
        phase = "keynote" if slot.keynote else "track"
        count = len(slot.attendees)
        for j, name in enumerate(slot.attendees):
            join_at = slot.start_s + slot.join_window_s * j / max(1, count)
            clock.schedule_at(join_at, lambda c=clients[name], d=slot.doc_id: c.join(d))
        speaker = clients[slot.attendees[0]]
        talk_start = slot.start_s + slot.join_window_s
        talk_s = max(slot.duration_s - slot.join_window_s, 1e-6)
        for i, (path, value) in enumerate(streams[slot.doc_id][: slot.events]):
            at = talk_start + talk_s * (i + 0.5) / slot.events
            clock.schedule_at(at, _speaker_choice(clock, speaker, path, value))
        def collect() -> None:
            for name in slot.attendees:
                client = clients[name]
                if client.join_latency is not None:
                    join_samples[phase].append(client.join_latency)
                    client.join_latency = None
                else:
                    # Still deferred or mid-rejoin at the boundary; the
                    # post-drain sweep picks it up (or counts it late).
                    pending_samples.append((client, phase))
                if not slot.keynote and client.session_id is not None:
                    client.leave()
        clock.schedule_at(slot.end_s, collect)

    for slot in schedule.slots:
        plot_slot(slot)
    if heartbeats:
        harness.start(until=schedule.horizon_s)
    harness.run()

    late_joins = 0
    for client, phase in pending_samples:
        if client.join_latency is not None:
            join_samples[phase].append(client.join_latency)
            client.join_latency = None
        else:
            late_joins += 1

    all_clients = list(clients.values())
    return {
        "harness": harness,
        "schedule": schedule,
        "join_latency": {
            phase: _latency_summary(samples)
            for phase, samples in join_samples.items()
        },
        "join_samples": join_samples,
        "late_joins": late_joins,
        "admission": _admission_totals(harness),
        "queue_max_pending": _queue_depths(harness),
        "retry_afters": sum(len(c.retry_afters) for c in all_clients),
        "errors": [
            {"viewer": c.viewer_id, **error}
            for c in all_clients
            for error in c.errors
        ],
        "displayed": {c.viewer_id: c.displayed() for c in all_clients},
        "network_messages": harness.network.stats.messages,
        "network_bytes": harness.network.stats.bytes_total,
        "sim_seconds": clock.now,
    }


def _speaker_choice(clock: Any, speaker: Any, path: str, value: str):
    """A choice that waits (bounded) for the speaker's deferred join."""
    state = {"retries": 0}

    def fire() -> None:
        if speaker.session_id is None:
            state["retries"] += 1
            if state["retries"] <= _SPEAKER_RETRY_LIMIT:
                clock.schedule(_SPEAKER_RETRY_S, fire)
            return
        speaker.choose(path, value)

    return fire


#: Timing of the chaos window relative to the keynote slot start.
MEGACONF_PARTITION_LEN_S = 0.5
MEGACONF_GW_CRASH_AFTER_S = 3.0


def run_megaconf_convergence(
    store: MultimediaObjectStore,
    plan: FaultPlan | None = None,
    quick: bool = False,
    gateway_crash: bool = False,
    reliability: Any = True,
    failure_timeout: float = 2.0,
) -> dict[str, Any]:
    """The keynote flash crowd under seeded chaos, convergence-shaped.

    Same contract as :func:`repro.workloads.chaos.run_chaos_conference`:
    with ``plan=None`` this is the fault-free control; a seeded run must
    end with byte-identical ``displayed`` state. The fault window (a
    partition between the keynote speaker's gateway and the keynote's
    owning shard) opens exactly over the keynote join window, and with
    ``gateway_crash=True`` that same gateway fail-stops mid-keynote —
    after the join wave has acked, so the failover replay (not a
    pending-join race) is what heals the crowd. Admission control is ON
    with a shed threshold high enough that only JOIN deferral engages:
    the flash crowd is absorbed by bounded deferral in both runs.
    """
    schedule = build_conference_schedule(
        tracks=2,
        slots_per_track=1 if quick else 2,
        attendees_per_session=2 if quick else 3,
        session_s=2.0,
        join_window_s=1.5,
        keynote_window_s=0.1,
        keynote_s=6.0,
        events_per_session=2,
        keynote_events=3 if quick else 5,
    )
    # service_rate vs the keynote wave is tuned so JOIN deferral really
    # engages (arrivals outpace 20 ops/s over the 0.1 s window) while
    # track-phase traffic clears the depth-2 threshold untouched.
    config = ClusterConfig(
        shards=3,
        gateways=2,
        service_rate=20.0,
        failure_timeout=failure_timeout,
        admission=AdmissionConfig(
            depth_defer=2,
            depth_shed=10_000,   # data ops never shed: deferral only
            defer_limit=10_000,  # joins never bounce: park, don't drop
        ),
    )
    base_store = store
    harness_kwargs = dict(reliability=reliability, plan=plan)
    # Build via run_megaconf's own plotting, but we need the harness
    # before run() to place the partition/crash — so replicate the small
    # amount of setup here with hooks at the right times.
    streams: dict[str, list[tuple[str, str]]] = {}
    for index, slot in enumerate(schedule.slots):
        record = generate_record(
            slot.doc_id, sections=2, components_per_section=3, seed=index
        )
        base_store.store_document(record)
        streams[slot.doc_id] = consultation_events(
            record, num_events=max(1, slot.events), seed=37 + index
        )
    harness = ClusterHarness(base_store, config, **harness_kwargs)
    clients = {name: harness.add_client(name) for name in schedule.attendees}
    clock = harness.clock

    keynote = schedule.keynote
    speaker_home = harness.network.home_of(clients[keynote.attendees[0]].node_id)
    gw_victim = speaker_home if gateway_crash else None
    if plan is not None:
        # The fault window crosses the keynote join wave: the speaker's
        # gateway loses sight of the keynote shard exactly while the
        # crowd stampedes in, so deferred joins and retransmits overlap.
        plan.partition(
            {speaker_home},
            {harness.owner_of(keynote.doc_id)},
            keynote.start_s,
            keynote.start_s + MEGACONF_PARTITION_LEN_S,
        )

    for slot in schedule.slots:
        count = len(slot.attendees)
        for j, name in enumerate(slot.attendees):
            join_at = slot.start_s + slot.join_window_s * j / max(1, count)
            clock.schedule_at(join_at, lambda c=clients[name], d=slot.doc_id: c.join(d))
        speaker = clients[slot.attendees[0]]
        talk_start = slot.start_s + slot.join_window_s
        talk_s = max(slot.duration_s - slot.join_window_s, 1e-6)
        for i, (path, value) in enumerate(streams[slot.doc_id][: slot.events]):
            at = talk_start + talk_s * (i + 0.5) / slot.events
            clock.schedule_at(at, _speaker_choice(clock, speaker, path, value))
        if not slot.keynote:
            def leave_all(s: SessionSlot = slot) -> None:
                for name in s.attendees:
                    if clients[name].session_id is not None:
                        clients[name].leave()
            clock.schedule_at(slot.end_s, leave_all)

    harness.start(until=schedule.horizon_s)
    if gw_victim is not None:
        harness.schedule_crash(
            gw_victim, keynote.start_s + MEGACONF_GW_CRASH_AFTER_S
        )
    harness.run()

    all_clients = list(clients.values())
    failures = [
        {
            "sender": failure.sender,
            "recipient": failure.recipient,
            "kind": failure.kind,
            "reason": failure.reason,
        }
        for failure in harness.network.delivery_failures
    ]
    healed_recipients = {gw_victim} if gw_victim is not None else set()
    return {
        "harness": harness,
        "victim": None,
        "gateway_victim": gw_victim,
        "displayed": {c.viewer_id: c.displayed() for c in all_clients},
        "fully_rendered": {c.viewer_id: c.fully_rendered() for c in all_clients},
        "errors": [
            {"viewer": c.viewer_id, **error}
            for c in all_clients
            for error in c.errors
        ],
        "delivery_failures": [
            f for f in failures if f["recipient"] not in healed_recipients
        ],
        "expected_delivery_failures": [
            f for f in failures if f["recipient"] in healed_recipients
        ],
        "injected": (
            harness.network.injected_counts()
            if hasattr(harness.network, "injected_counts")
            else {}
        ),
        "admission": _admission_totals(harness),
        "failovers": list(harness.failovers),
        "gateway_failovers": list(harness.gateway_failovers),
        "network_messages": harness.network.stats.messages,
        "network_bytes": harness.network.stats.bytes_total,
        "sim_seconds": clock.now,
    }
