"""Cluster-scale conferencing workload.

One scenario drives many concurrent consultations through a sharded
cluster: each document gets its own room, each room its own scripted
viewers, and every room's choice stream is issued up front so the
simulated network and the shards' service queues decide the makespan.
The returned summary carries enough state (each client's final displayed
presentation) for failover experiments to assert byte-identical outcomes
against a no-failure control run.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.config import ClusterConfig
from repro.cluster.harness import ClusterHarness
from repro.db.orm import MultimediaObjectStore
from repro.workloads.records import generate_record
from repro.workloads.sessions import consultation_events


def run_cluster_conference(
    store: MultimediaObjectStore,
    num_shards: int = 2,
    num_rooms: int = 6,
    clients_per_room: int = 2,
    events_per_room: int = 8,
    service_rate: float | None = 200.0,
    sections: int = 2,
    components_per_section: int = 3,
    seed: int = 0,
    harness: ClusterHarness | None = None,
    batch_window_s: float = 0.0,
    config: ClusterConfig | None = None,
) -> dict[str, Any]:
    """Run *num_rooms* concurrent consultations through a cluster.

    Documents ``case-0 .. case-{n-1}`` are generated and stored, one room
    per document, *clients_per_room* viewers each. The first viewer in
    every room issues that room's scripted choice stream; the run then
    drives the network to quiescence. Throughput is propagated choices
    per simulated second of makespan — with a finite *service_rate* the
    shards' serial service queues are the bottleneck, which is what makes
    scale-out measurable.

    Pass a prebuilt *harness* to observe or perturb the run (e.g. crash a
    shard mid-conference); otherwise one is built with *num_shards* — or
    from *config*, which overrides the individual topology knobs and can
    turn on the gateway tier (``ClusterConfig(gateways >= 1)``).
    """
    docs = [f"case-{i}" for i in range(num_rooms)]
    records = {}
    for index, doc_id in enumerate(docs):
        record = generate_record(
            doc_id,
            sections=sections,
            components_per_section=components_per_section,
            seed=seed + index,
        )
        records[doc_id] = record
        store.store_document(record)
    if harness is None:
        if config is not None:
            harness = ClusterHarness(store, config)
        else:
            harness = ClusterHarness(
                store, num_shards=num_shards, service_rate=service_rate,
                batch_window_s=batch_window_s,
            )
    clients: dict[str, list[Any]] = {}
    for index, doc_id in enumerate(docs):
        room_clients = []
        for viewer in range(clients_per_room):
            client = harness.add_client(f"viewer-{index}-{viewer}")
            client.join(doc_id)
            room_clients.append(client)
        clients[doc_id] = room_clients
    harness.run()
    join_done = harness.clock.now
    total_events = 0
    for index, doc_id in enumerate(docs):
        events = consultation_events(
            records[doc_id], num_events=events_per_room, seed=seed + index
        )
        for path, value in events:
            clients[doc_id][0].choose(path, value)
        total_events += len(events)
    harness.run()
    makespan = harness.clock.now - join_done
    errors = [
        {"viewer": client.viewer_id, **error}
        for room in clients.values()
        for client in room
        for error in client.errors
    ]
    rooms_by_shard: dict[str, int] = {}
    for doc_id in docs:
        owner = harness.owner_of(doc_id)
        rooms_by_shard[owner] = rooms_by_shard.get(owner, 0) + 1
    return {
        "shards": len(harness.shards),
        "rooms": num_rooms,
        "clients": num_rooms * clients_per_room,
        "events": total_events,
        "errors": errors,
        "sim_seconds": makespan,
        "throughput_eps": total_events / makespan if makespan > 0 else 0.0,
        "rooms_by_shard": dict(sorted(rooms_by_shard.items())),
        "displayed": {
            client.viewer_id: client.displayed()
            for room in clients.values()
            for client in room
        },
        "network_bytes": harness.network.stats.bytes_total,
        "network_messages": harness.network.stats.messages,
        "gateways": len(harness.gateways),
        "route_cache": (
            harness.route_cache_stats() if harness.config.tiered else None
        ),
        "harness": harness,
    }
