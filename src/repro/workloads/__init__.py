"""Synthetic workloads for examples, tests and benchmarks.

* :mod:`repro.workloads.records` — generated medical-record documents of
  controlled size/shape (the corpus behind the database and room
  benchmarks);
* :mod:`repro.workloads.sessions` — scripted viewer behaviour: sequences
  of presentation choices that are mostly preference-plausible with a
  controllable fraction of surprises (what the prefetch study replays);
* :mod:`repro.workloads.cluster` — many concurrent consultations driven
  through a sharded cluster (the scale-out benchmark's scenario);
* :mod:`repro.workloads.chaos` — the three-phase conference the chaos
  convergence suite replays under seeded fault plans;
* :mod:`repro.workloads.interest` — deterministic sparse "who watches
  what" subscription shapes (the interest-management scenario);
* :mod:`repro.workloads.megaconf` — a schedule-driven mega-conference
  day: parallel tracks, session-boundary migration and a keynote flash
  crowd (the admission-control benchmark's overload scenario).
"""

from repro.workloads.chaos import run_chaos_conference
from repro.workloads.cluster import run_cluster_conference
from repro.workloads.interest import primitive_paths, sparse_subscriptions
from repro.workloads.megaconf import (
    ConferenceSchedule,
    SessionSlot,
    build_conference_schedule,
    run_megaconf,
    run_megaconf_convergence,
)
from repro.workloads.records import generate_record, generate_record_corpus
from repro.workloads.sessions import consultation_events, random_choice_events

__all__ = [
    "ConferenceSchedule",
    "SessionSlot",
    "build_conference_schedule",
    "consultation_events",
    "generate_record",
    "generate_record_corpus",
    "primitive_paths",
    "random_choice_events",
    "run_chaos_conference",
    "run_cluster_conference",
    "run_megaconf",
    "run_megaconf_convergence",
    "sparse_subscriptions",
]
