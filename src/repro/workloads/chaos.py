"""Chaos conferencing workload: the convergence acceptance scenario.

One conference, three phases of scripted choices, driven through a
sharded cluster whose network is (optionally) injecting faults from a
seeded :class:`~repro.chaos.FaultPlan`. The phases are placed on the
simulated clock so the interesting windows actually carry traffic:

- phase 1 runs to quiescence before fault windows open (a warm, stable
  baseline of rooms and sessions);
- phase 2 fires just before the partition window opens, so its frames
  are cut mid-flight and must be repaired by the reliable transport;
- an optional primary crash fail-stops one shard afterwards, forcing a
  promotion under fire;
- phase 3 fires after failover has re-homed the sessions, through the
  promoted shard.

Each phase has a single writer per room (the room's viewer 0, then
viewer 1), so the fault-free final state is unique and a chaos run can
be required to converge to it **byte-identically** — the assertion made
by :mod:`repro.chaos.convergence`.
"""

from __future__ import annotations

from typing import Any

from repro.chaos.plan import FaultPlan
from repro.cluster.config import ClusterConfig
from repro.cluster.harness import ClusterHarness
from repro.db.orm import MultimediaObjectStore
from repro.workloads.interest import primitive_paths
from repro.workloads.records import generate_record
from repro.workloads.sessions import consultation_events

#: Phase/window placement: offsets in simulated seconds from the moment
#: phase 1 has fully drained (the timeline anchor).
PHASE2_AT = 2.9
PARTITION_START = 3.0
PARTITION_END = 4.0
GW_CRASH_AT = 3.5  # a gateway dies *inside* the partition window
CRASH_AT = 6.0
PHASE3_AT = 12.0
HORIZON = 30.0


def run_chaos_conference(
    store: MultimediaObjectStore,
    plan: FaultPlan | None = None,
    num_shards: int = 3,
    num_rooms: int = 3,
    clients_per_room: int = 2,
    events_per_room: int = 6,
    seed: int = 0,
    crash_owner_of: str | None = None,
    partition: bool = False,
    failure_timeout: float = 2.0,
    horizon: float = HORIZON,
    reliability: Any = True,
    interest_churn: bool = False,
    gateway_crash: bool = False,
    num_gateways: int = 2,
) -> dict[str, Any]:
    """Drive the three-phase conference; return the final client state.

    With ``plan=None`` this is the fault-free control run (same code
    path, same reliable transport, no faults). ``partition=True`` adds a
    gateway↔shard partition window to *plan* over phase 2; the window
    (1.0 s) is shorter than *failure_timeout* by design — a partition
    this brief must be repaired by retransmission, not by failover.
    ``crash_owner_of`` names a document whose owning shard fail-stops at
    :data:`CRASH_AT`, which *is* long enough to trigger failover.

    ``interest_churn=True`` turns on CP-net interest management and has
    each room's viewer 1 narrow, then churn, its subscription set across
    the same fault windows the choices cross — duplicated, reordered and
    dropped SUBSCRIBE/UNSUBSCRIBE frames land on the registry and ride
    the replication log through the crash. After its own phase-3 choices
    the churning client issues one replace-all re-subscribe; the ack's
    catch-up diff (computed against what the server *actually* sent it)
    heals whatever the churn raced past, so seeded runs must still end
    byte-identical to the control.

    ``gateway_crash=True`` runs the conference through the sharded
    gateway tier (*num_gateways* gateways behind a directory) and
    fail-stops the gateway homing room 0's writer at :data:`GW_CRASH_AT`
    — inside the partition window when ``partition=True``. Its clients
    re-home to a survivor and replay; the control run performs the same
    crash (the op_seq stamps must match byte-for-byte), just without
    network faults. Frames that die *with* the victim gateway are
    reported separately as ``expected_delivery_failures`` — they are
    healed by the replay, not lost.
    """
    docs = [f"case-{i}" for i in range(num_rooms)]
    records = {}
    for index, doc_id in enumerate(docs):
        record = generate_record(
            doc_id, sections=2, components_per_section=3, seed=seed + index
        )
        records[doc_id] = record
        store.store_document(record)
    if gateway_crash:
        config = ClusterConfig(
            shards=num_shards,
            gateways=num_gateways,
            failure_timeout=failure_timeout,
            interest_mode="cpnet" if interest_churn else "off",
        )
        harness = ClusterHarness(store, config, reliability=reliability, plan=plan)
    else:
        harness = ClusterHarness(
            store,
            num_shards=num_shards,
            failure_timeout=failure_timeout,
            reliability=reliability,
            plan=plan,
            interest_mode="cpnet" if interest_churn else "off",
        )
    primitives = {doc_id: primitive_paths(records[doc_id]) for doc_id in docs}
    churning = interest_churn and clients_per_room > 1
    clients: dict[str, list[Any]] = {}
    for index, doc_id in enumerate(docs):
        room = [
            harness.add_client(f"cv-{index}-{j}") for j in range(clients_per_room)
        ]
        for client in room:
            client.join(doc_id)
        clients[doc_id] = room
    harness.run()

    streams = {
        doc_id: consultation_events(
            records[doc_id], num_events=events_per_room, seed=37 + seed + index
        )
        for index, doc_id in enumerate(docs)
    }
    third = max(1, events_per_room // 3)

    # Phase 1: a stable baseline, drained before any window opens.
    for doc_id in docs:
        for path, value in streams[doc_id][:third]:
            clients[doc_id][0].choose(path, value)
        if churning:
            # Viewer 1 narrows to half the primitives before any fault
            # window opens; viewer 0 keeps its CP-net-seeded interest.
            paths = primitives[doc_id]
            clients[doc_id][1].subscribe(paths[: len(paths) // 2], replace=True)
    harness.run()

    base = harness.clock.now  # timeline anchor: phase 1 fully drained
    victim = harness.owner_of(crash_owner_of) if crash_owner_of else None
    # The gateway to kill: whoever homes room 0's writer — guaranteed to
    # have parked ops and a learned route cache when it dies.
    gw_victim = (
        harness.network.home_of(clients[docs[0]][0].node_id)
        if gateway_crash
        else None
    )
    if partition:
        if plan is None:
            raise ValueError("partition=True needs a FaultPlan to carry the window")
        if gw_victim is not None:
            # Cut the doomed gateway off from room 0's owning shard: the
            # crash then lands mid-repair, the worst-case interleaving.
            plan.partition(
                {gw_victim},
                {harness.owner_of(docs[0])},
                base + PARTITION_START,
                base + PARTITION_END,
            )
        else:
            # Cut the gateway off from one shard that is NOT the crash
            # victim: the partition must be survivable by retries alone.
            target = next(s for s in sorted(harness.shards) if s != victim)
            plan.partition(
                {harness.gateway.node_id},
                {target},
                base + PARTITION_START,
                base + PARTITION_END,
            )

    harness.start(until=base + horizon)

    def phase2() -> None:
        for doc_id in docs:
            paths = primitives[doc_id]
            for i, (path, value) in enumerate(streams[doc_id][third : 2 * third]):
                clients[doc_id][0].choose(path, value)
                if churning:
                    # Subscription churn racing the partition window the
                    # choices cross: these frames get dropped, duplicated
                    # and reordered right alongside the updates they gate.
                    clients[doc_id][1].unsubscribe([paths[i % len(paths)]])
                    clients[doc_id][1].subscribe([paths[(i + 1) % len(paths)]])

    def phase3() -> None:
        for doc_id in docs:
            for path, value in streams[doc_id][2 * third :]:
                clients[doc_id][1].choose(path, value)
            if churning:
                # The healing re-subscribe: the ack's catch-up diff fills
                # in everything interest filtering withheld during churn.
                clients[doc_id][1].subscribe(primitives[doc_id], replace=True)

    harness.clock.schedule_at(base + PHASE2_AT, phase2)
    if gw_victim is not None:
        harness.schedule_crash(gw_victim, base + GW_CRASH_AT)
    if victim is not None:
        harness.schedule_crash(victim, base + CRASH_AT)
    harness.clock.schedule_at(base + PHASE3_AT, phase3)
    harness.run()

    all_clients = [client for room in clients.values() for client in room]
    failures = [
        {
            "sender": failure.sender,
            "recipient": failure.recipient,
            "kind": failure.kind,
            "reason": failure.reason,
        }
        for failure in harness.network.delivery_failures
    ]
    # Frames that died *with* a crashed node are expected and healed —
    # the gateway failover replay covers the gateway victim's, and the
    # routing retry covers envelopes in flight to the crashed shard when
    # the replay races the shard crash. Anything else is a real loss.
    # (Legacy mode keeps full strictness: no gateway victim, no filter.)
    healed_recipients = set()
    if gw_victim is not None:
        healed_recipients.add(gw_victim)
        if victim is not None:
            healed_recipients.add(victim)
    expected_failures = [f for f in failures if f["recipient"] in healed_recipients]
    residual_failures = [
        f for f in failures if f["recipient"] not in healed_recipients
    ]
    return {
        "harness": harness,
        "victim": victim,
        "gateway_victim": gw_victim,
        "displayed": {c.viewer_id: c.displayed() for c in all_clients},
        "fully_rendered": {c.viewer_id: c.fully_rendered() for c in all_clients},
        "errors": [
            {"viewer": c.viewer_id, **error}
            for c in all_clients
            for error in c.errors
        ],
        "delivery_failures": residual_failures,
        "expected_delivery_failures": expected_failures,
        "injected": (
            harness.network.injected_counts()
            if hasattr(harness.network, "injected_counts")
            else {}
        ),
        "failovers": list(harness.failovers),
        "gateway_failovers": list(harness.gateway_failovers),
        "network_messages": harness.network.stats.messages,
        "network_bytes": harness.network.stats.bytes_total,
        "sim_seconds": harness.clock.now,
    }
