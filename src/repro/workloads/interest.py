"""Sparse-interest conference shapes (benchmark E14, chaos churn).

A conferencing room rarely has every member watching every stream: a
64-member consultation over a 50-component record where each member
follows ~4 streams is ~8% coverage, and interest-managed fan-out should
cut wire bytes roughly by that factor. These helpers carve deterministic
sparse subscription sets out of a generated record so benchmarks, tests
and the chaos workload all shape "who watches what" the same way.
"""

from __future__ import annotations

from typing import Sequence

from repro.document.component import PrimitiveMultimediaComponent
from repro.document.document import MultimediaDocument

#: Streams each member follows in the sparse-interest scenario.
STREAMS_PER_MEMBER = 4


def primitive_paths(document: MultimediaDocument) -> list[str]:
    """Sorted paths of the document's primitive components (the streams)."""
    return sorted(
        path
        for path, node in document.components().items()
        if isinstance(node, PrimitiveMultimediaComponent)
    )


def sparse_subscriptions(
    paths: Sequence[str], member_index: int, streams: int = STREAMS_PER_MEMBER
) -> list[str]:
    """The *streams* consecutive paths member *member_index* watches.

    Members tile the path list with wrap-around, so coverage of any one
    path is ``population * streams / len(paths)`` on average — sparse as
    long as the room watches fewer streams than it has member-slots.
    """
    if not paths:
        return []
    start = (member_index * streams) % len(paths)
    return [paths[(start + i) % len(paths)] for i in range(streams)]
