"""Author-side builder assembling a document tree and its CP-network together.

The builder keeps the two halves aligned by construction: every component
automatically becomes a CP-net variable (named by its path, with the
component's presentation domain); preference statements then reference
components by path. Components without any explicit preference get the
default "first alternative preferred" rule, mirroring
:func:`repro.cpnet.updates.add_component_variable`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import DocumentError
from repro.cpnet.network import CPNet
from repro.document.component import (
    CompositeMultimediaComponent,
    PrimitiveMultimediaComponent,
)
from repro.document.document import MultimediaDocument
from repro.document.presentation import MMPresentation


class DocumentBuilder:
    """Fluent construction of a :class:`MultimediaDocument`.

    Example::

        doc = (
            DocumentBuilder("record-17", title="Patient 17")
            .composite("imaging")
            .primitive("imaging.ct", [JPGImage("flat", 512_000), Hidden()])
            .depends("imaging.ct", on=["imaging"])
            .prefer_when("imaging.ct", {"imaging": "shown"}, ["flat", "hidden"])
            .prefer_when("imaging.ct", {}, ["hidden", "flat"])
            .build()
        )
    """

    def __init__(self, doc_id: str, title: str = "", root_name: str = "root") -> None:
        self.doc_id = doc_id
        self.title = title
        self._root = CompositeMultimediaComponent(root_name, description=title)
        self._parents: dict[str, tuple[str, ...]] = {}
        self._rules: dict[str, list[tuple[dict[str, str], tuple[str, ...]]]] = {}
        self._built = False

    # ----- tree ----------------------------------------------------------------

    def composite(self, path: str, description: str = "") -> "DocumentBuilder":
        """Add an internal grouping node at *path* (parents must exist)."""
        self._check_open()
        parent, name = self._resolve_parent(path)
        parent.add(CompositeMultimediaComponent(name, description))
        return self

    def primitive(
        self,
        path: str,
        presentations: Iterable[MMPresentation],
        description: str = "",
    ) -> "DocumentBuilder":
        """Add a leaf component with its presentation alternatives."""
        self._check_open()
        parent, name = self._resolve_parent(path)
        parent.add(PrimitiveMultimediaComponent(name, presentations, description))
        return self

    def _resolve_parent(self, path: str) -> tuple[CompositeMultimediaComponent, str]:
        prefix, _, name = path.rpartition(".")
        parent = self._root if not prefix else self._root.find(prefix)
        if not isinstance(parent, CompositeMultimediaComponent):
            raise DocumentError(f"parent of {path!r} is not a composite component")
        return parent, name

    # ----- preferences ------------------------------------------------------------

    def depends(self, path: str, on: Iterable[str]) -> "DocumentBuilder":
        """Declare that the preference over *path* is conditioned on *on*."""
        self._check_open()
        self._root.find(path)
        parents = tuple(on)
        for parent in parents:
            self._root.find(parent)
        self._parents[path] = parents
        return self

    def prefer(self, path: str, order: Iterable[str]) -> "DocumentBuilder":
        """Unconditional author preference over the alternatives of *path*."""
        return self.prefer_when(path, {}, order)

    def prefer_when(
        self, path: str, condition: Mapping[str, str], order: Iterable[str]
    ) -> "DocumentBuilder":
        """Conditional author preference (condition names are component paths)."""
        self._check_open()
        self._root.find(path)
        self._rules.setdefault(path, []).append((dict(condition), tuple(order)))
        return self

    # ----- assembly -----------------------------------------------------------------

    def build(self, validate: bool = True, max_space: int = 100_000) -> MultimediaDocument:
        """Assemble the document; validates tree/network alignment."""
        self._check_open()
        self._built = True
        network = CPNet(name=self.doc_id)
        ordered = self._topological_component_order()
        for node in ordered:
            path = node.path
            network.add_variable(
                path,
                node.domain,
                parents=self._parents.get(path, ()),
                description=node.description,
            )
            rules = self._rules.get(path)
            if rules:
                for condition, order in rules:
                    network.add_rule(path, condition, order)
            else:
                network.add_rule(path, {}, node.domain)
        if validate:
            network.validate(max_space=max_space)
        return MultimediaDocument(self.doc_id, self._root, network, title=self.title)

    def _topological_component_order(self):
        """Order components so declared CP-net parents come first."""
        nodes = {n.path: n for n in self._root.iter_tree() if n is not self._root}
        for path, parents in self._parents.items():
            for parent in parents:
                if parent not in nodes:
                    raise DocumentError(f"depends({path!r}) references unknown {parent!r}")
        remaining = dict(nodes)
        ordered = []
        placed: set[str] = set()
        while remaining:
            progress = False
            for path in list(remaining):
                parents = self._parents.get(path, ())
                if all(p in placed for p in parents):
                    ordered.append(remaining.pop(path))
                    placed.add(path)
                    progress = True
            if not progress:
                raise DocumentError(
                    f"cyclic 'depends' declarations among {sorted(remaining)}"
                )
        return ordered

    def _check_open(self) -> None:
        if self._built:
            raise DocumentError("builder already produced its document; create a new one")
