"""The multimedia document: content tree + author preference network.

Implements the §5.1 interface table verbatim:

=============================  =================================================
``get_content()``              accessor to the component tree
``default_presentation()``     optimal presentation given no viewer choices
``reconfig_presentation(ev)``  optimal presentation given the viewers' choices
=============================  =================================================

Both presentation queries delegate to the CP-network, exactly as the
paper's class diagram shows.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import DocumentError
from repro.cpnet.compiled import (
    CompletionCache,
    compile_cpnet,
    compiled_enabled,
    completion_key,
)
from repro.cpnet.network import CPNet
from repro.cpnet.reasoning import best_completion, optimal_outcome
from repro.cpnet.updates import add_component_variable, remove_component_variable
from repro.document.component import (
    COMPOSITE_HIDDEN,
    CompositeMultimediaComponent,
    MultimediaComponent,
    PrimitiveMultimediaComponent,
)


class MultimediaDocument:
    """A hierarchical multimedia document with CP-net-driven presentation.

    Parameters
    ----------
    doc_id:
        Database identity of the document.
    root:
        The content tree (e.g. the actual Medical Record).
    network:
        The author's CP-network. It must contain exactly one variable per
        non-root component, named by the component's dotted path, with the
        component's domain (checked eagerly).
    title:
        Human-readable title.
    """

    def __init__(
        self,
        doc_id: str,
        root: CompositeMultimediaComponent,
        network: CPNet,
        title: str = "",
    ) -> None:
        if not isinstance(root, CompositeMultimediaComponent):
            raise DocumentError("document root must be a composite component")
        self.doc_id = doc_id
        self.title = title or doc_id
        self._root = root
        self._network = network
        #: Optional shard-scoped completion memo; the owning server sets
        #: this when it opens the document so direct §5.1 queries share
        #: entries with the presentation engines.
        self.completion_cache: CompletionCache | None = None
        self._check_alignment()

    # ----- structure ------------------------------------------------------------

    def get_content(self) -> CompositeMultimediaComponent:
        """Accessor method to the component tree (paper §5.1)."""
        return self._root

    @property
    def network(self) -> CPNet:
        """The author's CP-network (a *static part* of the document)."""
        return self._network

    def component(self, path: str) -> MultimediaComponent:
        """Resolve a component by dotted path from the root."""
        return self._root.find(path)

    def components(self) -> dict[str, MultimediaComponent]:
        """All non-root components keyed by path (pre-order)."""
        return {node.path: node for node in self._root.iter_tree() if node is not self._root}

    def component_paths(self) -> tuple[str, ...]:
        return tuple(self.components())

    def _check_alignment(self) -> None:
        components = self.components()
        missing = [path for path in components if path not in self._network]
        if missing:
            raise DocumentError(
                f"document {self.doc_id!r}: CP-net has no variable for components {missing}"
            )
        extra = [
            name
            for name in self._network.variable_names
            if name not in components and not self._is_operation_variable(name, components)
        ]
        if extra:
            raise DocumentError(
                f"document {self.doc_id!r}: CP-net variables without components: {extra}"
            )
        for path, node in components.items():
            declared = self._network.variable(path).domain
            if set(declared) != set(node.domain):
                raise DocumentError(
                    f"component {path!r} domain {node.domain} does not match "
                    f"CP-net domain {declared}"
                )

    @staticmethod
    def _is_operation_variable(name: str, components: Mapping[str, object]) -> bool:
        """Non-component variables the network may legitimately hold:
        operation variables ``<component-path>.<operation>`` (§4.2) and
        reserved ``tuning.*`` variables (§4.4)."""
        if name.startswith("tuning."):
            return True
        prefix, _, __ = name.rpartition(".")
        return prefix in components

    # ----- presentation queries ---------------------------------------------------

    def default_presentation(self) -> dict[str, str]:
        """The optimal presentation given no choices of the viewers."""
        return self._enforce_subtree_hiding(self._best_completion({}))

    def reconfig_presentation(
        self, events: Mapping[str, str] | Iterable[tuple[str, str]]
    ) -> dict[str, str]:
        """Optimal configuration given the viewers' recent decisions.

        *events* maps component paths to the presentation value the viewer
        explicitly chose (later duplicates win, matching "recent choices").
        """
        evidence = dict(events if isinstance(events, Mapping) else list(events))
        return self._enforce_subtree_hiding(self._best_completion(evidence))

    def _best_completion(self, evidence: Mapping[str, str]) -> dict[str, str]:
        """One sweep over the author network, compiled when enabled and
        shared through the server's completion cache when one is attached
        (overlay ``()`` — these queries see no viewer extension)."""
        if not compiled_enabled():
            if not evidence:
                return optimal_outcome(self._network)
            return best_completion(self._network, evidence)
        compiled = compile_cpnet(self._network)
        if self.completion_cache is None:
            return compiled.best_completion(evidence)
        key = completion_key(
            self.doc_id, self._network.version_token, (), evidence
        )
        cached = self.completion_cache.lookup(key)
        if cached is not None:
            return cached
        outcome = compiled.best_completion(evidence)
        self.completion_cache.store(key, outcome)
        return outcome

    def _enforce_subtree_hiding(self, outcome: dict[str, str]) -> dict[str, str]:
        """Hiding a composite hides every descendant, whatever the CPT says."""
        for path, node in self.components().items():
            if isinstance(node, CompositeMultimediaComponent):
                if outcome.get(path) == COMPOSITE_HIDDEN:
                    for descendant in node.iter_tree():
                        if descendant is node:
                            continue
                        child_path = descendant.path
                        hidden = self._hidden_value(descendant)
                        if hidden is not None:
                            outcome[child_path] = hidden
        return outcome

    @staticmethod
    def _hidden_value(node: MultimediaComponent) -> str | None:
        """The domain value meaning "not displayed", if the component has one."""
        if isinstance(node, CompositeMultimediaComponent):
            return COMPOSITE_HIDDEN
        if COMPOSITE_HIDDEN in node.domain:
            return COMPOSITE_HIDDEN
        return None

    # ----- derived measures ----------------------------------------------------------

    def presentation_bytes(self, outcome: Mapping[str, str]) -> int:
        """Total bytes a client must receive to render *outcome*."""
        total = 0
        for path, node in self.components().items():
            if path in outcome:
                total += node.presentation_size(outcome[path])
        return total

    def visible_components(self, outcome: Mapping[str, str]) -> tuple[str, ...]:
        """Paths whose chosen presentation actually displays something."""
        visible = []
        for path, node in self.components().items():
            value = outcome.get(path)
            if value is None or value == COMPOSITE_HIDDEN:
                continue
            if isinstance(node, PrimitiveMultimediaComponent):
                if node.presentation(value).is_hidden:
                    continue
            visible.append(path)
        return tuple(visible)

    # ----- online updates (delegating the §4.2 policies) ---------------------------

    def add_component(
        self,
        parent_path: str | None,
        component: MultimediaComponent,
        network_parents: Iterable[str] = (),
        preferred_order: Iterable[str] | None = None,
    ) -> MultimediaComponent:
        """Attach a new component and register it in the CP-network."""
        parent = self._root if parent_path is None else self._root.find(parent_path)
        if not isinstance(parent, CompositeMultimediaComponent):
            raise DocumentError(f"{parent_path!r} is not a composite component")
        parent.add(component)
        try:
            add_component_variable(
                self._network,
                component.path,
                component.domain,
                parents=network_parents,
                preferred_order=preferred_order,
                description=component.description,
            )
        except Exception:
            parent.remove(component.name)
            raise
        return component

    def remove_component(self, path: str) -> MultimediaComponent:
        """Detach a leaf-of-interest component and drop its CP-net variable(s)."""
        node = self._root.find(path)
        if isinstance(node, CompositeMultimediaComponent) and node.children:
            raise DocumentError(f"remove children of {path!r} first")
        if node.parent is None:
            raise DocumentError("cannot remove the document root")
        node.parent.remove(node.name)
        # Drop the component variable and any operation variables hanging off it.
        for name in list(self._network.variable_names):
            if name == path or name.startswith(path + "."):
                if name in self._network:
                    remove_component_variable(self._network, name)
        return node

    def __repr__(self) -> str:
        return (
            f"MultimediaDocument({self.doc_id!r}, {len(self.components())} components, "
            f"net={len(self._network)} vars)"
        )
