"""A realistic sample medical record (the paper's running example).

"Consider a medical record of a patient. It may contain CT and X-ray
images, test results in a special format, texts, voice fragments, etc."
— paper §4. This factory builds such a record with author preferences that
transcribe the intro's examples:

* the author "may prefer to present a CT image together with a voice
  fragment of expertise";
* "if a CT image is presented, then a correlated X-ray image is preferred
  by the author to be hidden, or to be presented as a small icon".
"""

from __future__ import annotations

from repro.document.builder import DocumentBuilder
from repro.document.document import MultimediaDocument
from repro.document.presentation import (
    AudioFragment,
    Hidden,
    Icon,
    JPGImage,
    SegmentedJPGImage,
    Text,
)

KB = 1024
MB = 1024 * KB


def build_sample_medical_record(
    doc_id: str = "record-17", patient: str = "patient-17"
) -> MultimediaDocument:
    """Build the reference medical record used by examples and tests.

    Structure (component paths in parentheses)::

        root
        ├── demographics           (text, always cheap)
        ├── imaging                (composite)
        │   ├── ct_head            (flat / segmented / icon / hidden)
        │   └── xray_chest         (flat / icon / hidden)
        ├── labs                   (composite)
        │   ├── blood_panel        (table / hidden)
        │   └── ecg                (trace / icon / hidden)
        └── consult                (composite)
            ├── voice_note         (play / transcript / hidden)
            └── referral_letter    (full / summary / hidden)
    """
    builder = (
        DocumentBuilder(doc_id, title=f"Medical record of {patient}", root_name="record")
        .primitive(
            "demographics",
            [Text("full", size_bytes=2 * KB), Text("summary", size_bytes=256), Hidden()],
            description="Patient demographics",
        )
        .prefer("demographics", ["full", "summary", "hidden"])
        .composite("imaging", "Imaging studies")
        .prefer("imaging", ["shown", "hidden"])
        .primitive(
            "imaging.ct_head",
            [
                JPGImage("flat", size_bytes=512 * KB, resolution=2),
                SegmentedJPGImage("segmented", size_bytes=640 * KB, resolution=2),
                Icon("icon", size_bytes=8 * KB),
                Hidden(),
            ],
            description="Head CT study",
        )
        .primitive(
            "imaging.xray_chest",
            [
                JPGImage("flat", size_bytes=256 * KB, resolution=2),
                Icon("icon", size_bytes=6 * KB),
                Hidden(),
            ],
            description="Chest X-ray",
        )
        .composite("labs", "Laboratory results")
        .prefer("labs", ["shown", "hidden"])
        .primitive(
            "labs.blood_panel",
            [Text("table", size_bytes=4 * KB), Hidden()],
            description="Blood panel",
        )
        .primitive(
            "labs.ecg",
            [
                JPGImage("trace", size_bytes=96 * KB, resolution=1),
                Icon("icon", size_bytes=4 * KB),
                Hidden(),
            ],
            description="ECG trace",
        )
        .composite("consult", "Consultation materials")
        .prefer("consult", ["shown", "hidden"])
        .primitive(
            "consult.voice_note",
            [
                AudioFragment("play", size_bytes=1 * MB, duration_s=65.0),
                Text("transcript", size_bytes=6 * KB),
                Hidden(),
            ],
            description="Recorded expert voice note",
        )
        .primitive(
            "consult.referral_letter",
            [Text("full", size_bytes=12 * KB), Text("summary", size_bytes=1 * KB), Hidden()],
            description="Referral letter",
        )
    )

    # --- author preferences (paper §1/§4 examples) -------------------------
    # The CT is the centrepiece: shown flat when imaging is shown.
    builder.depends("imaging.ct_head", on=["imaging"])
    builder.prefer_when("imaging.ct_head", {"imaging": "shown"}, ["flat", "segmented", "icon", "hidden"])
    builder.prefer_when("imaging.ct_head", {"imaging": "hidden"}, ["hidden", "icon", "flat", "segmented"])

    # "If a CT image is presented, then a correlated X-ray image is
    # preferred ... to be hidden, or presented as a small icon."
    builder.depends("imaging.xray_chest", on=["imaging.ct_head"])
    for ct_visible in ("flat", "segmented"):
        builder.prefer_when(
            "imaging.xray_chest", {"imaging.ct_head": ct_visible}, ["icon", "hidden", "flat"]
        )
    builder.prefer_when("imaging.xray_chest", {"imaging.ct_head": "icon"}, ["flat", "icon", "hidden"])
    builder.prefer_when("imaging.xray_chest", {"imaging.ct_head": "hidden"}, ["flat", "icon", "hidden"])

    # "Present a CT image together with a voice fragment of expertise."
    builder.depends("consult.voice_note", on=["imaging.ct_head"])
    for ct_visible in ("flat", "segmented"):
        builder.prefer_when(
            "consult.voice_note", {"imaging.ct_head": ct_visible}, ["play", "transcript", "hidden"]
        )
    builder.prefer_when("consult.voice_note", {}, ["transcript", "play", "hidden"])

    # Labs matter less during an imaging consult.
    builder.depends("labs.ecg", on=["labs"])
    builder.prefer_when("labs.ecg", {"labs": "shown"}, ["trace", "icon", "hidden"])
    builder.prefer_when("labs.ecg", {"labs": "hidden"}, ["hidden", "icon", "trace"])
    builder.depends("labs.blood_panel", on=["labs"])
    builder.prefer_when("labs.blood_panel", {"labs": "shown"}, ["table", "hidden"])
    builder.prefer_when("labs.blood_panel", {"labs": "hidden"}, ["hidden", "table"])

    builder.prefer("consult.referral_letter", ["summary", "full", "hidden"])

    return builder.build()
