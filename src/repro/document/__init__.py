"""Hierarchical multimedia documents (paper Sections 4 and 5.1).

A :class:`~repro.document.document.MultimediaDocument` is a tree of
components — composites (internal nodes, shown/hidden) and primitives
(leaves with several alternative :class:`~repro.document.presentation.MMPresentation`
forms) — paired with the author's CP-network over those components. The
document exposes exactly the Section 5.1 interface: ``get_content``,
``default_presentation`` and ``reconfig_presentation``.
"""

from repro.document.component import (
    COMPOSITE_HIDDEN,
    COMPOSITE_SHOWN,
    CompositeMultimediaComponent,
    MultimediaComponent,
    PrimitiveMultimediaComponent,
)
from repro.document.builder import DocumentBuilder
from repro.document.document import MultimediaDocument
from repro.document.medical import build_sample_medical_record
from repro.document.presentation import (
    AudioFragment,
    Hidden,
    Icon,
    JPGImage,
    MMPresentation,
    SegmentedJPGImage,
    Text,
)

__all__ = [
    "AudioFragment",
    "COMPOSITE_HIDDEN",
    "COMPOSITE_SHOWN",
    "CompositeMultimediaComponent",
    "DocumentBuilder",
    "Hidden",
    "Icon",
    "JPGImage",
    "MMPresentation",
    "MultimediaComponent",
    "MultimediaDocument",
    "PrimitiveMultimediaComponent",
    "SegmentedJPGImage",
    "Text",
    "build_sample_medical_record",
]
