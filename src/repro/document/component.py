"""The hierarchical component structure of a multimedia document.

Mirrors the paper's object-oriented design (Fig. 6): an abstract
``MultimediaComponent`` with two ground specifications —
``CompositeMultimediaComponent`` for internal nodes (restricted to the
binary shown/hidden domain) and ``PrimitiveMultimediaComponent`` for
leaves, which carry an arbitrary-size list of ``MMPresentation``
alternatives.

Components are addressed by dotted *paths* from the root, e.g.
``"imaging.ct_head"`` — these paths double as CP-network variable names.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import DocumentError
from repro.document.presentation import MMPresentation
from repro.util.validation import check_identifier

#: Domain of every composite component (paper §5.1: composites "can only be
#: either presented or hidden").
COMPOSITE_SHOWN = "shown"
COMPOSITE_HIDDEN = "hidden"


class MultimediaComponent:
    """Abstract node of the document tree.

    Subclasses must provide :attr:`domain` (the CP-net value set) and
    :meth:`presentation_size` (transfer bytes of a given domain value).
    """

    def __init__(self, name: str, description: str = "") -> None:
        check_identifier(name, "component name")
        if "." in name:
            raise ValueError(f"component names may not contain '.': {name!r}")
        self.name = name
        self.description = description
        self._parent: CompositeMultimediaComponent | None = None

    # ----- tree wiring -------------------------------------------------------

    @property
    def parent(self) -> "CompositeMultimediaComponent | None":
        return self._parent

    @property
    def path(self) -> str:
        """Dotted path from (but excluding) the root, e.g. ``imaging.ct``.

        The root component's path is its own name.
        """
        if self._parent is None or self._parent._parent is None:
            return self.name if self._parent is not None else self.name
        return f"{self._parent.path}.{self.name}"

    @property
    def depth(self) -> int:
        """Root has depth 0."""
        node, depth = self, 0
        while node._parent is not None:
            node = node._parent
            depth += 1
        return depth

    @property
    def is_root(self) -> bool:
        return self._parent is None

    # ----- presentation interface -------------------------------------------

    @property
    def domain(self) -> tuple[str, ...]:
        raise NotImplementedError

    def presentation_size(self, value: str) -> int:
        """Bytes a client must receive to render this component as *value*."""
        raise NotImplementedError

    @property
    def is_primitive(self) -> bool:
        return isinstance(self, PrimitiveMultimediaComponent)

    def iter_tree(self) -> Iterator["MultimediaComponent"]:
        """Pre-order traversal of this subtree (self first)."""
        yield self

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.path!r})"


class CompositeMultimediaComponent(MultimediaComponent):
    """An internal node: a named grouping of child components.

    Its presentation domain is exactly shown/hidden; hiding a composite
    hides its whole subtree (the presentation engine enforces that).
    """

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._children: dict[str, MultimediaComponent] = {}

    @property
    def domain(self) -> tuple[str, ...]:
        return (COMPOSITE_SHOWN, COMPOSITE_HIDDEN)

    def presentation_size(self, value: str) -> int:
        if value not in self.domain:
            raise DocumentError(f"{self.path!r} has no presentation {value!r}")
        return 0  # A composite itself carries no payload; children do.

    # ----- children -----------------------------------------------------------

    @property
    def children(self) -> tuple[MultimediaComponent, ...]:
        return tuple(self._children.values())

    def add(self, child: MultimediaComponent) -> MultimediaComponent:
        """Attach *child* and return it. Names are unique among siblings."""
        if child._parent is not None:
            raise DocumentError(f"component {child.name!r} is already attached")
        if child.name in self._children:
            raise DocumentError(f"{self.path!r} already has a child {child.name!r}")
        child._parent = self
        self._children[child.name] = child
        return child

    def remove(self, name: str) -> MultimediaComponent:
        """Detach and return the direct child called *name*."""
        try:
            child = self._children.pop(name)
        except KeyError:
            raise DocumentError(f"{self.path!r} has no child {name!r}") from None
        child._parent = None
        return child

    def child(self, name: str) -> MultimediaComponent:
        try:
            return self._children[name]
        except KeyError:
            raise DocumentError(f"{self.path!r} has no child {name!r}") from None

    def find(self, path: str) -> MultimediaComponent:
        """Resolve a dotted path relative to this node."""
        node: MultimediaComponent = self
        for part in path.split("."):
            if not isinstance(node, CompositeMultimediaComponent):
                raise DocumentError(f"{node.path!r} is a leaf; cannot descend to {path!r}")
            node = node.child(part)
        return node

    def iter_tree(self) -> Iterator[MultimediaComponent]:
        yield self
        for child in self._children.values():
            yield from child.iter_tree()


class PrimitiveMultimediaComponent(MultimediaComponent):
    """A leaf: actual content with a list of alternative presentations.

    The domain is the ordered tuple of presentation labels; the i-th
    ``MMPresentation`` "stands for the i-th option of presenting this
    PrimitiveMultimediaComponent" (paper §5.1).
    """

    def __init__(
        self,
        name: str,
        presentations: Iterable[MMPresentation],
        description: str = "",
    ) -> None:
        super().__init__(name, description)
        self._presentations: dict[str, MMPresentation] = {}
        for presentation in presentations:
            if not isinstance(presentation, MMPresentation):
                raise DocumentError(
                    f"presentations of {name!r} must be MMPresentation instances, "
                    f"got {type(presentation).__name__}"
                )
            if presentation.label in self._presentations:
                raise DocumentError(
                    f"component {name!r} has duplicate presentation label "
                    f"{presentation.label!r}"
                )
            self._presentations[presentation.label] = presentation
        if len(self._presentations) < 2:
            raise DocumentError(
                f"component {name!r} needs >= 2 presentation alternatives "
                "(include Hidden() if it may be omitted)"
            )

    @property
    def presentations(self) -> tuple[MMPresentation, ...]:
        return tuple(self._presentations.values())

    @property
    def domain(self) -> tuple[str, ...]:
        return tuple(self._presentations)

    def presentation(self, label: str) -> MMPresentation:
        try:
            return self._presentations[label]
        except KeyError:
            raise DocumentError(f"{self.path!r} has no presentation {label!r}") from None

    def presentation_size(self, value: str) -> int:
        return self.presentation(value).size_bytes
