"""Alternative presentations of a primitive component (paper Fig. 6).

``MMPresentation`` "is an abstract class, ground specifications of which
represent different alternative presentations, such as Text, JPGImage,
SegmentedJPGImage, etc." Each presentation knows its label (the CP-net
domain value), an estimated transfer size in bytes (driving the bandwidth
reasoning of §4.4), and an optional reference to the blob holding the
actual media in the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.validation import check_identifier

#: Conventional label for the "do not show this component" alternative.
HIDDEN_LABEL = "hidden"


@dataclass(frozen=True)
class MMPresentation:
    """One way of presenting a primitive component.

    Parameters
    ----------
    label:
        The CP-net domain value naming this alternative (unique within the
        component).
    size_bytes:
        Estimated bytes that must reach the client to render this form.
    media_ref:
        Optional database reference (``"<table>:<id>"``) of the payload.
    metadata:
        Free-form renderer hints (resolution, codec layer, ...).
    """

    label: str
    size_bytes: int = 0
    media_ref: str | None = None
    metadata: tuple[tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        check_identifier(self.label, "presentation label")
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")
        if isinstance(self.metadata, dict):
            object.__setattr__(self, "metadata", tuple(sorted(self.metadata.items())))

    @property
    def kind(self) -> str:
        """Presentation type name (the concrete class)."""
        return type(self).__name__

    @property
    def meta(self) -> dict[str, Any]:
        """Metadata as a plain dict."""
        return dict(self.metadata)

    @property
    def is_hidden(self) -> bool:
        """True for the zero-cost "component not displayed" alternative."""
        return False

    def __str__(self) -> str:
        return f"{self.kind}({self.label}, {self.size_bytes}B)"


@dataclass(frozen=True)
class Text(MMPresentation):
    """Plain or formatted text content (reports, test results)."""


@dataclass(frozen=True)
class JPGImage(MMPresentation):
    """A raster image at a given resolution level.

    ``resolution`` indexes the multi-layer codec's progressive layers:
    0 is the coarse main approximation, higher adds residual layers.
    """

    resolution: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.resolution < 0:
            raise ValueError(f"resolution must be >= 0, got {self.resolution}")


@dataclass(frozen=True)
class SegmentedJPGImage(JPGImage):
    """An image shown with its segmentation grid overlaid."""


@dataclass(frozen=True)
class Icon(MMPresentation):
    """A thumbnail stand-in ("presented as a small icon", paper §4)."""


@dataclass(frozen=True)
class AudioFragment(MMPresentation):
    """A playable voice/audio fragment.

    ``duration_s`` is the playing time; transfer size is still
    ``size_bytes``.
    """

    duration_s: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")


@dataclass(frozen=True)
class Hidden(MMPresentation):
    """The component is not displayed at all (costs nothing to transfer)."""

    label: str = HIDDEN_LABEL
    size_bytes: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.size_bytes != 0:
            raise ValueError("a hidden presentation transfers no bytes")

    @property
    def is_hidden(self) -> bool:
        return True
