"""JSON (de)serialization of multimedia documents.

A document is stored in the database as one JSON blob: the component tree
(with every presentation alternative) plus the author CP-network. This is
the unit the interaction server fetches into a room and the unit clients
receive on join (minus payloads, which stream separately by blob ref).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import DocumentError
from repro.cpnet.serialize import network_from_dict, network_to_dict
from repro.document.component import (
    CompositeMultimediaComponent,
    MultimediaComponent,
    PrimitiveMultimediaComponent,
)
from repro.document.document import MultimediaDocument
from repro.document.presentation import (
    AudioFragment,
    Hidden,
    Icon,
    JPGImage,
    MMPresentation,
    SegmentedJPGImage,
    Text,
)

FORMAT_VERSION = 1

_PRESENTATION_CLASSES: dict[str, type[MMPresentation]] = {
    cls.__name__: cls
    for cls in (Text, JPGImage, SegmentedJPGImage, Icon, AudioFragment, Hidden, MMPresentation)
}


def presentation_to_dict(presentation: MMPresentation) -> dict[str, Any]:
    data: dict[str, Any] = {
        "kind": presentation.kind,
        "label": presentation.label,
        "size_bytes": presentation.size_bytes,
        "media_ref": presentation.media_ref,
        "metadata": presentation.meta,
    }
    if isinstance(presentation, JPGImage):
        data["resolution"] = presentation.resolution
    if isinstance(presentation, AudioFragment):
        data["duration_s"] = presentation.duration_s
    return data


def presentation_from_dict(data: dict[str, Any]) -> MMPresentation:
    kind = data.get("kind")
    cls = _PRESENTATION_CLASSES.get(kind or "")
    if cls is None:
        raise DocumentError(f"unknown presentation kind {kind!r}")
    kwargs: dict[str, Any] = {
        "label": data["label"],
        "size_bytes": data.get("size_bytes", 0),
        "media_ref": data.get("media_ref"),
        "metadata": tuple(sorted((data.get("metadata") or {}).items())),
    }
    if issubclass(cls, JPGImage):
        kwargs["resolution"] = data.get("resolution", 0)
    if issubclass(cls, AudioFragment):
        kwargs["duration_s"] = data.get("duration_s", 0.0)
    return cls(**kwargs)


def component_to_dict(component: MultimediaComponent) -> dict[str, Any]:
    if isinstance(component, CompositeMultimediaComponent):
        return {
            "type": "composite",
            "name": component.name,
            "description": component.description,
            "children": [component_to_dict(child) for child in component.children],
        }
    if isinstance(component, PrimitiveMultimediaComponent):
        return {
            "type": "primitive",
            "name": component.name,
            "description": component.description,
            "presentations": [presentation_to_dict(p) for p in component.presentations],
        }
    raise DocumentError(f"cannot serialize component type {type(component).__name__}")


def component_from_dict(data: dict[str, Any]) -> MultimediaComponent:
    kind = data.get("type")
    if kind == "composite":
        node = CompositeMultimediaComponent(data["name"], data.get("description", ""))
        for child in data.get("children", []):
            node.add(component_from_dict(child))
        return node
    if kind == "primitive":
        return PrimitiveMultimediaComponent(
            data["name"],
            [presentation_from_dict(p) for p in data.get("presentations", [])],
            data.get("description", ""),
        )
    raise DocumentError(f"unknown component type {kind!r}")


def document_to_dict(document: MultimediaDocument) -> dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "doc_id": document.doc_id,
        "title": document.title,
        "root": component_to_dict(document.get_content()),
        "network": network_to_dict(document.network),
    }


def document_from_dict(data: dict[str, Any]) -> MultimediaDocument:
    if data.get("format") != FORMAT_VERSION:
        raise DocumentError(f"unsupported document format {data.get('format')!r}")
    root = component_from_dict(data["root"])
    if not isinstance(root, CompositeMultimediaComponent):
        raise DocumentError("document root must be composite")
    return MultimediaDocument(
        doc_id=data["doc_id"],
        root=root,
        network=network_from_dict(data["network"]),
        title=data.get("title", ""),
    )


def document_to_json(document: MultimediaDocument, indent: int | None = None) -> str:
    return json.dumps(document_to_dict(document), indent=indent)


def document_from_json(text: str | bytes) -> MultimediaDocument:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DocumentError(f"invalid document JSON: {exc}") from exc
    return document_from_dict(data)
