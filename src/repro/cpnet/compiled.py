"""Compiled CP-net evaluation: flat tables, one frozen sweep, shared cache.

The interpreted queries in :mod:`repro.cpnet.reasoning` re-derive the
topological order (Kahn) and re-scan every CPT's rule list (with
most-specific-wins arbitration) on *every* call — per viewer, per choice.
Following Boutilier/Brafman/Domshlak (a single forward sweep through a
fixed topological order is optimal for acyclic nets), this module
compiles a network **once per structural version** into:

* a frozen topological order, and
* per variable, an exact ``parent-value-tuple -> total order`` lookup
  table, resolved at compile time so ``rule_for``'s linear scan and
  specificity tie-breaking never run per query.

Exactness is preserved bit for bit: assignments whose rules are missing
or ambiguous are *not* flattened — they fall back to the interpreted
``rule_for`` at query time, raising the very same
:class:`~repro.errors.IncompleteTableError` the interpreter would, and
CPTs whose parent space exceeds :data:`FLAT_SPACE_LIMIT` flatten lazily
(first query resolves, later queries hit the memo).

Invalidation is driven by the §4.2 update policies: every structural
mutation of :class:`~repro.cpnet.network.CPNet` (and of a
:class:`~repro.cpnet.updates.ViewerExtension`) bumps a version counter;
:func:`compile_cpnet` / :func:`compile_extension` recompile exactly when
the version moved. Viewer extensions compile as *overlay* layers that
share the base compilation — the base is never copied (§4.2: the shared
network "should not be duplicated").

On top sits :class:`CompletionCache`, a bounded LRU memo of completed
outcomes keyed by (doc id, instance-salted version token, overlay token,
frozen evidence items) — see :func:`completion_key` for why the salts
matter across re-fetches and viewer rejoins.
It is designed to live at **shard scope** (one per
:class:`~repro.server.interaction.InteractionServer`): identical
constraint sets across viewers, rooms and sessions hit the same entry.
Metrics: ``cpnet.compile``, ``cpnet.compiled.completions`` and
``cpnet.completion_cache.{hits,misses,evictions,invalidations}`` in
:mod:`repro.obs`.

``set_compiled_enabled(False)`` / :func:`interpreted_mode` force every
call site back onto the interpreted engine — the chaos convergence gate
uses it to prove compiled and interpreted runs end byte-identical.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.errors import IncompleteTableError
from repro.cpnet.cpt import CPT
from repro.cpnet.network import CPNet
from repro.obs import get_registry

Assignment = Mapping[str, str]

#: Per-CPT eager flattening budget: parent spaces larger than this are
#: resolved lazily (first query interprets, later queries hit the memo)
#: so compiling a net with one huge table stays cheap and bounded.
FLAT_SPACE_LIMIT = 4096

_enabled = True


def compiled_enabled() -> bool:
    """True while call sites should use the compiled evaluator."""
    return _enabled


def set_compiled_enabled(on: bool) -> bool:
    """Flip the global compiled/interpreted switch; returns the old value."""
    global _enabled
    previous = _enabled
    _enabled = bool(on)
    return previous


@contextmanager
def interpreted_mode() -> Iterator[None]:
    """Force the interpreted engine within the block (convergence control)."""
    previous = set_compiled_enabled(False)
    try:
        yield
    finally:
        set_compiled_enabled(previous)


class _FlatTable:
    """One variable's compiled CPT: parent-value tuple -> total order."""

    __slots__ = ("name", "variable", "parent_names", "orders", "cpt")

    def __init__(self, cpt: CPT) -> None:
        self.name = cpt.variable.name
        self.variable = cpt.variable
        self.parent_names = cpt.parent_names
        self.cpt = cpt
        self.orders: dict[tuple[str, ...], tuple[str, ...]] = {}
        if cpt.parent_space_size() <= FLAT_SPACE_LIMIT:
            domains = [p.domain for p in cpt.parents]
            names = self.parent_names
            for combo in itertools.product(*domains):
                try:
                    rule = cpt.rule_for(dict(zip(names, combo)))
                except IncompleteTableError:
                    # Missing/ambiguous cells keep the interpreter's lazy
                    # error semantics: they raise on first *query*, not
                    # at compile time.
                    continue
                self.orders[combo] = rule.order

    def order_for_key(self, key: tuple[str, ...]) -> tuple[str, ...]:
        """Total order for a full parent-value tuple (memoizing misses)."""
        order = self.orders.get(key)
        if order is None:
            order = self.cpt.rule_for(dict(zip(self.parent_names, key))).order
            self.orders[key] = order
        return order

    def order_for(self, assignment: Assignment) -> tuple[str, ...]:
        """Total order given any assignment covering the parents.

        Partial assignments (a parent unset) bypass the flat table and
        take the interpreted most-specific-rule path, uncached — exactly
        what :meth:`CPT.order_for` would do.
        """
        key = tuple(assignment.get(p) for p in self.parent_names)
        if None in key:
            return self.cpt.rule_for(assignment).order
        order = self.orders.get(key)  # type: ignore[arg-type]
        if order is None:
            order = self.cpt.rule_for(assignment).order
            self.orders[key] = order  # type: ignore[index]
        return order


#: Sweep-plan entry kinds (see :func:`_build_plan`).
_CONST, _ONE_PARENT, _GENERAL = 0, 1, 2


def _build_plan(tables: tuple[_FlatTable, ...]) -> tuple[tuple, ...]:
    """Flatten tables into branch-specialized sweep entries.

    Each entry is ``(name, kind, const, parent, parents, firsts, table)``:

    * ``_CONST`` — no parents and a resolved row: the best value is a
      compile-time constant;
    * ``_ONE_PARENT`` — ``firsts`` maps the parent's bare value straight
      to the best value (no tuple build per query);
    * ``_GENERAL`` — ``firsts`` maps the parent-value tuple to the best
      value; misses fall back to the interpreted ``rule_for`` (lazy
      tables, incomplete cells) and are memoized.
    """
    plan = []
    for table in tables:
        firsts = {key: order[0] for key, order in table.orders.items()}
        if not table.parent_names and () in table.orders:
            plan.append(
                (table.name, _CONST, table.orders[()][0], None, (), None, table)
            )
        elif len(table.parent_names) == 1 and table.orders:
            plan.append(
                (
                    table.name,
                    _ONE_PARENT,
                    None,
                    table.parent_names[0],
                    table.parent_names,
                    {key[0]: value for key, value in firsts.items()},
                    table,
                )
            )
        else:
            plan.append(
                (table.name, _GENERAL, None, None, table.parent_names, firsts, table)
            )
    return tuple(plan)


def _run_plan(
    plan: tuple[tuple, ...], fixed: Mapping[str, str], outcome: dict[str, str]
) -> dict[str, str]:
    """Execute sweep entries in order, writing into *outcome*."""
    for name, kind, const, parent, parents, firsts, table in plan:
        if name in fixed:
            outcome[name] = fixed[name]
        elif kind == _CONST:
            outcome[name] = const
        elif kind == _ONE_PARENT:
            value = outcome[parent]
            try:  # subscript-on-hit beats .get(): the hot path is a hit
                outcome[name] = firsts[value]
            except KeyError:
                best = table.order_for_key((value,))[0]
                firsts[value] = best
                outcome[name] = best
        else:
            key = tuple(map(outcome.__getitem__, parents))
            try:
                outcome[name] = firsts[key]
            except KeyError:
                best = table.order_for_key(key)[0]
                firsts[key] = best
                outcome[name] = best
    return outcome


class CompiledCPNet:
    """A CP-net frozen into a topologically ordered sequence of flat tables.

    Built by :func:`compile_cpnet`; valid for exactly one
    ``net.structure_version``. ``best_completion`` performs the forward
    sweep through a branch-specialized plan — at most one dict lookup per
    free variable; no graph traversal, no rule scan, no specificity
    arbitration, no per-variable function call.
    """

    __slots__ = (
        "net", "version", "order", "_tables", "_sweep", "_plan",
        "_optimal", "_m_completions",
    )

    def __init__(self, net: CPNet) -> None:
        self.net = net
        self.version = net.structure_version
        self.order: tuple[str, ...] = tuple(net.topological_order())
        self._tables: dict[str, _FlatTable] = {
            name: _FlatTable(net.cpt(name)) for name in self.order
        }
        self._sweep: tuple[_FlatTable, ...] = tuple(
            self._tables[name] for name in self.order
        )
        self._plan = _build_plan(self._sweep)
        # The no-evidence completion is a constant of the compilation;
        # memoized lazily (an incomplete table must still raise on the
        # first actual query, not at compile time).
        self._optimal: dict[str, str] | None = None
        self._m_completions = get_registry().counter("cpnet.compiled.completions")

    @property
    def stale(self) -> bool:
        """True once the net mutated past this compilation."""
        return self.version != self.net.structure_version

    def table(self, name: str) -> _FlatTable:
        return self._tables[name]

    def order_for(self, name: str, assignment: Assignment) -> tuple[str, ...]:
        """Flat replacement for ``net.cpt(name).order_for(assignment)``."""
        return self._tables[name].order_for(assignment)

    def best_value(self, name: str, assignment: Assignment) -> str:
        return self._tables[name].order_for(assignment)[0]

    def best_completion(self, evidence: Assignment) -> dict[str, str]:
        """Best outcome consistent with *evidence* — the compiled sweep.

        Byte-identical to :func:`repro.cpnet.reasoning.best_completion`
        on the same net (same values, same key order, same errors for
        bad evidence or incomplete tables).
        """
        if not evidence:
            memo = self._optimal
            if memo is None:
                memo = self._optimal = _run_plan(self._plan, {}, {})
            self._m_completions.inc()
            return dict(memo)  # callers mutate outcomes (subtree hiding)
        fixed = self.net.check_partial(evidence)
        outcome = _run_plan(self._plan, fixed, {})
        self._m_completions.inc()
        return outcome

    def optimal_outcome(self) -> dict[str, str]:
        return self.best_completion({})

    def __repr__(self) -> str:
        flat = sum(len(t.orders) for t in self._sweep)
        return (
            f"CompiledCPNet({self.net.name!r}, v{self.version}, "
            f"{len(self.order)} vars, {flat} flat rows)"
        )


class CompiledExtension:
    """A viewer extension compiled as an overlay on a shared base compilation.

    Only the viewer-local variables get their own flat tables; the base
    sweep is the (shared, never copied) :class:`CompiledCPNet` of the
    base network. Valid for one (base version, extension version) pair.
    """

    __slots__ = ("extension", "base", "version", "_sweep", "_plan", "_m_completions")

    def __init__(self, extension: Any, base: CompiledCPNet) -> None:
        self.extension = extension
        self.base = base
        self.version = extension.extension_version
        # Insertion order respects parent creation (see ViewerExtension).
        self._sweep: tuple[_FlatTable, ...] = tuple(
            _FlatTable(extension._cpts[name]) for name in extension.extension_names
        )
        self._plan = _build_plan(self._sweep)
        self._m_completions = get_registry().counter("cpnet.compiled.completions")

    @property
    def stale(self) -> bool:
        return (
            self.version != self.extension.extension_version
            or self.base.stale
        )

    def best_completion(self, evidence: Assignment) -> dict[str, str]:
        """Best outcome over base + extension variables, compiled."""
        extension = self.extension
        fixed: dict[str, str] = {}
        for name, value in evidence.items():
            extension.variable(name).check_value(value)
            fixed[name] = value
        outcome = _run_plan(self.base._plan, fixed, {})
        _run_plan(self._plan, fixed, outcome)
        self._m_completions.inc()
        return outcome


def compile_cpnet(net: CPNet) -> CompiledCPNet:
    """The (memoized) compilation of *net* at its current version.

    The compiled object is cached on the network itself; a structural
    mutation (version bump) triggers exactly one recompile on the next
    call. Each actual compile increments the ``cpnet.compile`` counter.
    """
    cached: CompiledCPNet | None = getattr(net, "_compiled", None)
    if cached is not None and not cached.stale:
        return cached
    compiled = CompiledCPNet(net)
    net._compiled = compiled  # type: ignore[attr-defined]
    get_registry().counter("cpnet.compile").inc()
    return compiled


def compile_extension(extension: Any) -> CompiledExtension:
    """The (memoized) overlay compilation of a :class:`ViewerExtension`."""
    base = compile_cpnet(extension.base)
    cached: CompiledExtension | None = getattr(extension, "_compiled", None)
    if cached is not None and cached.base is base and not cached.stale:
        return cached
    compiled = CompiledExtension(extension, base)
    extension._compiled = compiled
    get_registry().counter("cpnet.compile").inc()
    return compiled


def completion_key(
    doc_id: str,
    version_token: Any,
    overlay: tuple[Any, ...],
    evidence: Assignment,
) -> tuple[Any, ...]:
    """Canonical cache key: (doc, version token, overlay id, frozen evidence).

    *version_token* must be unique per (network instance, structural
    version) — callers pass :attr:`CPNet.version_token`, which salts the
    bare version counter with a process-unique instance id. The salt is
    load-bearing: ``structure_version`` restarts at 0 when a persisted
    document is re-fetched into a fresh ``CPNet``, so the bare counter
    could re-reach an old number with different network content while the
    shard-scoped cache still holds the old entries.

    *overlay* is ``()`` for viewers with an empty extension — which is
    how identical constraint sets across viewers and sessions land on
    the same entry — and ``(viewer_id, ext_instance_id, ext_version)``
    otherwise (the instance id keeps a rejoining viewer's fresh extension
    from re-reaching her discarded one's keys).
    """
    return (doc_id, version_token, overlay, tuple(sorted(evidence.items())))


class CompletionCache:
    """Bounded LRU memo of completed outcomes, shared at shard scope.

    Entries are stored and returned as *copies*: callers are free to
    mutate the outcome they get back (subtree hiding does), and cache
    state can never leak into anything a caller ships — replication
    replay on a cacheless replica recomputes the same bytes.
    """

    def __init__(self, max_entries: int = 2048) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[Any, ...], dict[str, str]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        registry = get_registry()
        self._m_hits = registry.counter("cpnet.completion_cache.hits")
        self._m_misses = registry.counter("cpnet.completion_cache.misses")
        self._m_evictions = registry.counter("cpnet.completion_cache.evictions")
        self._m_invalidations = registry.counter("cpnet.completion_cache.invalidations")
        self._g_size = registry.gauge("cpnet.completion_cache.size")

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple[Any, ...]) -> dict[str, str] | None:
        """The cached outcome for *key* (a fresh copy), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._m_misses.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._m_hits.inc()
        return dict(entry)

    def store(self, key: tuple[Any, ...], outcome: Mapping[str, str]) -> None:
        """Memoize *outcome* under *key*, evicting the LRU entry if full."""
        self._entries[key] = dict(outcome)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._m_evictions.inc()
        self._g_size.set(len(self._entries))

    def invalidate(self, doc_id: str | None = None) -> int:
        """Drop entries for *doc_id* (or everything); returns the count.

        Called by the §4.2 update paths and when a room closes. Keys are
        salted with :attr:`CPNet.version_token` (instance id + version),
        so a structural change — or re-fetching the document into a
        fresh network — makes old keys unreachable; this call is the
        eager reclamation that keeps those dead entries from aging out
        live ones. Do not rely on the bare ``structure_version`` being
        in the key: it restarts per network instance and is only unique
        in combination with the instance salt.
        """
        if doc_id is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [key for key in self._entries if key[0] == doc_id]
            for key in stale:
                del self._entries[key]
            dropped = len(stale)
        if dropped:
            self.invalidations += dropped
            self._m_invalidations.inc(dropped)
        self._g_size.set(len(self._entries))
        return dropped

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"CompletionCache({len(self._entries)}/{self.max_entries} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )
